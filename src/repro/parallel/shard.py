"""Worker-side pieces of a sharded pollution run.

One shard is one worker process running a full, independent
:class:`~repro.streaming.environment.StreamExecutionEnvironment` over its
record partition. The coordinator (see
:class:`~repro.parallel.environment.ShardedEnvironment`) prepares records —
global IDs and the event time ``tau`` are assigned *before* sharding, so
worker output carries coordinator-consistent identities — and streams them
over a bounded queue; the worker streams polluted output back.

Everything a worker needs travels in one :class:`ShardTask`, which the
coordinator pickles explicitly before spawning anything: an unpicklable
plan (a lambda key selector, an open file handle in a sink) fails at the
coordinator with a clear :class:`~repro.errors.ShardError` instead of a
cryptic traceback from the multiprocessing machinery.

The queue protocol is tiny and one-directional per queue:

* coordinator -> worker (``in_queue``): ``("records", [Record, ...])``
  chunks, then one ``("eof", None)``;
* worker -> coordinator (``out_queue``): ``("chunk", shard, [Record, ...],
  watermark, epoch)`` output chunks, ``("heartbeat", shard, epoch,
  telemetry_or_None)`` liveness marks, then exactly one terminal message —
  either ``("done", shard, payload_bytes, epoch)`` or ``("error", shard,
  payload_bytes, epoch)``. Terminal payloads are pre-pickled *by the
  worker* so a result the multiprocessing pickler would choke on (an
  exotic exception, say) degrades to its ``repr`` instead of killing the
  queue feeder thread.

Heartbeats double as the live telemetry channel: when the task enables
telemetry or a run ledger, each beat carries a small plain-dict payload —
cumulative records in/out, the sink watermark, the input queue depth, and
the worker ledger's not-yet-shipped event tail (see
:meth:`repro.obs.ledger.RunLedger.drain`) — so the coordinator's live view
and merged ledger advance while the shard runs, and events streamed before
a SIGKILL survive the kill. With both disabled the payload is ``None`` and
the channel costs nothing beyond the tuple slot.

Every outbound message carries the shard's *attempt epoch*: the coordinator
bumps it on each respawn and drops messages from earlier epochs, so output
a dead attempt left buffered in the pipe can never contaminate the retried
attempt's stream. Heartbeats are *progress-tied* — they are sent from the
record path, not a side thread — so a worker wedged inside an operator goes
silent and the coordinator's watchdog can tell a hang from slow progress.
"""

from __future__ import annotations

import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

from repro.core.keyed_pollution import KeyedPollutionProcessFunction
from repro.core.log import PollutionLog
from repro.core.pipeline import PollutionPipeline
from repro.core.rng import RandomSource
from repro.obs.metrics import MetricsRegistry
from repro.streaming.environment import StreamExecutionEnvironment
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.sink import Sink
from repro.streaming.source import Source
from repro.streaming.split import SplitStrategy
from repro.streaming.supervision import FailurePolicy


@dataclass
class ShardTask:
    """The complete, picklable execution plan of one worker shard.

    Exactly one of the two plan shapes is populated: keyed tasks carry
    ``key_selector`` + ``pipeline_factory`` (and run with the *base* seed —
    per-key named streams make keyed randomness shard-invariant), unkeyed
    tasks carry ``pipelines`` + ``split`` (and run with a seed derived per
    ``(seed, n_shards, shard)``, see :func:`repro.core.rng.derive_shard_seed`).
    """

    shard: int
    n_shards: int
    schema: Schema
    seed: int | None
    keyed: bool
    log: bool
    metered: bool
    sample_every: int = 16
    key_selector: Callable[[Record], Hashable] | None = None
    pipeline_factory: Callable[[Hashable], PollutionPipeline] | None = None
    pipelines: list[PollutionPipeline] | None = None
    split: SplitStrategy | None = None
    failure_policy: FailurePolicy | None = None
    checkpoint_dir: str | None = None
    checkpoint_interval: int = 100
    resume_path: str | None = None
    chunk_size: int = 256
    batch_size: int | None = None
    #: Attempt number of this shard; stamped on every outbound message so
    #: the coordinator can discard output from superseded attempts.
    epoch: int = 0
    #: Send a heartbeat at most this often (seconds); None disables them.
    heartbeat_interval: float | None = None
    #: Piggyback live telemetry snapshots on heartbeats.
    telemetry: bool = False
    #: Keep a worker-side RunLedger and stream/ship its events.
    ledger: bool = False
    #: Profile this shard (kernel + node attribution in the done payload).
    profile: bool = False


class _Heartbeat:
    """Time-gated liveness marks on the worker's record path.

    ``beat()`` is called once per record the shard pulls from its input
    queue; it only actually enqueues a ``("heartbeat", shard, epoch,
    telemetry)`` message when ``interval`` has elapsed, so the hot path
    pays a clock read per record and the control queue stays quiet. Send
    failures are swallowed — a heartbeat that cannot be delivered
    (coordinator tearing the run down) must never kill the shard itself.

    When ``telemetry``/``ledger`` are enabled the elapsed-interval branch
    (never the hot path) builds a small snapshot dict: cumulative records
    in (:attr:`records_in`, counted by :class:`QueueSource`) and out (from
    the attached ``sink``), the sink watermark, the input queue depth, and
    the worker ledger's drained event tail.
    """

    __slots__ = (
        "_queue",
        "_shard",
        "_epoch",
        "interval",
        "_next",
        "records_in",
        "sink",
        "in_queue",
        "ledger",
        "telemetry",
    )

    def __init__(
        self,
        queue: Any,
        shard: int,
        epoch: int,
        interval: float,
        telemetry: bool = False,
        in_queue: Any = None,
        ledger: Any = None,
    ) -> None:
        self._queue = queue
        self._shard = shard
        self._epoch = epoch
        self.interval = interval
        self._next = 0.0  # first beat fires immediately
        self.records_in = 0
        self.sink: ShardOutputSink | None = None  # attached after construction
        self.in_queue = in_queue
        self.ledger = ledger
        self.telemetry = telemetry

    def beat(self) -> None:
        now = time.monotonic()
        if now >= self._next:
            self._next = now + self.interval
            payload: dict[str, Any] | None = None
            if self.telemetry or self.ledger is not None:
                payload = {}
                if self.telemetry:
                    sink = self.sink
                    payload["records_in"] = self.records_in
                    payload["records_out"] = sink.emitted if sink is not None else 0
                    payload["watermark"] = sink.watermark if sink is not None else None
                    if self.in_queue is not None:
                        try:
                            payload["queue_depth"] = self.in_queue.qsize()
                        except (NotImplementedError, OSError):
                            pass  # qsize is unimplemented on some platforms
                if self.ledger is not None:
                    events = self.ledger.drain()
                    if events:
                        payload["events"] = events
            try:
                self._queue.put(("heartbeat", self._shard, self._epoch, payload))
            except Exception:  # noqa: BLE001 - liveness must not be fatal
                pass


class QueueSource(Source):
    """A stream source draining prepared record chunks from a process queue.

    Yields until the ``("eof", None)`` sentinel. The default
    :meth:`~repro.streaming.source.Source.iter_from` (skip via iteration)
    gives checkpoint resume for free: on restore the coordinator re-feeds
    the shard's full partition and the environment skips the first
    ``offset`` records of this source.

    With a ``heartbeat`` attached, the source beats once per yielded record
    — progress-tied liveness: a downstream operator that stops consuming
    stops the beats.
    """

    def __init__(
        self, schema: Schema, queue: Any, heartbeat: _Heartbeat | None = None
    ) -> None:
        super().__init__(schema)
        self._queue = queue
        self._heartbeat = heartbeat

    def __iter__(self) -> Iterator[Record]:
        heartbeat = self._heartbeat
        while True:
            if heartbeat is not None:
                heartbeat.beat()
            kind, payload = self._queue.get()
            if kind == "eof":
                return
            if heartbeat is None:
                yield from payload
            else:
                for record in payload:
                    heartbeat.records_in += 1
                    heartbeat.beat()
                    yield record


class ShardOutputSink(Sink):
    """Streams polluted records (plus a piggybacked watermark) back out.

    Two modes:

    * **streaming** (no checkpointing) — records leave in ``chunk_size``
      batches as they are produced, so worker memory stays bounded;
    * **retaining** (checkpointing or resume enabled) — records are held
      until :meth:`close` and snapshotted into checkpoints. A resumed worker
      restores the retained prefix and re-emits it along with post-resume
      output, so the *new* coordinator (which never saw the crashed run's
      chunks) receives the shard's complete output.

    The watermark is the largest event time emitted so far; every outbound
    chunk carries it so the coordinator can track per-shard event-time
    progress while workers run.
    """

    def __init__(
        self,
        queue: Any,
        shard: int,
        chunk_size: int = 256,
        retain: bool = False,
        log: PollutionLog | None = None,
        epoch: int = 0,
    ) -> None:
        self._queue = queue
        self._shard = shard
        self._chunk_size = max(1, chunk_size)
        self._retain = retain
        self._epoch = epoch
        # In retain mode the sink also carries the shard's pollution log
        # through checkpoints: by the time a snapshot barrier reaches the
        # sink, every processed record's log events have been appended, so
        # the log prefix and the retained output prefix stay consistent.
        self._log = log
        self._buffer: list[Record] = []
        self.watermark: int | None = None
        self.emitted = 0

    def invoke(self, record: Record) -> None:
        et = record.event_time
        if et is not None and (self.watermark is None or et > self.watermark):
            self.watermark = et
        self._buffer.append(record)
        self.emitted += 1
        if not self._retain and len(self._buffer) >= self._chunk_size:
            self._send(self._buffer)
            self._buffer = []

    def _send(self, records: list[Record]) -> None:
        self._queue.put(("chunk", self._shard, records, self.watermark, self._epoch))

    def close(self) -> None:
        buffer, self._buffer = self._buffer, []
        for start in range(0, len(buffer), self._chunk_size):
            self._send(buffer[start : start + self._chunk_size])

    def snapshot_state(self) -> dict[str, Any] | None:
        if not self._retain:
            return None
        return {
            "records": [r.copy() for r in self._buffer],
            "watermark": self.watermark,
            "emitted": self.emitted,
            "log_events": list(self._log.events) if self._log is not None else None,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._buffer = [r.copy() for r in state["records"]]
        self.watermark = state["watermark"]
        self.emitted = state["emitted"]
        if state.get("log_events") is not None and self._log is not None:
            self._log.events[:] = state["log_events"]


def _safe_dumps(payload: Any) -> bytes:
    """Pickle a terminal payload, degrading rather than failing.

    A worker's last message must always reach the coordinator; if the full
    payload cannot pickle (e.g. a user exception holding a socket), retry
    with everything but the primitive fields stringified.
    """
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        degraded = {
            key: value if isinstance(value, (int, float, str, bool, type(None))) else repr(value)
            for key, value in payload.items()
        }
        degraded["degraded"] = True
        return pickle.dumps(degraded, protocol=pickle.HIGHEST_PROTOCOL)


def _dead_letter_summaries(report) -> list[dict[str, Any]]:
    """Flatten dead letters into plain-data dicts that always pickle."""
    out = []
    for entry in report.dead_letters:
        ctx = entry.context
        out.append(
            {
                "record": entry.record.copy(),
                "node": ctx.node,
                "record_id": ctx.record_id,
                "offset": ctx.offset,
                "attempts": ctx.attempts,
                "error_type": type(ctx.exception).__name__,
                "error": str(ctx.exception),
                "values": dict(ctx.values) if ctx.values is not None else None,
            }
        )
    return out


def _execute_shard(task: ShardTask, in_queue: Any, out_queue: Any) -> dict[str, Any]:
    """Compile and run one shard's plan inside the worker process.

    The worker routes through the same :func:`repro.plan.compile_plan` /
    :func:`repro.plan.execute_plan` pair as every other entry point: the
    :class:`ShardTask` is wrapped in a :class:`~repro.plan.PlanRequest`, the
    planner picks the shard engine (keyed / stream / stream-batch) and the
    output-retention mode, and :func:`_execute_shard_plan` consumes only the
    compiled plan.
    """
    from repro.plan import PlanRequest, compile_plan, execute_plan

    plan = compile_plan(PlanRequest.for_shard(task))
    return execute_plan(plan, in_queue=in_queue, out_queue=out_queue)


def _execute_shard_plan(plan: Any, in_queue: Any, out_queue: Any) -> dict[str, Any]:
    from repro.obs.ledger import RunLedger
    from repro.obs.profile import Profiler

    task: ShardTask = plan.request.shard_task
    metrics = MetricsRegistry(enabled=task.metered, sample_every=task.sample_every)
    ledger = (
        RunLedger(
            source=f"shard-{task.shard}",
            defaults={"shard": task.shard, "epoch": task.epoch},
        )
        if task.ledger
        else None
    )
    profiler = Profiler() if task.profile else None
    env = StreamExecutionEnvironment(
        metrics=metrics if task.metered else None,
        batch_size=task.batch_size,
        ledger=ledger,
        profiler=profiler,
    )
    if task.failure_policy is not None:
        env.set_failure_policy(task.failure_policy)
    if task.checkpoint_dir is not None:
        env.enable_checkpointing(task.checkpoint_interval, task.checkpoint_dir)

    heartbeat = (
        _Heartbeat(
            out_queue,
            task.shard,
            task.epoch,
            task.heartbeat_interval,
            telemetry=task.telemetry,
            in_queue=in_queue,
            ledger=ledger,
        )
        if task.heartbeat_interval is not None
        else None
    )
    source = QueueSource(task.schema, in_queue, heartbeat=heartbeat)
    # Output retention (checkpoint/resume snapshots and supervised-batching
    # slab rollback need the emitted prefix in-process) is a planner
    # decision: see the shard-retains-output / shard-streams-output slugs.
    retain = plan.shard_retain
    log = PollutionLog() if task.log else None
    sink = ShardOutputSink(
        out_queue, task.shard, task.chunk_size, retain=retain, log=log,
        epoch=task.epoch,
    )
    if heartbeat is not None:
        heartbeat.sink = sink
    stream = env.from_source(source, name="shard-input")

    operator: KeyedPollutionProcessFunction | None = None
    if task.keyed:
        # Base seed, not a derived one: each key's named streams are drawn
        # only on the one shard that owns the key, in sequential order, so
        # sharing the seed is exactly what makes keyed output shard-invariant.
        rng = RandomSource(task.seed)
        operator = KeyedPollutionProcessFunction(
            task.pipeline_factory,
            rng,
            log,
            metrics if task.metered else None,
            profiler=profiler,
        )
        stream.key_by(task.key_selector).process(operator, name="pollute-keyed").add_sink(
            sink, name="shard-output"
        )
    else:
        from repro.core.runner import PollutionProcessFunction

        rng = RandomSource(task.seed).for_shard(task.shard, task.n_shards)
        pipelines = task.pipelines or []
        for pipeline in pipelines:
            pipeline.bind(rng)
            pipeline.reset()
            pipeline.bind_metrics(metrics if task.metered else None)
        branches = stream.split(task.split, name="substreams")
        polluted = [
            branch.process(
                PollutionProcessFunction(pipeline, log, profiler=profiler),
                name=f"pollute[{i}]",
            )
            for i, (branch, pipeline) in enumerate(zip(branches, pipelines))
        ]
        merged = (
            polluted[0].union(*polluted[1:], name="integrate")
            if len(polluted) > 1
            else polluted[0]
        )
        merged.add_sink(sink, name="shard-output")

    if profiler is not None:
        with profiler.phase("execute"):
            report = env.execute(resume_from=task.resume_path)
        profiler.finish()
    else:
        report = env.execute(resume_from=task.resume_path)
    if task.metered:
        if operator is not None:
            operator.flush_metrics()
        else:
            for pipeline in task.pipelines or []:
                pipeline.flush_metrics()
        metrics.counter("shard_records_out_total", shard=task.shard).value = sink.emitted
        if sink.watermark is not None:
            metrics.gauge("shard_watermark", shard=task.shard).set(sink.watermark)
    return {
        "shard": task.shard,
        "log_events": list(log.events) if log is not None else [],
        "metrics": metrics if task.metered else None,
        "watermark": sink.watermark,
        "records_out": sink.emitted,
        "source_records": report.source_records,
        "checkpoints_taken": report.checkpoints_taken,
        "resumed_from_offset": report.resumed_from_offset,
        "dead_letters": _dead_letter_summaries(report),
        # Shard-local supervision tallies (skip/retry/dead-letter counts per
        # node); the coordinator folds them into the run's ExecutionReport
        # so failure policies report identically under any engine.
        "node_stats": {
            name: stats.as_dict() for name, stats in report.node_stats.items()
        },
        "completed": report.completed,
        # Ledger tail not yet shipped on a heartbeat, and the shard's profile
        # (kernel/node attribution) — both plain data, both optional.
        "ledger_events": ledger.drain() if ledger is not None else [],
        "profile": profiler.as_dict() if profiler is not None else None,
    }


def run_shard(task_bytes: bytes, in_queue: Any, out_queue: Any) -> None:
    """Worker process entry point: run one shard to its terminal message.

    ``task_bytes`` is the coordinator-pickled :class:`ShardTask` — passing
    bytes (rather than the object) keeps fork and spawn start methods
    byte-identical and guarantees the worker operates on a private deep
    copy of every pipeline, never on memory shared with the coordinator.
    """
    shard, epoch = -1, 0
    try:
        task = pickle.loads(task_bytes)
        shard, epoch = task.shard, task.epoch
        payload = _execute_shard(task, in_queue, out_queue)
        out_queue.put(("done", shard, _safe_dumps(payload), epoch))
    except BaseException as exc:  # noqa: BLE001 - must report before dying
        payload = {
            "shard": shard,
            "error_type": type(exc).__name__,
            "error": str(exc),
            "node": getattr(exc, "node", None),
            "record_id": getattr(exc, "record_id", None),
            "traceback": traceback.format_exc(limit=20),
        }
        out_queue.put(("error", shard, _safe_dumps(payload), epoch))
