"""Process-level chaos for the sharded runtime.

:mod:`repro.streaming.chaos` injects *logical* faults (exceptions, stalls,
duplicates) inside one process; this module injects the failure modes only a
multi-process runtime has: a worker that dies (SIGKILL, the OOM-killer
shape), a worker that hangs forever, a worker that is merely slow, and a
checkpoint file torn by a crash mid-write. They are the fixtures behind the
self-healing contract — kill a shard mid-run, watch the coordinator respawn
it from its checkpoint, and compare byte-identical output.

The injectors are :class:`~repro.core.errors.base.ErrorFunction` subclasses
so they ride inside a pollution pipeline across the worker pickle boundary.
Each is an identity transform: the record passes through unchanged, so a
plan containing a *disarmed* injector produces byte-identical output to the
same plan with the fault armed and recovered from — which is exactly the
equality the chaos property tests assert.

Kill and hang faults are gated on a *marker file* that the injector consumes
(unlinks) immediately before faulting: the first worker to reach the trigger
record dies, its respawned replacement finds no marker and sails through.
This mirrors a transient infrastructure fault rather than a deterministic
plan bug — deterministic failures are the supervisor's job, not recovery's.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Sequence

from repro.core.errors.base import ErrorFunction, ErrorOutput
from repro.errors import ChaosError
from repro.streaming.checkpoint import CHECKPOINT_MAGIC
from repro.streaming.record import Record


def _consume_marker(marker: str | Path) -> bool:
    """Atomically claim the fault marker; True if this call claimed it."""
    try:
        os.unlink(marker)
    except FileNotFoundError:
        return False
    except OSError:
        return False
    return True


class _TriggeredFault(ErrorFunction):
    """Identity error function that faults when the trigger record arrives.

    ``value`` is compared against ``record[attribute]``; the fault fires at
    most once per marker file. Subclasses implement :meth:`_fault`.
    """

    native_temporal = True  # whole-process fault: no target attributes

    def __init__(
        self, value, marker: str | Path, attribute: str = "value"
    ) -> None:
        super().__init__()
        self.value = value
        self.marker = str(marker)
        self.attribute = attribute

    def apply(
        self,
        record: Record,
        attributes: Sequence[str],
        tau: int,
        intensity: float = 1.0,
    ) -> ErrorOutput:
        if record.get(self.attribute) == self.value and _consume_marker(self.marker):
            self._fault()
        return record

    def _fault(self) -> None:
        raise NotImplementedError


class KillWorker(_TriggeredFault):
    """SIGKILL the current process at the trigger record.

    The hard shape of worker loss: no exception, no cleanup, no terminal
    message on the control queue — the coordinator only sees the exit code.
    """

    def _fault(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


class HangWorker(_TriggeredFault):
    """Stop making progress at the trigger record without dying.

    Sleeps in short slices so the process stays interruptible by the
    coordinator's SIGTERM/kill once the heartbeat watchdog fires.
    """

    def __init__(
        self,
        value,
        marker: str | Path,
        attribute: str = "value",
        hang_seconds: float = 3600.0,
    ) -> None:
        super().__init__(value, marker, attribute)
        self.hang_seconds = hang_seconds

    def _fault(self) -> None:
        deadline = time.monotonic() + self.hang_seconds
        while time.monotonic() < deadline:
            time.sleep(0.05)


class SlowWorker(ErrorFunction):
    """Identity transform that sleeps a little on every Nth record.

    Models a straggler shard (CPU contention, swapping): slow enough to
    exercise watchdog tolerance, never slow enough to *be* a hang — the
    heartbeat keeps flowing because records keep flowing.
    """

    native_temporal = True

    def __init__(self, delay: float = 0.005, every: int = 1) -> None:
        super().__init__()
        if delay < 0:
            raise ChaosError(f"delay must be >= 0, got {delay}")
        if every < 1:
            raise ChaosError(f"every must be >= 1, got {every}")
        self.delay = delay
        self.every = every
        self._count = 0

    def apply(
        self,
        record: Record,
        attributes: Sequence[str],
        tau: int,
        intensity: float = 1.0,
    ) -> ErrorOutput:
        self._count += 1
        if self._count % self.every == 0:
            time.sleep(self.delay)
        return record

    def reset(self) -> None:
        self._count = 0


def corrupt_checkpoint(path: str | Path, mode: str = "truncate") -> Path:
    """Damage a checkpoint file the way a crash mid-write would.

    ``truncate`` cuts the file in half (torn write); ``garble`` flips bytes
    in the payload while keeping the length (bit rot / partial overwrite);
    ``header`` truncates inside the integrity header itself. Used by tests
    and the chaos matrix to verify that restores reject the file with a
    :class:`~repro.errors.CheckpointError` naming it, and that shard
    recovery falls back to the previous intact snapshot.
    """
    path = Path(path)
    raw = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(raw[: max(len(CHECKPOINT_MAGIC), len(raw) // 2)])
    elif mode == "garble":
        body = bytearray(raw)
        for i in range(len(CHECKPOINT_MAGIC) + 64, len(body), 7):
            body[i] ^= 0xFF
        path.write_bytes(bytes(body))
    elif mode == "header":
        path.write_bytes(raw[: len(CHECKPOINT_MAGIC) + 8])
    else:
        raise ChaosError(f"unknown corruption mode {mode!r}")
    return path
