"""Deterministic, watermark-aware merge of per-shard output streams.

The integration step of a sharded run (Algorithm 1, lines 10-11, distributed
edition). Each worker emits its polluted records in processing order with a
piggybacked watermark (its largest emitted event time); the
:class:`ShardMerger` collects those chunks, tracks per-shard event-time
progress, and — once every shard has finished — produces the globally
ordered output.

Why this reproduces the sequential ordering byte-for-byte: the sequential
runner ends with one *stable* sort under the total-enough integration key
(:func:`repro.core.integrate.timestamp_sort_key` — timestamp, event time,
record id, sub-stream). Ties under that key can only occur between records
sharing a ``record_id`` (duplicate-polluter copies), and a record's copies
always live on a single shard in production order. So sorting each shard's
output stably and running a stable k-way :func:`heapq.merge` yields exactly
the sequence one global stable sort would — per-shard sorts restore
within-shard order, the merge never has to adjudicate a cross-shard tie.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.core.integrate import timestamp_sort_key
from repro.errors import ShardError
from repro.streaming.record import Record
from repro.streaming.schema import Schema


class ShardMerger:
    """Accumulates shard output chunks and merges them deterministically."""

    def __init__(self, schema: Schema, n_shards: int) -> None:
        if n_shards < 1:
            raise ShardError(f"merger needs >= 1 shard, got {n_shards}")
        self._schema = schema
        self.n_shards = n_shards
        self._chunks: list[list[Record]] = [[] for _ in range(n_shards)]
        #: Largest event time each shard has reported so far (None = nothing).
        self.watermarks: list[int | None] = [None] * n_shards

    def add_chunk(
        self, shard: int, records: Iterable[Record], watermark: int | None
    ) -> None:
        if shard < 0 or shard >= self.n_shards:
            raise ShardError(
                f"chunk from unknown shard {shard} (run has {self.n_shards})",
                shard=shard,
            )
        self._chunks[shard].extend(records)
        if watermark is not None:
            current = self.watermarks[shard]
            if current is None or watermark > current:
                self.watermarks[shard] = watermark

    @property
    def records_received(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)

    @property
    def low_watermark(self) -> int | None:
        """The reconciled global watermark: the minimum over all shards.

        Event time has only progressed past ``t`` once *every* shard has
        passed ``t`` — the same rule a multi-input union applies to its
        inputs' watermarks. ``None`` until every shard has reported one.
        """
        if any(w is None for w in self.watermarks):
            return None
        return min(self.watermarks)  # type: ignore[arg-type]

    def discard_shard(self, shard: int) -> None:
        """Forget everything received from one shard.

        Called by the recovery loop before a respawned worker replays its
        partition: the replacement re-emits the shard's full output (from
        its checkpoint onwards plus restored sink state), so chunks from
        the dead attempt must not survive or records would double-count.
        """
        if shard < 0 or shard >= self.n_shards:
            raise ShardError(
                f"cannot discard unknown shard {shard} (run has {self.n_shards})",
                shard=shard,
            )
        self._chunks[shard] = []
        self.watermarks[shard] = None

    def shard_records(self, shard: int) -> list[Record]:
        """The raw (unsorted) records received from one shard."""
        return list(self._chunks[shard])

    def merge(self) -> list[Record]:
        """Event-time-ordered union of all shard outputs.

        Per-shard stable sort + stable k-way merge under the sequential
        integration key; see the module docstring for why this is
        byte-identical to the sequential sort.
        """
        key = timestamp_sort_key(self._schema)
        runs = [sorted(chunk, key=key) for chunk in self._chunks]
        return list(heapq.merge(*runs, key=key))
