"""``pollute_parallel``: Algorithm 1 sharded across worker processes.

The parallel counterpart of :func:`repro.core.runner.pollute`. The
coordinator runs the *preparation* step (global record IDs + the replicated
event time ``tau``) exactly as the sequential runner would, hash- or
round-robin-partitions the prepared stream across ``parallelism`` worker
processes, lets each worker run Algorithm 1's pollution step over its
partition on a private stream engine, and then deterministically
re-integrates output, pollution log, and metrics.

Determinism contract
--------------------
* **Keyed plans** (``key_by=...``): output records, order, and pollution-log
  CSV are **byte-identical** to the sequential keyed run with the same seed,
  for every worker count. All records of a key live on one shard in arrival
  order, per-key named random streams are drawn in sequential order, and
  the shard merge reproduces the sequential stable sort exactly.
* **Unkeyed plans**: reproducible per ``(seed, parallelism)`` — the same
  invocation always produces the same bytes — but not invariant across
  worker counts, because each shard pollutes an arbitrary record subset
  under a shard-derived seed.

Checkpointing
-------------
With ``checkpoint_dir``, the run writes a ``parallel.json`` manifest (the
sharding geometry) plus one ``shard-NN/`` checkpoint store per worker.
``resume_from`` pointing at that directory restarts only from each shard's
latest snapshot: finished shards fast-forward through their (deterministic)
re-fed input, and a shard that crashed before its first checkpoint simply
reruns. A sequential ``.ckpt`` file is rejected with a clear error, as is a
manifest whose geometry or seed disagrees with the requested run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Hashable, Mapping, Sequence

from repro.core.log import PollutionLog
from repro.core.pipeline import PollutionPipeline
from repro.core.prepare import IdGenerator, prepare_stream
from repro.errors import CheckpointError, PollutionError, ShardError
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, RunLedger
from repro.obs.live import LiveAggregator, ProgressRenderer
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.parallel.environment import ShardedEnvironment, ShardOutcome
from repro.parallel.shard import ShardTask
from repro.streaming.partition import (
    KeyPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.source import Source
from repro.streaming.split import SplitStrategy
from repro.streaming.supervision import (
    DeadLetter,
    ExecutionReport,
    FailureContext,
    FailurePolicy,
)

#: Manifest filename marking a checkpoint directory as a *parallel* run's.
PARALLEL_MANIFEST = "parallel.json"
#: Bump when the manifest layout changes incompatibly.
PARALLEL_FORMAT_VERSION = 1


def shard_store_dir(checkpoint_dir: str | Path, shard: int) -> Path:
    """The per-shard checkpoint store directory inside a parallel run's dir."""
    return Path(checkpoint_dir) / f"shard-{shard:02d}"


def _manifest_digest(body: dict[str, Any]) -> str:
    """SHA-256 over the manifest body in canonical (sorted, compact) JSON."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_manifest(
    checkpoint_dir: str | Path,
    parallelism: int,
    keyed: bool,
    seed: int | None,
    checkpoint_interval: int,
) -> Path:
    """Record the sharding geometry a resume must reproduce.

    The manifest carries a SHA-256 ``digest`` over its own body so a resume
    can tell a *torn or hand-edited* manifest apart from a merely wrong one
    — silently resuming with corrupted geometry would produce plausible but
    irreproducible output.
    """
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / PARALLEL_MANIFEST
    body = {
        "version": PARALLEL_FORMAT_VERSION,
        "parallelism": parallelism,
        "keyed": keyed,
        "seed": seed,
        "checkpoint_interval": checkpoint_interval,
    }
    body["digest"] = _manifest_digest(body)
    path.write_text(json.dumps(body, indent=2))
    return path


def read_manifest(checkpoint_dir: str | Path) -> dict[str, Any]:
    """Load and validate a parallel run's manifest.

    Raises :class:`~repro.errors.CheckpointError` when the path is a
    sequential checkpoint file, lacks a manifest, or has an incompatible
    format version — the three ways a resume target can be the wrong kind.
    """
    directory = Path(checkpoint_dir)
    if directory.is_file():
        raise CheckpointError(
            f"{directory} is a sequential checkpoint file; a parallel run "
            "resumes from a parallel checkpoint *directory* (one containing "
            f"{PARALLEL_MANIFEST}). Re-run without parallelism to resume it."
        )
    path = directory / PARALLEL_MANIFEST
    if not path.is_file():
        raise CheckpointError(
            f"{directory} has no {PARALLEL_MANIFEST}; it is not a parallel "
            "run's checkpoint directory"
        )
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"could not read {path}: {exc}") from exc
    if manifest.get("version") != PARALLEL_FORMAT_VERSION:
        raise CheckpointError(
            f"parallel checkpoint {directory} has format version "
            f"{manifest.get('version')}, this runtime reads version "
            f"{PARALLEL_FORMAT_VERSION}"
        )
    stored = manifest.get("digest")
    if stored is not None:
        body = {k: v for k, v in manifest.items() if k != "digest"}
        if _manifest_digest(body) != stored:
            raise CheckpointError(
                f"manifest {path} failed integrity verification: SHA-256 "
                "digest mismatch (the file was corrupted or edited after the "
                "run wrote it)"
            )
    return manifest


def _resolve_resume(
    resume_from: str | Path,
    parallelism: int,
    keyed: bool,
    seed: int | None,
) -> list[str | None]:
    """Per-shard checkpoint paths for a resume, validated against the manifest."""
    manifest = read_manifest(resume_from)
    if manifest["parallelism"] != parallelism:
        raise CheckpointError(
            f"checkpoint {resume_from} was taken with parallelism "
            f"{manifest['parallelism']}; resuming requires the same worker "
            f"count, got {parallelism}"
        )
    if bool(manifest["keyed"]) != keyed:
        raise CheckpointError(
            f"checkpoint {resume_from} is a "
            f"{'keyed' if manifest['keyed'] else 'unkeyed'} run; the resuming "
            f"plan is {'keyed' if keyed else 'unkeyed'}"
        )
    if manifest["seed"] != seed:
        raise CheckpointError(
            f"checkpoint {resume_from} was taken with seed {manifest['seed']}; "
            f"resuming with seed {seed} would break reproducibility"
        )
    from repro.streaming.checkpoint import CHECKPOINT_SUFFIX

    paths: list[str | None] = []
    for shard in range(parallelism):
        store = shard_store_dir(resume_from, shard)
        latest = (
            sorted(store.glob(f"chk-*{CHECKPOINT_SUFFIX}"))[-1]
            if store.is_dir() and sorted(store.glob(f"chk-*{CHECKPOINT_SUFFIX}"))
            else None
        )
        paths.append(str(latest) if latest is not None else None)
    return paths


def _coerce_source(
    data: Source | Sequence[Mapping[str, Any] | Record],
    schema: Schema | None,
) -> tuple[Source, Schema]:
    from repro.streaming.source import CollectionSource

    if isinstance(data, Source):
        return data, data.schema
    if schema is None:
        raise PollutionError("a schema is required when passing raw rows")
    return CollectionSource(schema, data, validate=False), schema


def _rebuild_dead_letters(report: ExecutionReport, outcomes: list[ShardOutcome]) -> None:
    for outcome in outcomes:
        for summary in outcome.dead_letters:
            context = FailureContext(
                node=summary["node"],
                record_id=summary["record_id"],
                offset=summary["offset"],
                exception=ShardError(
                    f"{summary['error_type']}: {summary['error']}",
                    shard=outcome.shard,
                    node=summary["node"],
                    record_id=summary["record_id"],
                ),
                attempts=summary["attempts"],
                values=summary["values"],
            )
            report.dead_letters.entries.append(
                DeadLetter(summary["record"], context)
            )


def pollute_parallel(
    data: Source | Sequence[Mapping[str, Any] | Record],
    pipelines: PollutionPipeline | Sequence[PollutionPipeline] | None = None,
    schema: Schema | None = None,
    *,
    parallelism: int = 2,
    key_by: str | Callable[[Record], Hashable] | None = None,
    pipeline_factory: Callable[[Hashable], PollutionPipeline] | None = None,
    split: SplitStrategy | None = None,
    seed: int | None = None,
    log: bool = True,
    failure_policy: FailurePolicy | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_interval: int = 100,
    resume_from: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    mp_context: str | Any | None = None,
    chunk_size: int = 256,
    queue_depth: int = 8,
    check: str = "warn",
    batch_size: int | None = None,
    max_shard_restarts: int = 2,
    heartbeat_timeout: float | None = 30.0,
    telemetry: LiveAggregator | None = None,
    ledger: RunLedger | None = None,
    profile: bool = False,
    progress: ProgressRenderer | bool = False,
):
    """Run Algorithm 1 sharded across ``parallelism`` worker processes.

    Mirrors :func:`repro.core.runner.pollute` (same inputs, same
    :class:`~repro.core.runner.PollutionResult` output); see the module
    docstring for the determinism contract and checkpoint layout. Keyed
    plans take either ``pipeline_factory`` (a picklable per-key factory) or
    a single template pipeline, which is cloned per key. ``check`` runs the
    :mod:`repro.check` pre-flight before any worker starts (``"error"`` |
    ``"warn"`` | ``"off"``). ``batch_size`` (> 1) turns on the
    micro-batching fast path inside every shard worker (:mod:`repro.batch`);
    shard output is byte-identical with or without it.

    ``max_shard_restarts`` and ``heartbeat_timeout`` configure the
    self-healing coordinator: a worker that crashes or goes silent is
    respawned in-run from its newest intact checkpoint up to
    ``max_shard_restarts`` times per shard, after which ``failure_policy``
    decides between failing the run (``FAIL_FAST``, the no-policy default)
    and degrading that shard to a sequential drain on the coordinator.
    ``heartbeat_timeout=None`` disables hang detection. Recovery of a keyed
    checkpointed run is byte-identical to the unfaulted run.

    The live telemetry plane is opt-in: ``telemetry`` (a
    :class:`~repro.obs.live.LiveAggregator`) folds heartbeat-piggybacked
    shard snapshots into live gauges; ``ledger`` (a
    :class:`~repro.obs.ledger.RunLedger`) collects the merged lifecycle
    event log; ``profile=True`` attributes wall time to phases, kernels,
    and nodes (``result.profile``); ``progress`` (``True`` or a
    :class:`~repro.obs.live.ProgressRenderer`) paints a live per-shard
    table. All are observational only — output bytes are unaffected.
    """
    from repro.core.runner import _run_preflight
    from repro.plan import PlanRequest, compile_plan, execute_plan

    profiler = Profiler() if profile else None
    if profiler is not None:
        with profiler.phase("preflight"):
            _run_preflight(
                check,
                pipelines,
                data,
                schema,
                seed=seed,
                parallelism=parallelism,
                key_by=key_by,
                pipeline_factory=pipeline_factory,
                failure_policy=failure_policy,
                batch_size=batch_size,
            )
    else:
        _run_preflight(
            check,
            pipelines,
            data,
            schema,
            seed=seed,
            parallelism=parallelism,
            key_by=key_by,
            pipeline_factory=pipeline_factory,
            failure_policy=failure_policy,
            batch_size=batch_size,
        )
    request = PlanRequest(
        pipelines=pipelines,
        schema=schema,
        split=split,
        seed=seed,
        log=log,
        failure_policy=failure_policy,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        resume_from=resume_from,
        metrics=metrics,
        parallelism=parallelism,
        key_by=key_by,
        pipeline_factory=pipeline_factory,
        mp_context=mp_context,
        batch_size=batch_size,
        max_shard_restarts=max_shard_restarts,
        heartbeat_timeout=heartbeat_timeout,
        profile=profile,
        profiler=profiler,
        ledger=ledger,
        progress=progress,
        telemetry=telemetry,
        chunk_size=chunk_size,
        queue_depth=queue_depth,
    )
    return execute_plan(compile_plan(request), data)


def _execute_parallel_plan(plan, data):
    """Run a compiled parallel plan: the sharded coordinator loop.

    Consumes the plan's normalized fields (``plan.pipelines`` /
    ``plan.strategy`` for unkeyed runs, ``plan.key_selector`` /
    ``plan.pipeline_factory`` for keyed ones); every validation and mode
    decision already happened in :func:`repro.plan.compile_plan`.
    """
    from repro.core.runner import PollutionResult

    request = plan.request
    parallelism: int = request.parallelism
    keyed = request.key_by is not None
    seed = request.seed
    log = request.log
    metrics = request.metrics
    failure_policy = request.failure_policy
    checkpoint_dir = request.checkpoint_dir
    checkpoint_interval = request.checkpoint_interval
    resume_from = request.resume_from
    chunk_size = request.chunk_size
    batch_size = request.batch_size
    ledger = request.ledger
    progress = request.progress
    plan_pipelines: list[PollutionPipeline] | None = plan.pipelines
    strategy: SplitStrategy | None = plan.strategy
    key_selector = plan.key_selector
    pipeline_factory = plan.pipeline_factory

    profiler = request.profiler
    if profiler is None and request.profile:
        profiler = Profiler()
        with profiler.phase("preflight"):
            pass  # pre-flight already ran in the delegating entry point
    aggregator = request.telemetry
    renderer: ProgressRenderer | None = None
    if isinstance(progress, ProgressRenderer):
        renderer = progress
        if renderer.aggregator is None:
            renderer.aggregator = aggregator = (
                aggregator if aggregator is not None else LiveAggregator()
            )
        elif aggregator is None:
            aggregator = renderer.aggregator
    elif progress:
        if aggregator is None:
            aggregator = LiveAggregator()
        renderer = ProgressRenderer(aggregator)

    source, schema = _coerce_source(data, request.schema)
    metered = request.metered

    resume_paths: list[str | None] = [None] * parallelism
    if resume_from is not None:
        resume_paths = _resolve_resume(resume_from, parallelism, keyed, seed)
        if checkpoint_dir is None:
            checkpoint_dir = resume_from
    if checkpoint_dir is not None:
        write_manifest(checkpoint_dir, parallelism, keyed, seed, checkpoint_interval)

    if ledger is not None:
        config = {
            "parallelism": parallelism,
            "keyed": keyed,
            "seed": seed,
            "checkpoint_interval": checkpoint_interval if checkpoint_dir else None,
            "batch_size": batch_size,
            "chunk_size": chunk_size,
            "pipelines": (
                sorted(p.name for p in plan_pipelines)
                if plan_pipelines is not None
                else None
            ),
        }
        ledger.record(
            "run.start",
            ledger_schema=LEDGER_SCHEMA_VERSION,
            config_hash=_manifest_digest(config),
            parallelism=parallelism,
            keyed=keyed,
            seed=seed,
        )

    # Preparation (Algorithm 1, lines 1-3) happens *before* sharding so
    # record identities are global and shard-count-independent.
    if profiler is not None:
        with profiler.phase("prepare"):
            clean = list(prepare_stream(source, schema, IdGenerator()))
    else:
        clean = list(prepare_stream(source, schema, IdGenerator()))

    partitioner: Partitioner = (
        KeyPartitioner(parallelism, key_selector)
        if keyed
        else RoundRobinPartitioner(parallelism)
    )
    tasks = [
        ShardTask(
            shard=shard,
            n_shards=parallelism,
            schema=schema,
            seed=seed,
            keyed=keyed,
            log=log,
            metered=metered,
            sample_every=metrics.sample_every if metered else 16,
            key_selector=key_selector,
            pipeline_factory=pipeline_factory if keyed else None,
            pipelines=plan_pipelines,
            split=strategy,
            failure_policy=failure_policy,
            checkpoint_dir=(
                str(shard_store_dir(checkpoint_dir, shard))
                if checkpoint_dir is not None
                else None
            ),
            checkpoint_interval=checkpoint_interval,
            resume_path=resume_paths[shard],
            chunk_size=chunk_size,
            batch_size=batch_size,
            telemetry=aggregator is not None,
            ledger=ledger is not None,
            profile=request.profile,
        )
        for shard in range(parallelism)
    ]

    env = ShardedEnvironment(
        parallelism,
        mp_context=request.mp_context,
        queue_depth=request.queue_depth,
        chunk_size=chunk_size,
        max_shard_restarts=request.max_shard_restarts,
        heartbeat_timeout=request.heartbeat_timeout,
        failure_policy=failure_policy,
        telemetry=aggregator,
        ledger=ledger,
        progress=renderer,
    )
    try:
        if profiler is not None:
            with profiler.phase("execute"):
                outcomes, merger = env.execute(clean, partitioner, tasks)
        else:
            outcomes, merger = env.execute(clean, partitioner, tasks)
    finally:
        if renderer is not None:
            renderer.finish()

    if profiler is not None:
        with profiler.phase("merge"):
            polluted = merger.merge()
    else:
        polluted = merger.merge()
    pollution_log = (
        PollutionLog.merged(outcome.log_events for outcome in outcomes)
        if log
        else PollutionLog()
    )
    if profiler is not None:
        for outcome in outcomes:
            if outcome.profile is not None:
                profiler.merge_shard(outcome.shard, outcome.profile)
        profiler.finish()

    report = ExecutionReport(supervised=failure_policy is not None)
    report.completed = all(outcome.completed for outcome in outcomes)
    report.source_records = sum(outcome.source_records for outcome in outcomes)
    report.checkpoints_taken = sum(outcome.checkpoints_taken for outcome in outcomes)
    report.resumed_from_offset = sum(
        outcome.resumed_from_offset for outcome in outcomes
    )
    report.shard_restarts = sum(outcome.restarts for outcome in outcomes)
    report.degraded_shards = sum(1 for outcome in outcomes if outcome.degraded)
    _rebuild_dead_letters(report, outcomes)
    # Fold shard-local supervision tallies into the report's own registry
    # (distinct from the user's, so metered runs — whose worker registries
    # merge below — are not double-counted anywhere).
    for outcome in outcomes:
        for name, tallies in outcome.node_stats.items():
            stats = report.stats_for(name)
            stats.processed += tallies["processed"]
            stats.skipped += tallies["skipped"]
            stats.retried += tallies["retried"]
            stats.dead_lettered += tallies["dead_lettered"]

    if metered:
        for outcome in outcomes:
            if outcome.metrics is not None:
                metrics.merge(outcome.metrics)
        metrics.counter("parallel_shards_total").value = parallelism
        if report.shard_restarts:
            metrics.counter("parallel_shard_restarts_total").value = (
                report.shard_restarts
            )
        if report.degraded_shards:
            metrics.counter("parallel_degraded_shards_total").value = (
                report.degraded_shards
            )
        low = merger.low_watermark
        if low is not None:
            metrics.gauge("merged_watermark").set(low)
        if profiler is not None:
            profiler.to_metrics(metrics)

    if ledger is not None:
        ledger.record(
            "run.complete",
            records_in=len(clean),
            records_out=len(polluted),
            completed=report.completed,
            shard_restarts=report.shard_restarts,
            degraded_shards=report.degraded_shards,
        )

    return PollutionResult(
        clean=clean,
        polluted=polluted,
        log=pollution_log,
        schema=schema,
        seed=seed,
        report=report,
        metrics=metrics if metered else None,
        profile=profiler,
        ledger=ledger,
    )
