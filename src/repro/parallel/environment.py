"""The sharded execution coordinator.

:class:`ShardedEnvironment` owns the full lifecycle of a parallel pollution
run: it pre-flight-pickles every shard plan (so unpicklable plans fail with
a coordinator-side :class:`~repro.errors.ShardError`, not a multiprocessing
traceback), spawns one worker process per shard, streams prepared records to
them through bounded queues (the bound *is* the backpressure: a slow worker
stalls the feeder on its queue instead of letting the coordinator buffer
unboundedly), drains output/terminal messages, detects crashed workers via
their exit codes, and hands the collected per-shard outcomes plus the
record merger back to the caller.

Failure model
-------------
A worker has exactly two legitimate ends: a ``done`` message or an
``error`` message. Anything else — a process found dead without a terminal
message — is a hard crash (OOM kill, segfault in an extension, ``kill -9``)
and surfaces as a :class:`~repro.errors.ShardError` carrying the exit code.
Either way the coordinator sets the abort flag (unblocking the feeder
thread from any full queue), terminates the remaining workers, and raises;
per-shard checkpoints taken before the failure remain on disk for a
``resume_from`` run.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import ShardError
from repro.parallel.merge import ShardMerger
from repro.parallel.shard import ShardTask, run_shard
from repro.streaming.partition import Partitioner
from repro.streaming.record import Record


@dataclass
class ShardOutcome:
    """What one worker shard reported in its terminal ``done`` message."""

    shard: int
    log_events: list = field(default_factory=list)
    metrics: Any | None = None
    watermark: int | None = None
    records_out: int = 0
    source_records: int = 0
    checkpoints_taken: int = 0
    resumed_from_offset: int = 0
    dead_letters: list[dict[str, Any]] = field(default_factory=list)
    completed: bool = False
    degraded: bool = False


class ShardedEnvironment:
    """Runs N worker shards over a partitioned record stream.

    Parameters
    ----------
    parallelism:
        Number of worker processes (>= 1; one worker still exercises the
        whole sharded path, which is what the determinism property tests
        rely on).
    mp_context:
        A :mod:`multiprocessing` start-method name (``"fork"``, ``"spawn"``)
        or context object; default is the platform context. Everything a
        worker needs ships as explicit pickled bytes, so both start methods
        behave identically.
    queue_depth:
        Chunks in flight per worker input queue — the backpressure window.
    chunk_size:
        Records per queue chunk (amortizes pickling overhead).
    """

    def __init__(
        self,
        parallelism: int,
        mp_context: str | Any | None = None,
        queue_depth: int = 8,
        chunk_size: int = 256,
        poll_interval: float = 0.05,
    ) -> None:
        if parallelism < 1:
            raise ShardError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        if mp_context is None or isinstance(mp_context, str):
            self._ctx = multiprocessing.get_context(mp_context)
        else:
            self._ctx = mp_context
        self.queue_depth = max(1, queue_depth)
        self.chunk_size = max(1, chunk_size)
        self.poll_interval = poll_interval

    # -- feeding -------------------------------------------------------------

    def _put(self, q: Any, item: Any, abort: threading.Event) -> bool:
        """Put with backpressure: block on a full queue, but heed the abort."""
        while not abort.is_set():
            try:
                q.put(item, timeout=0.1)
                return True
            except queue_mod.Full:
                continue
        return False

    def _feed(
        self,
        records: Iterable[Record],
        partitioner: Partitioner,
        in_queues: list[Any],
        abort: threading.Event,
        errors: list[BaseException],
    ) -> None:
        n = len(in_queues)
        buffers: list[list[Record]] = [[] for _ in range(n)]
        try:
            for index, record in enumerate(records):
                shard = partitioner.shard_of(record, index)
                buffers[shard].append(record)
                if len(buffers[shard]) >= self.chunk_size:
                    if not self._put(in_queues[shard], ("records", buffers[shard]), abort):
                        return
                    buffers[shard] = []
            for shard in range(n):
                if buffers[shard]:
                    if not self._put(in_queues[shard], ("records", buffers[shard]), abort):
                        return
                if not self._put(in_queues[shard], ("eof", None), abort):
                    return
        except BaseException as exc:  # noqa: BLE001 - reported by the drain loop
            errors.append(exc)

    # -- draining ------------------------------------------------------------

    @staticmethod
    def _decode_payload(blob: bytes) -> dict[str, Any]:
        return pickle.loads(blob)

    def _decode_done(self, shard: int, blob: bytes) -> ShardOutcome:
        payload = self._decode_payload(blob)
        if payload.get("degraded"):
            # The worker finished but its result payload would not pickle;
            # treat as a failure — a silent partial result is worse.
            raise ShardError(
                f"shard {shard} result payload was not serializable: "
                f"{payload.get('metrics') or payload.get('log_events')!r}",
                shard=shard,
            )
        return ShardOutcome(
            shard=payload["shard"],
            log_events=payload["log_events"],
            metrics=payload["metrics"],
            watermark=payload["watermark"],
            records_out=payload["records_out"],
            source_records=payload["source_records"],
            checkpoints_taken=payload["checkpoints_taken"],
            resumed_from_offset=payload.get("resumed_from_offset", 0),
            dead_letters=payload["dead_letters"],
            completed=payload["completed"],
        )

    def _decode_error(self, shard: int, blob: bytes) -> ShardError:
        payload = self._decode_payload(blob)
        error = ShardError(
            f"shard {shard} failed: {payload.get('error_type')}: {payload.get('error')}",
            shard=shard,
            node=payload.get("node"),
            record_id=payload.get("record_id"),
        )
        error.worker_traceback = payload.get("traceback")
        return error

    def _grace_drain(
        self, out_queue: Any, merger: ShardMerger, outcomes: dict[int, ShardOutcome]
    ) -> ShardError | None:
        """Drain straggler messages after seeing a dead worker.

        A process can be dead while its final message still sits in the
        queue's pipe buffer; give delivery a moment before declaring a hard
        crash.
        """
        deadline = time.monotonic() + 1.0
        failure: ShardError | None = None
        while time.monotonic() < deadline:
            try:
                msg = out_queue.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            failure = self._dispatch(msg, merger, outcomes) or failure
            if failure is not None:
                break
        return failure

    def _dispatch(
        self, msg: tuple, merger: ShardMerger, outcomes: dict[int, ShardOutcome]
    ) -> ShardError | None:
        kind = msg[0]
        if kind == "chunk":
            _, shard, records, watermark = msg
            merger.add_chunk(shard, records, watermark)
            return None
        if kind == "done":
            _, shard, blob = msg
            outcomes[shard] = self._decode_done(shard, blob)
            return None
        _, shard, blob = msg
        return self._decode_error(shard, blob)

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        records: Sequence[Record],
        partitioner: Partitioner,
        tasks: Sequence[ShardTask],
    ) -> tuple[list[ShardOutcome], ShardMerger]:
        """Run every shard to completion; return outcomes (by shard) + merger.

        ``records`` must already be prepared (IDs and event times assigned):
        identity assignment is the coordinator's job precisely so that shard
        output and the merged pollution log reference globally consistent
        record IDs.
        """
        if len(tasks) != self.parallelism:
            raise ShardError(
                f"{len(tasks)} shard tasks for parallelism {self.parallelism}"
            )
        if partitioner.n_shards != self.parallelism:
            raise ShardError(
                f"partitioner routes to {partitioner.n_shards} shards but "
                f"parallelism is {self.parallelism}"
            )
        blobs = []
        for task in tasks:
            try:
                blobs.append(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception as exc:
                raise ShardError(
                    f"shard {task.shard} plan is not picklable (sources, sinks, "
                    f"key selectors, and pipelines must serialize to cross the "
                    f"process boundary): {exc}",
                    shard=task.shard,
                ) from exc

        n = self.parallelism
        in_queues = [self._ctx.Queue(maxsize=self.queue_depth) for _ in range(n)]
        out_queue = self._ctx.Queue()
        workers = [
            self._ctx.Process(
                target=run_shard,
                args=(blobs[i], in_queues[i], out_queue),
                name=f"repro-shard-{i}",
                daemon=True,
            )
            for i in range(n)
        ]
        merger = ShardMerger(tasks[0].schema, n)
        outcomes: dict[int, ShardOutcome] = {}
        abort = threading.Event()
        feed_errors: list[BaseException] = []
        feeder = threading.Thread(
            target=self._feed,
            args=(records, partitioner, in_queues, abort, feed_errors),
            name="repro-shard-feeder",
            daemon=True,
        )
        failure: ShardError | None = None
        try:
            for worker in workers:
                worker.start()
            feeder.start()
            while len(outcomes) < n and failure is None:
                if feed_errors:
                    exc = feed_errors[0]
                    failure = ShardError(
                        f"record partitioning failed: {type(exc).__name__}: {exc}"
                    )
                    failure.__cause__ = exc
                    break
                try:
                    msg = out_queue.get(timeout=self.poll_interval)
                except queue_mod.Empty:
                    failure = self._check_liveness(workers, out_queue, merger, outcomes)
                    continue
                failure = self._dispatch(msg, merger, outcomes)
        finally:
            abort.set()
            if failure is not None or len(outcomes) < n:
                for worker in workers:
                    if worker.is_alive():
                        worker.terminate()
            feeder.join(timeout=5.0)
            for worker in workers:
                worker.join(timeout=5.0)
                if worker.is_alive():
                    worker.kill()
                    worker.join(timeout=5.0)
            for q in in_queues:
                q.cancel_join_thread()
                q.close()
            out_queue.cancel_join_thread()
            out_queue.close()
        if failure is not None:
            raise failure
        return [outcomes[i] for i in range(n)], merger

    def _check_liveness(
        self,
        workers: list[Any],
        out_queue: Any,
        merger: ShardMerger,
        outcomes: dict[int, ShardOutcome],
    ) -> ShardError | None:
        for shard, worker in enumerate(workers):
            if shard in outcomes or worker.is_alive():
                continue
            failure = self._grace_drain(out_queue, merger, outcomes)
            if failure is not None:
                return failure
            if shard in outcomes:
                continue
            return ShardError(
                f"shard {shard} worker died without reporting "
                f"(exit code {worker.exitcode}); partial checkpoints, if "
                f"enabled, remain on disk for resume",
                shard=shard,
                exitcode=worker.exitcode,
            )
        return None
