"""The sharded execution coordinator, with in-run self-healing.

:class:`ShardedEnvironment` owns the full lifecycle of a parallel pollution
run: it pre-flight-pickles every shard plan (so unpicklable plans fail with
a coordinator-side :class:`~repro.errors.ShardError`, not a multiprocessing
traceback), spawns one worker process per shard, streams prepared records to
them through bounded queues (the bound *is* the backpressure: a slow worker
stalls its feeder on its queue instead of letting the coordinator buffer
unboundedly), drains output/terminal/heartbeat messages, and hands the
collected per-shard outcomes plus the record merger back to the caller.

Failure model and recovery protocol
-----------------------------------
A worker has exactly two legitimate ends: a ``done`` message or an
``error`` message. An ``error`` is a *structured plan failure* — the shard's
environment raised deterministically — and aborts the run immediately:
respawning would replay the same records into the same exception and burn
the restart budget for nothing.

Everything else is an *infrastructure fault*, and those are recovered
in-run. The watchdog (run between queue polls) detects two shapes:

* **crashed** — the process is dead without a terminal message (OOM kill,
  segfault in an extension, ``kill -9``), observed via the exit code;
* **hung** — the process is alive but has sent no message (heartbeat,
  chunk, or terminal) for longer than ``heartbeat_timeout``. Heartbeats are
  progress-tied on the worker side, so a worker wedged inside an operator
  goes silent rather than heartbeating through its own hang.

Recovery is a per-shard state machine::

    RUNNING --crash/hang--> RECOVERING --respawn--> RUNNING
        RECOVERING --budget exhausted--> FAIL_FAST: raise ShardError
                                     \\-> else: DEGRADED coordinator drain

``RECOVERING`` kills the old attempt, bumps the shard's *epoch* (messages
from superseded attempts are dropped by epoch tag), discards the dead
attempt's merged chunks, sleeps an exponential backoff, and respawns the
shard from its newest *integrity-verified* checkpoint (a snapshot torn by
the crash fails its SHA-256 digest and recovery falls back to the previous
one, or to scratch). Because shard state — RNG snapshots, sink contents,
pollution log — restores through the existing checkpoint protocol, a keyed
run that recovered is byte-identical to one that never faulted.

After ``max_shard_restarts`` failed attempts the run's
:class:`~repro.streaming.supervision.FailurePolicy` decides: ``FAIL_FAST``
(or no policy) raises a :class:`~repro.errors.ShardError`; any other policy
degrades gracefully — the coordinator drains that shard's partition
sequentially in-process, preserving output and determinism at the cost of
that shard's parallelism.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ShardError
from repro.obs.ledger import RunLedger
from repro.obs.live import LiveAggregator, ProgressRenderer
from repro.parallel.merge import ShardMerger
from repro.parallel.shard import ShardTask, _execute_shard, run_shard
from repro.streaming.checkpoint import latest_valid_checkpoint
from repro.streaming.partition import Partitioner
from repro.streaming.record import Record
from repro.streaming.supervision import FailureAction, FailurePolicy


@dataclass
class ShardOutcome:
    """What one worker shard reported in its terminal ``done`` message."""

    shard: int
    log_events: list = field(default_factory=list)
    metrics: Any | None = None
    watermark: int | None = None
    records_out: int = 0
    source_records: int = 0
    checkpoints_taken: int = 0
    resumed_from_offset: int = 0
    dead_letters: list[dict[str, Any]] = field(default_factory=list)
    #: Shard-local supervision tallies per node (skipped/retried/...).
    node_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    completed: bool = False
    #: Times this shard was respawned before completing.
    restarts: int = 0
    #: True when the shard finished via the coordinator's sequential drain.
    degraded: bool = False
    #: Worker-side ledger tail shipped in the terminal payload.
    ledger_events: list[dict[str, Any]] = field(default_factory=list)
    #: Worker-side profile (``Profiler.as_dict()``) when profiling was on.
    profile: dict[str, Any] | None = None


class _ShardRuntime:
    """Coordinator-side state of one shard across its attempts."""

    __slots__ = (
        "shard", "task", "assignment", "epoch", "in_queue", "worker",
        "feeder", "stop", "restarts", "last_seen",
    )

    def __init__(self, shard: int, task: ShardTask, assignment: list[Record]) -> None:
        self.shard = shard
        self.task = task
        self.assignment = assignment
        self.epoch = 0
        self.in_queue: Any | None = None
        self.worker: Any | None = None
        self.feeder: threading.Thread | None = None
        self.stop = threading.Event()
        self.restarts = 0
        self.last_seen = 0.0


class ShardedEnvironment:
    """Runs N worker shards over a partitioned record stream.

    Parameters
    ----------
    parallelism:
        Number of worker processes (>= 1; one worker still exercises the
        whole sharded path, which is what the determinism property tests
        rely on).
    mp_context:
        A :mod:`multiprocessing` start-method name (``"fork"``, ``"spawn"``)
        or context object; default is the platform context. Everything a
        worker needs ships as explicit pickled bytes, so both start methods
        behave identically.
    queue_depth:
        Chunks in flight per worker input queue — the backpressure window.
    chunk_size:
        Records per queue chunk (amortizes pickling overhead).
    max_shard_restarts:
        In-run respawn budget *per shard* for crashed or hung workers; 0
        disables recovery (first fault falls through to the policy).
    heartbeat_timeout:
        Seconds of per-shard silence before the watchdog declares a hang;
        ``None`` disables hang detection (crashes are still detected via
        exit codes).
    restart_backoff:
        Base of the exponential pause before respawn attempt ``k``:
        ``restart_backoff * 2**(k-1)`` seconds.
    failure_policy:
        What to do when a shard exhausts its restart budget: ``FAIL_FAST``
        (also the ``None`` default) raises; any other action degrades to a
        sequential coordinator drain of that shard's partition.
    telemetry:
        A :class:`~repro.obs.live.LiveAggregator` to fold heartbeat
        telemetry snapshots and chunk arrivals into (live per-shard gauges).
    ledger:
        A :class:`~repro.obs.ledger.RunLedger` recording coordinator-side
        lifecycle events (spawn, crash/hang detection, respawn, policy
        decisions, terminal messages) and absorbing worker-streamed events.
    progress:
        A :class:`~repro.obs.live.ProgressRenderer` refreshed from the
        coordinator's drain loop.
    """

    def __init__(
        self,
        parallelism: int,
        mp_context: str | Any | None = None,
        queue_depth: int = 8,
        chunk_size: int = 256,
        poll_interval: float = 0.05,
        max_shard_restarts: int = 2,
        heartbeat_timeout: float | None = 30.0,
        restart_backoff: float = 0.05,
        failure_policy: FailurePolicy | None = None,
        telemetry: LiveAggregator | None = None,
        ledger: RunLedger | None = None,
        progress: ProgressRenderer | None = None,
    ) -> None:
        if parallelism < 1:
            raise ShardError(f"parallelism must be >= 1, got {parallelism}")
        if max_shard_restarts < 0:
            raise ShardError(
                f"max_shard_restarts must be >= 0, got {max_shard_restarts}"
            )
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ShardError(
                f"heartbeat_timeout must be > 0 (or None), got {heartbeat_timeout}"
            )
        self.parallelism = parallelism
        if mp_context is None or isinstance(mp_context, str):
            self._ctx = multiprocessing.get_context(mp_context)
        else:
            self._ctx = mp_context
        self.queue_depth = max(1, queue_depth)
        self.chunk_size = max(1, chunk_size)
        self.poll_interval = poll_interval
        self.max_shard_restarts = max_shard_restarts
        self.heartbeat_timeout = heartbeat_timeout
        self.restart_backoff = max(0.0, restart_backoff)
        self.failure_policy = failure_policy
        self._telemetry = telemetry
        self._ledger = ledger
        self._progress = progress

    # -- feeding -------------------------------------------------------------

    def _put(
        self, q: Any, item: Any, stop: threading.Event, live: Callable[[], bool]
    ) -> bool:
        """Put with backpressure, aborting on a stopped attempt or dead peer.

        Blocking forever on a full queue whose consumer has died is the
        classic coordinator deadlock; every timeout slice re-checks both the
        attempt's stop flag (set by recovery/teardown) and the worker's own
        liveness, so a feeder never outlives the process it feeds by more
        than ~0.1s.
        """
        while not stop.is_set():
            try:
                q.put(item, timeout=0.1)
                return True
            except queue_mod.Full:
                if not live():
                    return False
        return False

    def _feed_shard(
        self,
        assignment: list[Record],
        in_queue: Any,
        stop: threading.Event,
        live: Callable[[], bool],
    ) -> None:
        """Feed one attempt its full partition, then EOF.

        Respawned attempts get the identical feed: resume skipping happens
        on the worker side (``QueueSource.iter_from``), which keeps the
        coordinator's partitioning single-pass and deterministic.
        """
        chunk = self.chunk_size
        try:
            for start in range(0, len(assignment), chunk):
                if not self._put(
                    in_queue, ("records", assignment[start : start + chunk]), stop, live
                ):
                    return
            self._put(in_queue, ("eof", None), stop, live)
        except Exception:  # noqa: BLE001 - queue torn down under the feeder
            pass

    # -- decoding ------------------------------------------------------------

    @staticmethod
    def _decode_payload(blob: bytes) -> dict[str, Any]:
        return pickle.loads(blob)

    def _outcome_from_payload(self, shard: int, payload: dict[str, Any]) -> ShardOutcome:
        if payload.get("degraded"):
            # The worker finished but its result payload would not pickle;
            # treat as a failure — a silent partial result is worse.
            raise ShardError(
                f"shard {shard} result payload was not serializable: "
                f"{payload.get('metrics') or payload.get('log_events')!r}",
                shard=shard,
            )
        return ShardOutcome(
            shard=payload["shard"],
            log_events=payload["log_events"],
            metrics=payload["metrics"],
            watermark=payload["watermark"],
            records_out=payload["records_out"],
            source_records=payload["source_records"],
            checkpoints_taken=payload["checkpoints_taken"],
            resumed_from_offset=payload.get("resumed_from_offset", 0),
            dead_letters=payload["dead_letters"],
            node_stats=payload.get("node_stats", {}),
            completed=payload["completed"],
            ledger_events=payload.get("ledger_events") or [],
            profile=payload.get("profile"),
        )

    def _decode_done(self, shard: int, blob: bytes) -> ShardOutcome:
        return self._outcome_from_payload(shard, self._decode_payload(blob))

    def _decode_error(self, shard: int, blob: bytes) -> ShardError:
        payload = self._decode_payload(blob)
        error = ShardError(
            f"shard {shard} failed: {payload.get('error_type')}: {payload.get('error')}",
            shard=shard,
            node=payload.get("node"),
            record_id=payload.get("record_id"),
        )
        error.worker_traceback = payload.get("traceback")
        return error

    # -- execution -----------------------------------------------------------

    def _pickle_task(self, task: ShardTask) -> bytes:
        try:
            return pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ShardError(
                f"shard {task.shard} plan is not picklable (sources, sinks, "
                f"key selectors, and pipelines must serialize to cross the "
                f"process boundary): {exc}",
                shard=task.shard,
            ) from exc

    def _heartbeat_interval(self) -> float | None:
        if self.heartbeat_timeout is None:
            return None
        # Several beats per timeout window so one lost/late beat cannot
        # trip the watchdog on a healthy worker.
        return max(0.01, min(1.0, self.heartbeat_timeout / 4.0))

    def execute(
        self,
        records: Sequence[Record],
        partitioner: Partitioner,
        tasks: Sequence[ShardTask],
    ) -> tuple[list[ShardOutcome], ShardMerger]:
        """Run every shard to completion; return outcomes (by shard) + merger.

        ``records`` must already be prepared (IDs and event times assigned):
        identity assignment is the coordinator's job precisely so that shard
        output and the merged pollution log reference globally consistent
        record IDs.
        """
        if len(tasks) != self.parallelism:
            raise ShardError(
                f"{len(tasks)} shard tasks for parallelism {self.parallelism}"
            )
        if partitioner.n_shards != self.parallelism:
            raise ShardError(
                f"partitioner routes to {partitioner.n_shards} shards but "
                f"parallelism is {self.parallelism}"
            )
        n = self.parallelism
        # Partition once, up front: partitioners are deterministic in
        # (record, index), and a respawned attempt must replay *exactly*
        # the partition its predecessor saw.
        assignments: list[list[Record]] = [[] for _ in range(n)]
        try:
            for index, record in enumerate(records):
                assignments[partitioner.shard_of(record, index)].append(record)
        except Exception as exc:  # noqa: BLE001 - user partitioner boundary
            failure = ShardError(
                f"record partitioning failed: {type(exc).__name__}: {exc}"
            )
            failure.__cause__ = exc
            raise failure from exc

        interval = self._heartbeat_interval()
        runtimes = [
            _ShardRuntime(
                shard=i,
                task=dataclasses.replace(tasks[i], epoch=0, heartbeat_interval=interval),
                assignment=assignments[i],
            )
            for i in range(n)
        ]
        # Fail on an unpicklable plan before any process is spawned.
        for rt in runtimes:
            self._pickle_task(rt.task)

        out_queue = self._ctx.Queue()
        merger = ShardMerger(tasks[0].schema, n)
        outcomes: dict[int, ShardOutcome] = {}
        failure: ShardError | None = None
        try:
            for rt in runtimes:
                self._start_attempt(rt, out_queue)
            next_watchdog = time.monotonic() + self.poll_interval
            while len(outcomes) < n and failure is None:
                try:
                    msg = out_queue.get(timeout=self.poll_interval)
                except queue_mod.Empty:
                    msg = None
                except (OSError, EOFError, pickle.UnpicklingError):
                    # A message torn by a worker dying mid-send; the
                    # watchdog will see the corpse and recover the shard.
                    msg = None
                if msg is not None:
                    failure = self._dispatch(msg, runtimes, merger, outcomes)
                now = time.monotonic()
                if failure is None and now >= next_watchdog:
                    # Time-budgeted: a busy out-queue cannot starve
                    # liveness checking.
                    next_watchdog = now + self.poll_interval
                    failure = self._watchdog(runtimes, out_queue, merger, outcomes)
                if self._progress is not None:
                    self._progress.maybe_render()
        finally:
            for rt in runtimes:
                rt.stop.set()
                worker = rt.worker
                if (
                    worker is not None
                    and worker.is_alive()
                    and (failure is not None or rt.shard not in outcomes)
                ):
                    worker.terminate()
            for rt in runtimes:
                if rt.feeder is not None:
                    rt.feeder.join(timeout=5.0)
                worker = rt.worker
                if worker is not None:
                    worker.join(timeout=5.0)
                    if worker.is_alive():
                        worker.kill()
                        worker.join(timeout=5.0)
                if rt.in_queue is not None:
                    rt.in_queue.cancel_join_thread()
                    rt.in_queue.close()
            out_queue.cancel_join_thread()
            out_queue.close()
        if failure is not None:
            raise failure
        return [outcomes[i] for i in range(n)], merger

    def _start_attempt(self, rt: _ShardRuntime, out_queue: Any) -> None:
        blob = self._pickle_task(rt.task)
        rt.stop = threading.Event()
        rt.in_queue = self._ctx.Queue(maxsize=self.queue_depth)
        rt.worker = self._ctx.Process(
            target=run_shard,
            args=(blob, rt.in_queue, out_queue),
            name=f"repro-shard-{rt.shard}",
            daemon=True,
        )
        rt.worker.start()
        rt.feeder = threading.Thread(
            target=self._feed_shard,
            args=(rt.assignment, rt.in_queue, rt.stop, rt.worker.is_alive),
            name=f"repro-shard-feeder-{rt.shard}",
            daemon=True,
        )
        rt.feeder.start()
        rt.last_seen = time.monotonic()
        if self._ledger is not None:
            self._ledger.record(
                "shard.spawn", shard=rt.shard, epoch=rt.epoch, pid=rt.worker.pid
            )
        if self._telemetry is not None:
            self._telemetry.mark_spawn(rt.shard, rt.epoch)

    def _stop_attempt(self, rt: _ShardRuntime) -> None:
        """Tear one attempt down hard: worker, feeder, input queue."""
        rt.stop.set()
        worker = rt.worker
        if worker is not None:
            if worker.is_alive():
                worker.terminate()
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=5.0)
        if rt.feeder is not None:
            rt.feeder.join(timeout=5.0)
            rt.feeder = None
        if rt.in_queue is not None:
            rt.in_queue.cancel_join_thread()
            rt.in_queue.close()
            rt.in_queue = None

    # -- dispatch ------------------------------------------------------------

    def _dispatch(
        self,
        msg: tuple,
        runtimes: list[_ShardRuntime],
        merger: ShardMerger,
        outcomes: dict[int, ShardOutcome],
    ) -> ShardError | None:
        kind = msg[0]
        if kind == "heartbeat":
            _, shard, epoch, telemetry = msg
            rt = runtimes[shard]
            if epoch != rt.epoch:
                return None  # superseded attempt; drop
            rt.last_seen = time.monotonic()
            if telemetry:
                events = telemetry.pop("events", None)
                if events and self._ledger is not None:
                    self._ledger.absorb(events)
                if self._telemetry is not None and telemetry:
                    self._telemetry.update(shard, epoch, telemetry)
            if self._ledger is not None:
                self._ledger.record("shard.heartbeat", shard=shard, epoch=epoch)
            return None
        if kind == "chunk":
            _, shard, records, watermark, epoch = msg
            rt = runtimes[shard]
            if epoch != rt.epoch:
                return None  # superseded attempt; drop
            rt.last_seen = time.monotonic()
            merger.add_chunk(shard, records, watermark)
            if self._telemetry is not None:
                self._telemetry.observe_chunk(shard, epoch, len(records), watermark)
            return None
        if kind == "done":
            _, shard, blob, epoch = msg
            rt = runtimes[shard]
            if epoch != rt.epoch:
                return None
            outcome = self._decode_done(shard, blob)
            outcome.restarts = rt.restarts
            outcomes[shard] = outcome
            rt.stop.set()
            if self._ledger is not None:
                self._ledger.absorb(outcome.ledger_events)
                self._ledger.record(
                    "shard.done",
                    shard=shard,
                    epoch=epoch,
                    records_out=outcome.records_out,
                    restarts=outcome.restarts,
                )
            if self._telemetry is not None:
                self._telemetry.mark_done(shard)
            return None
        # Structured plan failure: deterministic, so recovery would replay
        # straight back into it — abort the run instead.
        _, shard, blob, epoch = msg
        rt = runtimes[shard]
        if epoch != rt.epoch:
            return None
        error = self._decode_error(shard, blob)
        if self._ledger is not None:
            self._ledger.record(
                "shard.error", shard=shard, epoch=epoch, error=str(error)
            )
        if self._telemetry is not None:
            self._telemetry.mark_failed(shard)
        return error

    # -- watchdog + recovery -------------------------------------------------

    def _grace_drain(
        self,
        out_queue: Any,
        runtimes: list[_ShardRuntime],
        merger: ShardMerger,
        outcomes: dict[int, ShardOutcome],
    ) -> ShardError | None:
        """Drain straggler messages after seeing a dead worker.

        A process can be dead while its final message still sits in the
        queue's pipe buffer; give delivery a moment before respawning what
        may in fact have finished.
        """
        deadline = time.monotonic() + 1.0
        failure: ShardError | None = None
        while time.monotonic() < deadline:
            try:
                msg = out_queue.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (OSError, EOFError, pickle.UnpicklingError):
                continue
            failure = self._dispatch(msg, runtimes, merger, outcomes) or failure
            if failure is not None:
                break
        return failure

    def _watchdog(
        self,
        runtimes: list[_ShardRuntime],
        out_queue: Any,
        merger: ShardMerger,
        outcomes: dict[int, ShardOutcome],
    ) -> ShardError | None:
        now = time.monotonic()
        for rt in runtimes:
            if rt.shard in outcomes:
                continue
            worker = rt.worker
            crashed = worker is not None and not worker.is_alive()
            hung = (
                not crashed
                and self.heartbeat_timeout is not None
                and now - rt.last_seen > self.heartbeat_timeout
            )
            if not crashed and not hung:
                continue
            if crashed:
                failure = self._grace_drain(out_queue, runtimes, merger, outcomes)
                if failure is not None:
                    return failure
                if rt.shard in outcomes:
                    continue
                reason = (
                    f"worker died without reporting "
                    f"(exit code {worker.exitcode})"
                )
                if self._ledger is not None:
                    self._ledger.record(
                        "shard.crash",
                        shard=rt.shard,
                        epoch=rt.epoch,
                        exitcode=worker.exitcode,
                        reason=reason,
                    )
            else:
                reason = (
                    f"worker sent no heartbeat or output for more than "
                    f"{self.heartbeat_timeout:.1f}s (hung)"
                )
                if self._ledger is not None:
                    self._ledger.record(
                        "shard.hang",
                        shard=rt.shard,
                        epoch=rt.epoch,
                        silent_seconds=round(now - rt.last_seen, 3),
                        reason=reason,
                    )
            failure = self._recover(rt, reason, out_queue, merger, outcomes)
            if failure is not None:
                return failure
        return None

    def _recover(
        self,
        rt: _ShardRuntime,
        reason: str,
        out_queue: Any,
        merger: ShardMerger,
        outcomes: dict[int, ShardOutcome],
    ) -> ShardError | None:
        """Respawn one faulted shard, or fall through to the failure policy."""
        exitcode = rt.worker.exitcode if rt.worker is not None else None
        self._stop_attempt(rt)
        if rt.restarts >= self.max_shard_restarts:
            return self._exhausted(rt, reason, exitcode, merger, outcomes)
        rt.restarts += 1
        rt.epoch += 1
        merger.discard_shard(rt.shard)
        backoff = self.restart_backoff * (2 ** (rt.restarts - 1))
        if backoff > 0:
            time.sleep(backoff)
        resume_path = self._recovery_resume_path(rt)
        rt.task = dataclasses.replace(rt.task, epoch=rt.epoch, resume_path=resume_path)
        if self._ledger is not None:
            self._ledger.record(
                "shard.respawn",
                shard=rt.shard,
                epoch=rt.epoch,
                attempt=rt.restarts,
                resume=resume_path,
                backoff_seconds=backoff,
            )
        self._start_attempt(rt, out_queue)
        # After mark_spawn, so the view shows "recovering" until the fresh
        # incarnation's first telemetry snapshot arrives.
        if self._telemetry is not None:
            self._telemetry.mark_restart(rt.shard, rt.epoch)
        return None

    @staticmethod
    def _recovery_resume_path(rt: _ShardRuntime) -> str | None:
        """The newest digest-valid checkpoint of this shard, if any.

        A checkpoint torn by the crash fails verification and is skipped in
        favour of the previous snapshot; with no usable snapshot (or no
        checkpointing at all) the shard restarts from scratch — correct
        either way, merely slower.
        """
        if rt.task.checkpoint_dir is None:
            return None
        path = latest_valid_checkpoint(rt.task.checkpoint_dir)
        return str(path) if path is not None else None

    def _exhausted(
        self,
        rt: _ShardRuntime,
        reason: str,
        exitcode: int | None,
        merger: ShardMerger,
        outcomes: dict[int, ShardOutcome],
    ) -> ShardError | None:
        policy = self.failure_policy
        action = policy.action if policy is not None else FailureAction.FAIL_FAST
        if action is FailureAction.RETRY:
            action = policy.exhausted_action
        if self._ledger is not None:
            self._ledger.record(
                "policy.exhausted",
                shard=rt.shard,
                epoch=rt.epoch,
                restarts=rt.restarts,
                budget=self.max_shard_restarts,
                action=action.name,
                reason=reason,
            )
        if action is FailureAction.FAIL_FAST:
            return ShardError(
                f"shard {rt.shard} {reason}; restart budget "
                f"({self.max_shard_restarts}) exhausted. Partial checkpoints, "
                f"if enabled, remain on disk for resume",
                shard=rt.shard,
                exitcode=exitcode,
            )
        return self._degraded_drain(rt, merger, outcomes)

    def _degraded_drain(
        self,
        rt: _ShardRuntime,
        merger: ShardMerger,
        outcomes: dict[int, ShardOutcome],
    ) -> ShardError | None:
        """Finish one shard's partition sequentially on the coordinator.

        The last rung of the policy ladder: no worker process, no
        parallelism, but the run completes and determinism holds — the same
        shard plan executes over the same partition, resumed from the same
        newest-valid checkpoint a respawn would have used. The task is
        pickle-round-tripped so the in-process execution operates on private
        pipeline copies (exactly what a worker would deserialize), and input
        records are copied because shard pipelines mutate in place.
        """
        rt.epoch += 1
        merger.discard_shard(rt.shard)
        if self._ledger is not None:
            self._ledger.record(
                "shard.degraded",
                shard=rt.shard,
                epoch=rt.epoch,
                resume=self._recovery_resume_path(rt),
            )
        if self._telemetry is not None:
            self._telemetry.mark_degraded(rt.shard)
        task: ShardTask = pickle.loads(
            self._pickle_task(
                dataclasses.replace(
                    rt.task,
                    epoch=rt.epoch,
                    resume_path=self._recovery_resume_path(rt),
                    heartbeat_interval=None,
                )
            )
        )
        in_q: Any = queue_mod.SimpleQueue()
        out_q: Any = queue_mod.SimpleQueue()
        for start in range(0, len(rt.assignment), self.chunk_size):
            in_q.put(
                (
                    "records",
                    [r.copy() for r in rt.assignment[start : start + self.chunk_size]],
                )
            )
        in_q.put(("eof", None))
        try:
            payload = _execute_shard(task, in_q, out_q)
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            failure = ShardError(
                f"shard {rt.shard} degraded coordinator drain failed: "
                f"{type(exc).__name__}: {exc}",
                shard=rt.shard,
            )
            failure.__cause__ = exc
            return failure
        while True:
            try:
                msg = out_q.get_nowait()
            except queue_mod.Empty:
                break
            if msg[0] == "chunk":
                _, shard, records, watermark, epoch = msg
                if epoch == rt.epoch:
                    merger.add_chunk(shard, records, watermark)
                    if self._telemetry is not None:
                        self._telemetry.observe_chunk(
                            shard, epoch, len(records), watermark
                        )
        outcome = self._outcome_from_payload(rt.shard, payload)
        outcome.restarts = rt.restarts
        outcome.degraded = True
        outcomes[rt.shard] = outcome
        # The shard.degraded event above is this shard's terminal; the
        # drain's worker-side events (checkpoint restore, slabs) merge in
        # behind it as late worker-source entries.
        if self._ledger is not None:
            self._ledger.absorb(outcome.ledger_events)
        return None
