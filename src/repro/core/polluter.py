"""Polluters: the unit of pollution, ``p = <e, c, A_p>`` (paper Eq. 2).

A :class:`StandardPolluter` couples one error function, one condition, and a
target attribute set; applied to a tuple it either transforms it or passes
it through. :class:`~repro.core.composite.CompositePolluter` (the second
polluter kind of §2.2.1) structures pipelines by delegating to registered
children under a shared condition.

Application contract
--------------------
``apply(record, tau, log)`` returns an :class:`Application`: the output
records (empty if dropped, several if duplicated) and whether the polluter
*fired*. The fired flag drives composite modes like first-match mutual
exclusion. The input record is owned by the caller's pipeline and may be
mutated — the pollution runner copies each clean tuple exactly once before
the pipeline, so clean data is never aliased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.conditions.base import Condition
from repro.core.conditions.random import AlwaysCondition
from repro.core.errors.base import ErrorFunction
from repro.core.log import PollutionLog
from repro.core.rng import RandomSource
from repro.errors import PollutionError
from repro.obs.metrics import MetricsRegistry
from repro.streaming.record import Record


@dataclass(slots=True)
class Application:
    """Result of applying a polluter to one tuple."""

    records: list[Record]
    fired: bool


class _PolluterObs:
    """Pre-resolved instruments for one polluter.

    Gives users the paper's "ground truth pollution rate" (Eq. 2's expected
    vs. realized counts) as counters instead of only via the log CSV:
    condition hit/miss rates per polluter, activation counts, and — for
    standard polluters — per-error-type injection counters keyed by target
    attribute. One injection increment corresponds to exactly one row of
    :meth:`repro.core.log.PollutionLog.to_csv`.

    Standard polluters buffer their tallies in the plain slotted integers
    ``n_misses``/``n_fires`` — the hot path pays one integer attribute add
    per tuple — and :meth:`flush` folds the deltas into the registry
    counters. A standard polluter fires whenever its condition hits, so one
    fire count covers the hit counter, the activation counter, and every
    per-attribute injection counter (the target set is deterministic per
    polluter). The runner flushes at the end of each run; periodic readers
    (e.g. a live dashboard) may flush mid-run, it only moves the deltas.
    """

    __slots__ = (
        "activations",
        "hits",
        "misses",
        "inj_counters",
        "n_misses",
        "n_fires",
        "_registry",
        "_error_type",
        "_injections",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        qualified_name: str,
        error_type: str | None,
        targets: Sequence[str] = (),
    ) -> None:
        self.activations = registry.counter(
            "polluter_activations_total", polluter=qualified_name
        )
        self.hits = registry.counter(
            "polluter_condition_total", polluter=qualified_name, outcome="hit"
        )
        self.misses = registry.counter(
            "polluter_condition_total", polluter=qualified_name, outcome="miss"
        )
        self.n_misses = 0
        self.n_fires = 0
        self._registry = registry
        self._error_type = error_type
        self._injections: dict[str, object] = {}
        # A polluter's target set is a deterministic function of its
        # attribute configuration (target_attributes draws no RNG), so the
        # per-fire injection counters can be resolved once up front.
        self.inj_counters = tuple(self.injection(a) for a in targets)

    def injection(self, attribute: str):
        """The injection counter for one target attribute ('' = whole tuple)."""
        counter = self._injections.get(attribute)
        if counter is None:
            counter = self._injections[attribute] = self._registry.counter(
                "pollution_injections_total",
                error=self._error_type or "unknown",
                attribute=attribute,
            )
        return counter

    def flush(self) -> None:
        """Fold the buffered miss/fire deltas into the registry counters."""
        if self.n_misses:
            self.misses.value += self.n_misses
            self.n_misses = 0
        if self.n_fires:
            self.hits.value += self.n_fires
            self.activations.value += self.n_fires
            for counter in self.inj_counters:
                counter.value += self.n_fires
            self.n_fires = 0


class Polluter:
    """Base class for standard and composite polluters."""

    #: Instruments attached by :meth:`bind_metrics`; ``None`` = unmetered.
    _obs: _PolluterObs | None = None

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self._qualified_name = self.name

    @property
    def qualified_name(self) -> str:
        """The pipeline-scoped unique name, set when bound to a pipeline."""
        return self._qualified_name

    def bind(self, source: RandomSource, scope: str = "") -> None:
        """Attach named random streams from the run's :class:`RandomSource`.

        ``scope`` is the enclosing pipeline/composite path; the polluter's
        streams are keyed by ``scope/name`` so every polluter in a run draws
        from its own reproducible stream (see :mod:`repro.core.rng`).
        """
        raise NotImplementedError

    def bind_metrics(self, registry: MetricsRegistry | None) -> None:
        """Attach per-polluter instruments (``None`` or disabled detaches).

        Call after :meth:`bind` — instrument labels use the pipeline-scoped
        :attr:`qualified_name`. The runner does both in order.
        """
        self._obs = None

    def flush_metrics(self) -> None:
        """Fold buffered tallies into the registry (no-op when unmetered)."""

    def reset(self) -> None:
        """Clear per-run state (stateful error functions, counters)."""
        raise NotImplementedError

    def snapshot_state(self):
        """Serializable mid-run state for checkpoint/restore (``None`` = none)."""
        raise NotImplementedError

    def restore_state(self, state) -> None:
        """Restore what :meth:`snapshot_state` produced (after :meth:`bind`)."""
        raise NotImplementedError

    def apply(self, record: Record, tau: int, log: PollutionLog | None = None) -> Application:
        raise NotImplementedError

    def expected_probability(self, record: Record, tau: int) -> float:
        """Marginal probability that this polluter fires on ``record``.

        Used to compute analytic ground-truth error counts (Fig. 4's
        "expected" series, Table 1's expectation column).
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class StandardPolluter(Polluter):
    """A polluter that actually injects errors: ``<e, c, A_p>``.

    Parameters
    ----------
    error:
        The error function ``e``.
    attributes:
        The target attribute set ``A_p``. May be empty only for whole-tuple
        errors (drop, duplicate, delay with explicit timestamp attribute).
    condition:
        The condition ``c``; defaults to firing always.
    name:
        Stable name for seeding and logging; defaults to the error's
        description.
    """

    def __init__(
        self,
        error: ErrorFunction,
        attributes: Sequence[str] = (),
        condition: Condition | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or error.describe())
        self.error = error
        self.condition = condition or AlwaysCondition()
        self.attributes = tuple(attributes)
        if not self.attributes and not error.native_temporal:
            raise PollutionError(
                f"polluter {self.name!r}: static error {error.describe()} "
                "needs at least one target attribute"
            )

    def bind(self, source: RandomSource, scope: str = "") -> None:
        self._qualified_name = f"{scope}/{self.name}" if scope else self.name
        # Streams 0 and 1 keep condition draws independent from error draws.
        self.condition.bind_rng(source.child(self._qualified_name, stream=0))
        self.error.bind_rng(source.child(self._qualified_name, stream=1))

    def bind_metrics(self, registry: MetricsRegistry | None) -> None:
        if registry is None or not registry.enabled:
            self._obs = None
            return
        targets = self.error.target_attributes(self.attributes) or ("",)
        self._obs = _PolluterObs(
            registry, self._qualified_name, type(self.error).__name__, targets
        )

    def flush_metrics(self) -> None:
        if self._obs is not None:
            self._obs.flush()

    def reset(self) -> None:
        self.error.reset()
        self.condition.reset()

    def snapshot_state(self):
        condition = self.condition.snapshot_state()
        error = self.error.snapshot_state()
        if condition is None and error is None:
            return None
        return {"condition": condition, "error": error}

    def restore_state(self, state) -> None:
        if state is None:
            return
        self.condition.restore_state(state["condition"])
        self.error.restore_state(state["error"])

    def apply(self, record: Record, tau: int, log: PollutionLog | None = None) -> Application:
        if not self.condition.evaluate(record, tau):
            obs = self._obs
            if obs is not None:
                obs.n_misses += 1
            return Application([record], fired=False)
        return self.apply_fired(record, tau, log)

    def apply_fired(
        self, record: Record, tau: int, log: PollutionLog | None = None
    ) -> Application:
        """The fired half of :meth:`apply`: error application plus bookkeeping.

        Separated so batch kernels (:mod:`repro.batch`) can evaluate the
        condition over a whole batch and delegate exactly this path per fired
        record — log events, observability tallies, and multiplicity semantics
        stay byte-identical to record-at-a-time execution.
        """
        obs = self._obs
        if log is not None:
            targets = self.error.target_attributes(self.attributes)
            before = {a: record.get(a) for a in targets}
        else:
            targets, before = (), None
        out = self.error.apply(record, self.attributes, tau)
        if out is None:
            records: list[Record] = []
        elif isinstance(out, list):
            records = out
        else:
            records = [out]
        if obs is not None:
            # One buffered integer add; flush() fans the fire count out to
            # the hit/activation counters and — one increment per (event,
            # attribute) pair, the same accounting as a pollution-log CSV
            # row — the pre-resolved injection counters.
            obs.n_fires += 1
        if log is not None:
            after = records[0].as_dict() if records else None
            log.record_event(
                record=record,
                polluter=self._qualified_name,
                error=self.error.describe(),
                attributes=targets,
                tau=tau,
                before=before or {},
                after={a: after[a] for a in targets if after and a in after}
                if after is not None
                else None,
                emitted=len(records),
            )
        return Application(records, fired=True)

    def expected_probability(self, record: Record, tau: int) -> float:
        return self.condition.expected_probability(record, tau)

    def describe(self) -> str:
        attrs = ",".join(self.attributes) or "<tuple>"
        return (
            f"{self.name}: if {self.condition.describe()} "
            f"then {self.error.describe()} on [{attrs}]"
        )
