"""Polluters: the unit of pollution, ``p = <e, c, A_p>`` (paper Eq. 2).

A :class:`StandardPolluter` couples one error function, one condition, and a
target attribute set; applied to a tuple it either transforms it or passes
it through. :class:`~repro.core.composite.CompositePolluter` (the second
polluter kind of §2.2.1) structures pipelines by delegating to registered
children under a shared condition.

Application contract
--------------------
``apply(record, tau, log)`` returns an :class:`Application`: the output
records (empty if dropped, several if duplicated) and whether the polluter
*fired*. The fired flag drives composite modes like first-match mutual
exclusion. The input record is owned by the caller's pipeline and may be
mutated — the pollution runner copies each clean tuple exactly once before
the pipeline, so clean data is never aliased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.conditions.base import Condition
from repro.core.conditions.random import AlwaysCondition
from repro.core.errors.base import ErrorFunction
from repro.core.log import PollutionLog
from repro.core.rng import RandomSource
from repro.errors import PollutionError
from repro.streaming.record import Record


@dataclass(slots=True)
class Application:
    """Result of applying a polluter to one tuple."""

    records: list[Record]
    fired: bool


class Polluter:
    """Base class for standard and composite polluters."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self._qualified_name = self.name

    @property
    def qualified_name(self) -> str:
        """The pipeline-scoped unique name, set when bound to a pipeline."""
        return self._qualified_name

    def bind(self, source: RandomSource, scope: str = "") -> None:
        """Attach named random streams from the run's :class:`RandomSource`.

        ``scope`` is the enclosing pipeline/composite path; the polluter's
        streams are keyed by ``scope/name`` so every polluter in a run draws
        from its own reproducible stream (see :mod:`repro.core.rng`).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run state (stateful error functions, counters)."""
        raise NotImplementedError

    def snapshot_state(self):
        """Serializable mid-run state for checkpoint/restore (``None`` = none)."""
        raise NotImplementedError

    def restore_state(self, state) -> None:
        """Restore what :meth:`snapshot_state` produced (after :meth:`bind`)."""
        raise NotImplementedError

    def apply(self, record: Record, tau: int, log: PollutionLog | None = None) -> Application:
        raise NotImplementedError

    def expected_probability(self, record: Record, tau: int) -> float:
        """Marginal probability that this polluter fires on ``record``.

        Used to compute analytic ground-truth error counts (Fig. 4's
        "expected" series, Table 1's expectation column).
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class StandardPolluter(Polluter):
    """A polluter that actually injects errors: ``<e, c, A_p>``.

    Parameters
    ----------
    error:
        The error function ``e``.
    attributes:
        The target attribute set ``A_p``. May be empty only for whole-tuple
        errors (drop, duplicate, delay with explicit timestamp attribute).
    condition:
        The condition ``c``; defaults to firing always.
    name:
        Stable name for seeding and logging; defaults to the error's
        description.
    """

    def __init__(
        self,
        error: ErrorFunction,
        attributes: Sequence[str] = (),
        condition: Condition | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or error.describe())
        self.error = error
        self.condition = condition or AlwaysCondition()
        self.attributes = tuple(attributes)
        if not self.attributes and not error.native_temporal:
            raise PollutionError(
                f"polluter {self.name!r}: static error {error.describe()} "
                "needs at least one target attribute"
            )

    def bind(self, source: RandomSource, scope: str = "") -> None:
        self._qualified_name = f"{scope}/{self.name}" if scope else self.name
        # Streams 0 and 1 keep condition draws independent from error draws.
        self.condition.bind_rng(source.child(self._qualified_name, stream=0))
        self.error.bind_rng(source.child(self._qualified_name, stream=1))

    def reset(self) -> None:
        self.error.reset()
        self.condition.reset()

    def snapshot_state(self):
        condition = self.condition.snapshot_state()
        error = self.error.snapshot_state()
        if condition is None and error is None:
            return None
        return {"condition": condition, "error": error}

    def restore_state(self, state) -> None:
        if state is None:
            return
        self.condition.restore_state(state["condition"])
        self.error.restore_state(state["error"])

    def apply(self, record: Record, tau: int, log: PollutionLog | None = None) -> Application:
        if not self.condition.evaluate(record, tau):
            return Application([record], fired=False)
        targets = self.error.target_attributes(self.attributes) if log is not None else ()
        before = {a: record.get(a) for a in targets} if log is not None else None
        out = self.error.apply(record, self.attributes, tau)
        if out is None:
            records: list[Record] = []
        elif isinstance(out, list):
            records = out
        else:
            records = [out]
        if log is not None:
            after = records[0].as_dict() if records else None
            log.record_event(
                record=record,
                polluter=self._qualified_name,
                error=self.error.describe(),
                attributes=targets,
                tau=tau,
                before=before or {},
                after={a: after[a] for a in targets if after and a in after}
                if after is not None
                else None,
                emitted=len(records),
            )
        return Application(records, fired=True)

    def expected_probability(self, record: Record, tau: int) -> float:
        return self.condition.expected_probability(record, tau)

    def describe(self) -> str:
        attrs = ",".join(self.attributes) or "<tuple>"
        return (
            f"{self.name}: if {self.condition.describe()} "
            f"then {self.error.describe()} on [{attrs}]"
        )
