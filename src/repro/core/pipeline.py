"""Pollution pipelines (§2.2.1).

"A pollution pipeline P is a sequence of o polluters p1, p2, ..., po. The
pipeline applied to an input tuple t results in an output tuple
t' = P(t, tau) = po(po-1(... p1(t, tau) ..., tau), tau)."

A pipeline owns the run-scoped concerns: binding every polluter's named
random streams to the run's :class:`~repro.core.rng.RandomSource`, resetting
stateful error functions between runs, and fanning tuple multiplicity
through the chain (a drop terminates the chain for that tuple, a duplicate
sends every copy through the remaining polluters).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.log import PollutionLog
from repro.core.polluter import Polluter
from repro.core.rng import RandomSource
from repro.errors import PollutionError
from repro.streaming.record import Record


class PollutionPipeline:
    """An ordered sequence of polluters applied tuple-wise."""

    def __init__(self, polluters: Sequence[Polluter], name: str = "pipeline") -> None:
        if not polluters:
            raise PollutionError("a pipeline needs at least one polluter")
        names = [p.name for p in polluters]
        if len(set(names)) != len(names):
            raise PollutionError(
                f"pipeline {name!r}: duplicate polluter names {names}; "
                "give polluters distinct names for stable seeding"
            )
        self.polluters = list(polluters)
        self.name = name
        self._bound = False

    def bind(self, source: RandomSource) -> None:
        """Bind every polluter's random streams for one pollution run."""
        for polluter in self.polluters:
            polluter.bind(source, scope=self.name)
        self._bound = True

    def bind_metrics(self, registry) -> None:
        """Attach (or with ``None``, detach) per-polluter instruments.

        Call after :meth:`bind` so instrument labels carry pipeline-scoped
        qualified names. The runner rebinds on every run, so a pipeline
        reused across runs never reports into a stale registry.
        """
        for polluter in self.polluters:
            polluter.bind_metrics(registry)

    def flush_metrics(self) -> None:
        """Fold every polluter's buffered tallies into its registry counters.

        The runner calls this when a run finishes; long-running readers can
        call it mid-run to get up-to-date counts (it only moves deltas).
        """
        for polluter in self.polluters:
            polluter.flush_metrics()

    def reset(self) -> None:
        for polluter in self.polluters:
            polluter.reset()

    @property
    def is_bound(self) -> bool:
        return self._bound

    def snapshot_state(self):
        """Mid-run state of every polluter, keyed by name (``None`` = none)."""
        states = {p.name: p.snapshot_state() for p in self.polluters}
        return states if any(s is not None for s in states.values()) else None

    def restore_state(self, state) -> None:
        if state is None:
            return
        for polluter in self.polluters:
            polluter.restore_state(state.get(polluter.name))

    def __len__(self) -> int:
        return len(self.polluters)

    def __iter__(self):
        return iter(self.polluters)

    def apply(self, record: Record, tau: int, log: PollutionLog | None = None) -> list[Record]:
        """Run one tuple through the whole chain.

        Returns the surviving records: usually one, zero if some polluter
        dropped the tuple, more than one if some polluter duplicated it.
        """
        if not self._bound and any(_needs_rng(p) for p in self.polluters):
            raise PollutionError(
                f"pipeline {self.name!r} contains stochastic polluters but was "
                "never bound to a RandomSource; call bind() or use the runner"
            )
        records = [record]
        for polluter in self.polluters:
            next_records: list[Record] = []
            for r in records:
                next_records.extend(polluter.apply(r, tau, log).records)
            records = next_records
            if not records:
                break
        return records

    def apply_all(
        self, records: Iterable[Record], log: PollutionLog | None = None
    ) -> list[Record]:
        """Apply the pipeline to a prepared record sequence."""
        out: list[Record] = []
        for record in records:
            if record.event_time is None:
                raise PollutionError(
                    "record has no event time; run the preparation step first"
                )
            out.extend(self.apply(record, record.event_time, log))
        return out

    def describe(self) -> str:
        steps = " |> ".join(p.describe() for p in self.polluters)
        return f"{self.name}: {steps}"


def _needs_rng(polluter: Polluter) -> bool:
    """True if the polluter (or any nested child) is stochastic."""
    from repro.core.composite import CompositePolluter
    from repro.core.polluter import StandardPolluter

    if isinstance(polluter, StandardPolluter):
        return polluter.condition.stochastic or polluter.error.stochastic
    if isinstance(polluter, CompositePolluter):
        return (
            polluter.condition.stochastic
            or polluter.mode.value == "choose_one"
            or any(_needs_rng(c) for c in polluter.children)
        )
    return True  # unknown subclass: be safe, require binding
