"""Step 1 of Algorithm 1: prepare the data.

Each incoming tuple receives (line 2) a fresh unique identifier and (line 3)
a replicated timestamp ``tau``. The ID links polluted tuples back to their
clean originals; ``tau`` is the event time used by pollution conditions and
temporal error functions and is *not* part of the final output — only the
(possibly polluted) original timestamp attribute is.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import PollutionError
from repro.streaming.operators import MapFunction
from repro.streaming.record import Record
from repro.streaming.schema import Schema


class IdGenerator:
    """Monotone unique tuple identifiers for one pollution run.

    A plain integer counter (not :func:`itertools.count`) so the position is
    checkpointable: :meth:`snapshot_state` / :meth:`restore_state` let a
    resumed run continue the ID sequence exactly where it stopped.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next_id(self) -> int:
        value = self._next
        self._next += 1
        return value

    def snapshot_state(self) -> int:
        return self._next

    def restore_state(self, state: int) -> None:
        self._next = int(state)


def prepare_record(record: Record, schema: Schema, ids: IdGenerator) -> Record:
    """Assign an ID and replicate the timestamp into the event time.

    The record is modified in place and returned (sources already hand the
    runner fresh copies).
    """
    ts = record.get(schema.timestamp_attribute)
    if ts is None:
        raise PollutionError(
            f"tuple has no timestamp in attribute {schema.timestamp_attribute!r}; "
            "cannot derive event time tau"
        )
    record.record_id = ids.next_id()
    record.event_time = int(ts)
    return record


def prepare_stream(
    records: Iterable[Record], schema: Schema, ids: IdGenerator | None = None
) -> Iterator[Record]:
    """Prepare a whole stream lazily (Algorithm 1, lines 1-3)."""
    generator = ids or IdGenerator()
    for record in records:
        yield prepare_record(record, schema, generator)


class PrepareFunction(MapFunction):
    """The preparation step as a streaming-engine map operator."""

    def __init__(self, schema: Schema, ids: IdGenerator | None = None) -> None:
        self._schema = schema
        self._ids = ids or IdGenerator()

    def map(self, record: Record) -> Record:
        return prepare_record(record, self._schema, self._ids)

    def snapshot_state(self):
        return {"next_id": self._ids.snapshot_state()}

    def restore_state(self, state) -> None:
        self._ids.restore_state(state["next_id"])
