"""Change patterns: how an error's presence or magnitude evolves over time.

Figure 3 of the paper derives temporal error types by combining a static
error with a *pattern of change over time*, citing the concept-drift
taxonomy of Gama et al. [17]: **abrupt** (a step), **incremental** (a ramp),
and **intermediate/gradual** (oscillating between regimes with shifting
balance). A pattern maps an event time ``tau`` to an *intensity* in
``[0, 1]``; intensities modulate either

* the error's magnitude (a derived temporal error, via
  :class:`repro.core.errors.derived.DerivedTemporalError`), or
* the error's activation probability (a temporal condition, via
  :class:`repro.core.conditions.temporal.PatternProbabilityCondition`).

Both the sinusoid of Experiment 3.1.1 and the linear ramps of Equations 3
and 4 are instances of these patterns.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import PollutionError
from repro.streaming.time import SECONDS_PER_HOUR, hour_of_day


class ChangePattern:
    """Maps event time (epoch seconds) to intensity in ``[0, 1]``."""

    def intensity(self, tau: int) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def __call__(self, tau: int) -> float:
        value = self.intensity(tau)
        # Clamp defensively: user-supplied custom patterns may overshoot.
        return min(1.0, max(0.0, value))


class ConstantPattern(ChangePattern):
    """Time-independent intensity — degrades a derived error to a static one."""

    def __init__(self, value: float = 1.0) -> None:
        if not 0.0 <= value <= 1.0:
            raise PollutionError(f"constant intensity must be in [0, 1], got {value}")
        self._value = value

    def intensity(self, tau: int) -> float:
        return self._value

    def describe(self) -> str:
        return f"constant({self._value})"


class AbruptPattern(ChangePattern):
    """A step: intensity jumps from ``before`` to ``after`` at ``change_time``."""

    def __init__(self, change_time: int, before: float = 0.0, after: float = 1.0) -> None:
        self._change_time = int(change_time)
        self._before = before
        self._after = after

    def intensity(self, tau: int) -> float:
        return self._after if tau >= self._change_time else self._before

    def describe(self) -> str:
        return f"abrupt(at={self._change_time}, {self._before}->{self._after})"


class IncrementalPattern(ChangePattern):
    """A linear ramp from ``start_value`` at ``start`` to ``end_value`` at ``end``.

    With ``start_value=0`` and ``end_value=1`` over the stream's full span
    this is exactly the normalized ``hours(tau_i - tau_0)/hours(tau_n -
    tau_0)`` ramp of Equations 3 and 4.
    """

    def __init__(
        self,
        start: int,
        end: int,
        start_value: float = 0.0,
        end_value: float = 1.0,
    ) -> None:
        if end <= start:
            raise PollutionError("incremental pattern needs end > start")
        self._start = int(start)
        self._end = int(end)
        self._start_value = start_value
        self._end_value = end_value

    def intensity(self, tau: int) -> float:
        if tau <= self._start:
            return self._start_value
        if tau >= self._end:
            return self._end_value
        frac = (tau - self._start) / (self._end - self._start)
        return self._start_value + frac * (self._end_value - self._start_value)

    def describe(self) -> str:
        return (
            f"incremental([{self._start},{self._end}], "
            f"{self._start_value}->{self._end_value})"
        )


class IntermediatePattern(ChangePattern):
    """Gama et al.'s *gradual/intermediate* drift: regime flickering.

    Between ``start`` and ``end`` the intensity alternates between the old
    regime (0) and the new regime (1) in blocks of ``block_seconds``, with
    the fraction of "new" blocks growing linearly — the classic picture of
    a sensor that fails intermittently before failing permanently.

    The block schedule is a deterministic function of time (threshold
    comparison against a per-block quasi-random phase), so the pattern needs
    no RNG and stays reproducible.
    """

    def __init__(self, start: int, end: int, block_seconds: int = SECONDS_PER_HOUR) -> None:
        if end <= start:
            raise PollutionError("intermediate pattern needs end > start")
        if block_seconds <= 0:
            raise PollutionError("block size must be positive")
        self._start = int(start)
        self._end = int(end)
        self._block = int(block_seconds)

    def intensity(self, tau: int) -> float:
        if tau < self._start:
            return 0.0
        if tau >= self._end:
            return 1.0
        frac = (tau - self._start) / (self._end - self._start)
        block_index = (tau - self._start) // self._block
        # Low-discrepancy phase in [0,1) per block (golden-ratio sequence):
        phase = (block_index * 0.6180339887498949) % 1.0
        return 1.0 if phase < frac else 0.0

    def describe(self) -> str:
        return f"intermediate([{self._start},{self._end}], block={self._block}s)"


class SinusoidalPattern(ChangePattern):
    """A daily (or arbitrary-period) sinusoid of intensity.

    ``intensity(tau) = amplitude * cos(2*pi * h / period_hours + phase) + offset``
    where ``h`` is the hour of day of ``tau``. Experiment 3.1.1 uses
    ``0.25 * cos(pi/12 * t) + 0.25`` — i.e. ``amplitude=0.25, offset=0.25,
    period_hours=24`` — yielding probabilities in ``[0, 0.5]`` peaking at
    midnight.
    """

    def __init__(
        self,
        amplitude: float = 0.25,
        offset: float = 0.25,
        period_hours: float = 24.0,
        phase: float = 0.0,
    ) -> None:
        if period_hours <= 0:
            raise PollutionError("period must be positive")
        if offset - abs(amplitude) < -1e-12 or offset + abs(amplitude) > 1.0 + 1e-12:
            raise PollutionError(
                "sinusoid must stay within [0, 1]: need |amplitude| <= offset "
                f"and offset + |amplitude| <= 1 (got a={amplitude}, o={offset})"
            )
        self._amplitude = amplitude
        self._offset = offset
        self._period = period_hours
        self._phase = phase

    def intensity(self, tau: int) -> float:
        h = hour_of_day(tau)
        return self._amplitude * math.cos(2 * math.pi * h / self._period + self._phase) + self._offset

    def describe(self) -> str:
        return (
            f"sinusoidal(a={self._amplitude}, o={self._offset}, "
            f"T={self._period}h, phi={self._phase})"
        )


class CustomPattern(ChangePattern):
    """Wraps an arbitrary user function ``tau -> intensity``."""

    def __init__(self, fn: Callable[[int], float], name: str = "custom") -> None:
        self._fn = fn
        self._name = name

    def intensity(self, tau: int) -> float:
        return float(self._fn(tau))

    def describe(self) -> str:
        return f"custom({self._name})"
