"""Algorithm 1 end-to-end: the pollution runner.

:func:`pollute` executes the full workflow — prepare, split into
sub-streams, pollute each sub-stream with its pipeline, integrate, and
return both the clean and the polluted stream (Algorithm 1 returns
``D, D^p``) plus the pollution log.

Two execution modes produce identical output:

* ``engine="direct"`` (default) — a plain Python loop over the prepared
  stream; fastest, and the reference semantics.
* ``engine="stream"`` — builds a topology on the
  :class:`~repro.streaming.environment.StreamExecutionEnvironment`
  (source -> prepare -> split -> per-branch pollution process -> union ->
  event-time sort -> sink), exercising the same code paths a Flink
  deployment would. Experiment 3's runtime measurements use this mode.

Equivalence of the two modes is asserted by an integration test and is a
useful invariant: the pollution semantics live in the pipeline objects, not
in the execution substrate.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.integrate import EventTimeSorter, integrate, sort_by_timestamp
from repro.core.log import PollutionLog
from repro.core.pipeline import PollutionPipeline
from repro.core.prepare import IdGenerator, PrepareFunction, prepare_stream
from repro.core.rng import RandomSource
from repro.errors import PollutionError
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, RunLedger
from repro.obs.live import ProgressRenderer
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.tracing import Tracer
from repro.streaming.checkpoint import Checkpoint, CheckpointStore
from repro.streaming.environment import StreamExecutionEnvironment
from repro.streaming.operators import Collector, ProcessContext, ProcessFunction
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.sink import CollectSink
from repro.streaming.source import CollectionSource, Source
from repro.streaming.split import SplitStrategy
from repro.streaming.supervision import ExecutionReport, FailurePolicy


@dataclass
class PollutionResult:
    """Output of one pollution run (Algorithm 1 returns ``D, D^p``)."""

    clean: list[Record]
    polluted: list[Record]
    log: PollutionLog
    schema: Schema
    seed: int | None = None
    report: ExecutionReport | None = None
    metrics: MetricsRegistry | None = None
    #: The run's :class:`~repro.obs.profile.Profiler` when ``profile=True``.
    profile: Profiler | None = None
    #: The run's :class:`~repro.obs.ledger.RunLedger` when one was passed.
    ledger: RunLedger | None = None

    @property
    def n_clean(self) -> int:
        return len(self.clean)

    @property
    def n_polluted(self) -> int:
        return len(self.polluted)

    def clean_by_id(self) -> dict[int, Record]:
        return {r.record_id: r for r in self.clean if r.record_id is not None}

    def dirty_tuples(self) -> list[tuple[Record, Record]]:
        """Pairs (clean, polluted) whose attribute values differ.

        Matches by record ID; dropped tuples have no pair here (consult the
        log), duplicated tuples contribute one pair per surviving copy.
        """
        clean = self.clean_by_id()
        out = []
        for rec in self.polluted:
            original = clean.get(rec.record_id)
            if original is not None and original.diff(rec):
                out.append((original, rec))
        return out


def _coerce_source(
    data: Source | Sequence[Mapping[str, Any] | Record],
    schema: Schema | None,
) -> tuple[Source, Schema]:
    if isinstance(data, Source):
        return data, data.schema
    if schema is None:
        raise PollutionError("a schema is required when passing raw rows")
    return CollectionSource(schema, data, validate=False), schema


def _run_preflight(
    check: str,
    pipelines: PollutionPipeline | Sequence[PollutionPipeline] | None,
    data: Source | Sequence[Mapping[str, Any] | Record],
    schema: Schema | None,
    *,
    seed: int | None,
    parallelism: int | None,
    key_by: Any | None,
    pipeline_factory: Any | None,
    failure_policy: Any | None = None,
    batch_size: int | None = None,
) -> None:
    """Static plan check before any record flows (``check="error"|"warn"|"off"``).

    Analysis is pure — no RNG draws, no pipeline mutation — so it cannot
    change the polluted output. Missing schema or pipelines are left for the
    run's own validation to report.
    """
    from repro.check.preflight import preflight

    if isinstance(data, Source):
        schema = data.schema
    if pipelines is None and pipeline_factory is not None:
        pipelines = getattr(pipeline_factory, "_template", None)
    if isinstance(pipelines, PollutionPipeline):
        pipelines = [pipelines]
    preflight(
        list(pipelines) if pipelines else [],
        schema,
        check,
        seed=seed,
        parallelism=parallelism,
        key_by=key_by,
        failure_policy=failure_policy,
        batch_size=batch_size,
    )


def pollute(
    data: Source | Sequence[Mapping[str, Any] | Record],
    pipelines: PollutionPipeline | Sequence[PollutionPipeline] | None = None,
    schema: Schema | None = None,
    split: SplitStrategy | None = None,
    seed: int | None = None,
    log: bool = True,
    engine: str = "direct",
    failure_policy: FailurePolicy | None = None,
    checkpoint_dir: str | Path | CheckpointStore | None = None,
    checkpoint_interval: int = 100,
    resume_from: Checkpoint | str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    parallelism: int | None = None,
    key_by: str | Any | None = None,
    pipeline_factory: Any | None = None,
    mp_context: str | Any | None = None,
    check: str = "warn",
    batch_size: int | None = None,
    max_shard_restarts: int = 2,
    heartbeat_timeout: float | None = 30.0,
    profile: bool = False,
    ledger: RunLedger | None = None,
    progress: ProgressRenderer | bool = False,
) -> PollutionResult:
    """Run Algorithm 1.

    Parameters
    ----------
    data:
        A :class:`~repro.streaming.source.Source` or a sequence of rows.
    pipelines:
        One pipeline (single-stream pollution) or ``m`` pipelines — one per
        sub-stream of the integration scenario.
    schema:
        Required when ``data`` is raw rows.
    split:
        How tuples are routed to the ``m`` sub-streams; defaults to
        :class:`~repro.streaming.split.Broadcast` (each tuple enters every
        sub-stream, the paper's "overlapping" reading). Ignored for a single
        pipeline.
    seed:
        Run seed; the same seed reproduces the pollution exactly (§2.3).
    log:
        Whether to record a :class:`~repro.core.log.PollutionLog`.
    engine:
        ``"direct"`` or ``"stream"``; identical output, see module docs.
        Fault-tolerance options force ``"stream"``.
    failure_policy:
        Default :class:`~repro.streaming.supervision.FailurePolicy` applied
        to every operator of the stream topology (supervised execution).
    checkpoint_dir:
        Directory (or :class:`~repro.streaming.checkpoint.CheckpointStore`)
        for periodic state snapshots; enables ``resume_from`` after a crash.
    checkpoint_interval:
        Source records between checkpoints (used with ``checkpoint_dir``).
    resume_from:
        A checkpoint (object or file path) from a previous run of the *same*
        configuration; the run continues from the checkpointed offset. The
        pollution log only covers post-resume tuples.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to collect run
        telemetry into: per-polluter activation/condition/injection counters
        plus the stream engine's node metrics. An enabled registry forces
        ``engine="stream"`` so node-level metrics exist. Pollution output is
        byte-identical with and without metrics.
    tracer:
        A :class:`~repro.obs.tracing.Tracer` receiving span records for node
        lifecycle, checkpoint, and supervision events (stream engine only).
    parallelism:
        When set, runs the sharded multi-process runtime
        (:func:`repro.parallel.pollute_parallel`): prepared records are
        partitioned across ``parallelism`` worker processes and the outputs
        deterministically merged. Keyed plans (``key_by``) are byte-identical
        to the sequential run; unkeyed plans are reproducible per
        ``(seed, parallelism)``. Incompatible with ``tracer`` (spans cannot
        cross process boundaries) and with ``engine="stream"``-only options
        no worse than the sequential path.
    key_by:
        Pollution key — an attribute name or a picklable key selector. Runs
        one pipeline instance per key (isolated stateful error functions);
        combine with ``parallelism`` for hash-partitioned parallel keyed
        pollution. Mutually exclusive with ``split``.
    pipeline_factory:
        Picklable per-key pipeline factory for keyed runs; defaults to
        cloning the single template pipeline per key.
    mp_context:
        Multiprocessing start method (name or context) for parallel runs.
    check:
        Pre-flight static plan analysis (:mod:`repro.check`): ``"error"``
        raises on error-severity diagnostics, ``"warn"`` (default) emits one
        :class:`~repro.check.PlanCheckWarning` for warning-or-worse findings,
        ``"off"`` skips the check. Runs once before execution; the analysis
        is pure, so output is byte-identical for every mode.
    batch_size:
        When > 1, run the micro-batching fast path (:mod:`repro.batch`):
        records move through the engine in slabs of this many tuples and
        the polluter chains execute as compiled batch kernels with bulk RNG
        draws. Output — records, metadata, pollution-log CSV, checkpoints —
        is byte-identical to the per-record path for every plan (the
        differential-equivalence suite enforces this). Applies to both
        engines and to parallel shard workers. Under a ``failure_policy``
        the engine executes whole slabs and, when one fails, rolls the slab
        back and replays it per-record so only the poison record is skipped,
        retried, or dead-lettered — never the surrounding ``batch_size - 1``
        records. Keyed runs dispatch per-record (batch kernels do not cross
        per-key pipeline instances); the planner records this as an explicit
        ``keyed-batching-per-record`` decision, visible via ``repro plan``.
    max_shard_restarts:
        Parallel runtime only (ignored otherwise): in-run respawn budget per
        shard for crashed or hung workers. After the budget,
        ``failure_policy`` decides between failing the run and degrading the
        shard to a sequential drain on the coordinator.
    heartbeat_timeout:
        Parallel runtime only (ignored otherwise): seconds of worker silence
        before the coordinator's watchdog declares the shard hung and
        recovers it; ``None`` disables hang detection.
    profile:
        Opt-in wall-time attribution (:class:`~repro.obs.profile.Profiler`):
        run phases, per-node exclusive time, and per-kernel timing —
        including which polluters run on the ``FallbackKernel`` — land in
        ``result.profile``. Observational only; output is byte-identical.
    ledger:
        A :class:`~repro.obs.ledger.RunLedger` receiving the run's
        structured lifecycle event log (run start/complete, checkpoint
        writes/restores, batch slab boundaries; plus the full shard
        lifecycle in parallel runs). Write it out with
        :meth:`~repro.obs.ledger.RunLedger.to_jsonl`.
    progress:
        ``True`` (or a preconfigured
        :class:`~repro.obs.live.ProgressRenderer`) paints live progress to
        stderr: an in-place ``top``-style table on a TTY, one plain line per
        refresh otherwise.
    """
    _run_preflight(
        check,
        pipelines,
        data,
        schema,
        seed=seed,
        parallelism=parallelism,
        key_by=key_by,
        pipeline_factory=pipeline_factory,
        failure_policy=failure_policy,
        batch_size=batch_size,
    )
    from repro.plan import PlanRequest, compile_plan, execute_plan

    request = PlanRequest(
        pipelines=pipelines,
        schema=schema,
        split=split,
        seed=seed,
        log=log,
        engine=engine,
        failure_policy=failure_policy,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        resume_from=resume_from,
        metrics=metrics,
        tracer=tracer,
        parallelism=parallelism,
        key_by=key_by,
        pipeline_factory=pipeline_factory,
        mp_context=mp_context,
        batch_size=batch_size,
        max_shard_restarts=max_shard_restarts,
        heartbeat_timeout=heartbeat_timeout,
        profile=profile,
        ledger=ledger,
        progress=progress,
    )
    return execute_plan(compile_plan(request), data)


def _execute_sequential_plan(plan: Any, data: Any) -> PollutionResult:
    """Run a compiled sequential plan: direct/stream, per-record/batched.

    Consumes the plan's normalized fields (``plan.pipelines``,
    ``plan.strategy``, the final ``plan.engine``) — every mode decision was
    made by :func:`repro.plan.compile_plan`, none is re-derived here.
    """
    request = plan.request
    pipelines: list[PollutionPipeline] = plan.pipelines
    strategy = plan.strategy
    streamed = plan.engine in ("stream", "stream-batch")
    batched = plan.batched
    seed = request.seed
    batch_size = request.batch_size
    metrics = request.metrics
    metered = request.metered
    ledger = request.ledger
    failure_policy = request.failure_policy
    profiler = request.profiler
    if profiler is None and request.profile:
        profiler = Profiler()
    renderer: ProgressRenderer | None = (
        request.progress
        if isinstance(request.progress, ProgressRenderer)
        else (ProgressRenderer() if request.progress else None)
    )

    source, schema = _coerce_source(data, request.schema)
    random_source = RandomSource(seed)
    for pipeline in pipelines:
        pipeline.bind(random_source)
        pipeline.reset()
        pipeline.bind_metrics(metrics if metered else None)
    pollution_log = PollutionLog() if request.log else None

    if ledger is not None:
        config = {
            "engine": plan.engine,
            "seed": seed,
            "batch_size": batch_size,
            "pipelines": sorted(p.name for p in pipelines),
            "checkpoint_interval": (
                request.checkpoint_interval if request.checkpoint_dir else None
            ),
        }
        ledger.record(
            "run.start",
            ledger_schema=LEDGER_SCHEMA_VERSION,
            config_hash=_config_digest(config),
            engine=plan.engine,
            seed=seed,
        )

    report: ExecutionReport | None = None
    try:
        if not streamed:
            if batched:
                from repro.batch.engine import run_batched

                clean, polluted = run_batched(
                    source, schema, list(pipelines), strategy, pollution_log, batch_size
                )
            else:
                clean, polluted = _run_direct(
                    source, schema, pipelines, strategy, pollution_log
                )
        else:
            with profiler.phase("execute") if profiler is not None else nullcontext():
                clean, polluted, report = _run_stream(
                    source,
                    schema,
                    pipelines,
                    strategy,
                    pollution_log,
                    failure_policy=failure_policy,
                    checkpoint_dir=request.checkpoint_dir,
                    checkpoint_interval=request.checkpoint_interval,
                    resume_from=request.resume_from,
                    metrics=metrics if metered else None,
                    tracer=request.tracer,
                    batch_size=batch_size,
                    profiler=profiler,
                    ledger=ledger,
                    progress=renderer,
                )
    finally:
        if metered:
            for pipeline in pipelines:
                pipeline.flush_metrics()
            if batched:
                from repro.batch.kernels import KERNEL_CACHE

                KERNEL_CACHE.publish(metrics)
        if renderer is not None:
            renderer.finish()
    if profiler is not None:
        profiler.finish()
        if metered:
            profiler.to_metrics(metrics)
    if ledger is not None:
        ledger.record(
            "run.complete",
            records_in=len(clean),
            records_out=len(polluted),
            completed=report.completed if report is not None else True,
        )
    if batched and pollution_log is not None:
        # Batch kernels append log events polluter-major; the stable
        # record-ID sort restores the sequential record-major order exactly
        # (IDs are assigned in arrival order, within-record chain order is
        # append order).
        pollution_log.events[:] = PollutionLog.merged([pollution_log]).events
    return PollutionResult(
        clean=clean,
        polluted=polluted,
        log=pollution_log if pollution_log is not None else PollutionLog(),
        schema=schema,
        seed=seed,
        report=report,
        metrics=metrics if metered else None,
        profile=profiler,
        ledger=ledger,
    )


def _config_digest(body: dict[str, Any]) -> str:
    """SHA-256 over a run configuration in canonical (sorted, compact) JSON."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Sequential keyed mode
# ---------------------------------------------------------------------------


def _execute_keyed_plan(plan: Any, data: Any) -> PollutionResult:
    """Run a compiled keyed-direct plan: the reference keyed loop.

    This is the sequential baseline the parallel keyed run is byte-compared
    against, so it must use the exact same pipeline factory semantics the
    shard workers do. The effective ``key_selector`` / ``pipeline_factory``
    were normalized by the planner; option combinations a keyed run cannot
    honour were already rejected at compile time.
    """
    from repro.core.keyed_pollution import run_keyed_direct

    request = plan.request
    key_selector = plan.key_selector
    pipeline_factory = plan.pipeline_factory
    seed = request.seed
    metrics = request.metrics
    ledger = request.ledger

    source, schema = _coerce_source(data, request.schema)
    metered = request.metered
    pollution_log = PollutionLog() if request.log else None
    profiler = request.profiler
    if profiler is None and request.profile:
        profiler = Profiler()
    renderer: ProgressRenderer | None = (
        request.progress
        if isinstance(request.progress, ProgressRenderer)
        else (ProgressRenderer() if request.progress else None)
    )
    if ledger is not None:
        config = {
            "engine": "keyed-direct",
            "seed": seed,
            "keyed": True,
        }
        ledger.record(
            "run.start",
            ledger_schema=LEDGER_SCHEMA_VERSION,
            config_hash=_config_digest(config),
            engine="keyed-direct",
            seed=seed,
        )
    with profiler.phase("prepare") if profiler is not None else nullcontext():
        clean = list(prepare_stream(source, schema, IdGenerator()))

    def _feed():
        for i, record in enumerate(clean, 1):
            if renderer is not None and (i & 1023) == 0:
                renderer.tick(i)
            yield record.copy()

    try:
        with profiler.phase("execute") if profiler is not None else nullcontext():
            polluted = run_keyed_direct(
                _feed(),
                key_selector,
                pipeline_factory,
                RandomSource(seed),
                pollution_log,
                metrics if metered else None,
                profiler=profiler,
            )
    finally:
        if renderer is not None:
            renderer.tick(len(clean))
            renderer.finish()
    if profiler is not None:
        profiler.finish()
        if metered:
            profiler.to_metrics(metrics)
    polluted = sort_by_timestamp(polluted, schema)
    if ledger is not None:
        ledger.record(
            "run.complete",
            records_in=len(clean),
            records_out=len(polluted),
            completed=True,
        )
    return PollutionResult(
        clean=clean,
        polluted=polluted,
        log=pollution_log if pollution_log is not None else PollutionLog(),
        schema=schema,
        seed=seed,
        metrics=metrics if metered else None,
        profile=profiler,
        ledger=ledger,
    )


# ---------------------------------------------------------------------------
# Direct mode
# ---------------------------------------------------------------------------


def _run_direct(
    source: Source,
    schema: Schema,
    pipelines: Sequence[PollutionPipeline],
    strategy: SplitStrategy,
    log: PollutionLog | None,
) -> tuple[list[Record], list[Record]]:
    clean: list[Record] = []
    substreams: list[list[Record]] = [[] for _ in pipelines]
    for record in prepare_stream(source, schema):
        clean.append(record)
        for idx in strategy.route(record):
            copy = record.copy()
            copy.substream = idx
            substreams[idx].extend(
                pipelines[idx].apply(copy, copy.event_time, log)  # type: ignore[arg-type]
            )
    polluted = integrate(substreams, schema)
    return clean, polluted


# ---------------------------------------------------------------------------
# Stream-engine mode
# ---------------------------------------------------------------------------


class PollutionProcessFunction(ProcessFunction):
    """A pollution pipeline as a streaming-engine process operator."""

    def __init__(
        self,
        pipeline: PollutionPipeline,
        log: PollutionLog | None,
        profiler: Profiler | None = None,
    ) -> None:
        self._pipeline = pipeline
        self._log = log
        self._profiler = profiler
        self._compiled = None
        if profiler is not None:
            profiler.register_pipeline(pipeline)

    def process(self, record: Record, ctx: ProcessContext, out: Collector) -> None:
        tau = record.event_time
        if tau is None:
            raise PollutionError("pollution operator received unprepared record")
        for result in self._pipeline.apply(record, tau, self._log):
            out.collect(result)

    def process_batch(self, records: list[Record], ctx: ProcessContext, out: Collector) -> None:
        """Batch-mode entry point: the chain compiled into fused kernels.

        Compiled lazily on the first slab so the operator is constructed
        before the environment decides the execution mode; kernels hold
        references to the live polluter objects, so checkpoint restore
        (which rewrites polluter state in place) needs no recompilation.
        """
        compiled = self._compiled
        if compiled is None:
            from repro.batch.kernels import compile_pipeline

            compiled = self._compiled = compile_pipeline(
                self._pipeline, profiler=self._profiler
            )
        taus: list[int] = []
        for record in records:
            tau = record.event_time
            if tau is None:
                raise PollutionError("pollution operator received unprepared record")
            taus.append(tau)
        out_records, _ = compiled.apply_batch(list(records), taus, self._log)
        out.collect_batch(out_records)

    def snapshot_state(self):
        return self._pipeline.snapshot_state()

    def restore_state(self, state) -> None:
        self._pipeline.restore_state(state)

    def slab_token(self):
        # The pollution log is process-local and append-only; a rolled-back
        # slab must truncate it to the cut or the per-record replay would
        # record every pre-failure event twice.
        return len(self._log.events) if self._log is not None else None

    def slab_rollback(self, token) -> None:
        del self._log.events[token:]


class _TeeSink(CollectSink):
    """Collects the clean stream off a tee in the topology."""


def _run_stream(
    source: Source,
    schema: Schema,
    pipelines: Sequence[PollutionPipeline],
    strategy: SplitStrategy,
    log: PollutionLog | None,
    failure_policy: FailurePolicy | None = None,
    checkpoint_dir: str | Path | CheckpointStore | None = None,
    checkpoint_interval: int = 100,
    resume_from: Checkpoint | str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    batch_size: int | None = None,
    profiler: Profiler | None = None,
    ledger: RunLedger | None = None,
    progress: ProgressRenderer | None = None,
) -> tuple[list[Record], list[Record], ExecutionReport]:
    env = StreamExecutionEnvironment(
        metrics=metrics,
        tracer=tracer,
        batch_size=batch_size,
        ledger=ledger,
        profiler=profiler,
        progress=progress,
    )
    if failure_policy is not None:
        env.set_failure_policy(failure_policy)
    if checkpoint_dir is not None:
        env.enable_checkpointing(checkpoint_interval, checkpoint_dir)
    prepared = env.from_source(source, name="input").map(
        PrepareFunction(schema, IdGenerator()), name="prepare"
    )
    clean_sink = _TeeSink()
    prepared.map(lambda r: r.copy(), name="tee-clean").add_sink(clean_sink, name="clean")
    branches = prepared.split(strategy, name="substreams")
    polluted_branches = [
        branch.process(
            PollutionProcessFunction(pipeline, log, profiler=profiler),
            name=f"pollute[{i}]",
        )
        for i, (branch, pipeline) in enumerate(zip(branches, pipelines))
    ]
    merged = (
        polluted_branches[0].union(*polluted_branches[1:], name="integrate")
        if len(polluted_branches) > 1
        else polluted_branches[0]
    )
    dirty_sink = CollectSink()
    merged.process(EventTimeSorter(schema), name="sort").add_sink(dirty_sink, name="dirty")
    report = env.execute(resume_from=resume_from)
    # The streaming sorter flushes per watermark; a final global stable sort
    # makes output identical to direct mode regardless of watermark cadence.
    polluted = sort_by_timestamp(dirty_sink.records, schema)
    return clean_sink.records, polluted, report
