"""Deterministic randomness for reproducible pollution.

§2.3: "The algorithm is deterministic (and thus reproducible) if the same
seeds are used for polluters using random error functions and/or
conditions." We go one step further than a single shared seed: every
polluter receives its own *named* child random stream derived from the run
seed and the polluter's name. Consequences:

* the same run seed reproduces a pollution byte-for-byte (the paper's
  requirement), and
* adding, removing, or reordering one polluter does not perturb the random
  decisions of any *other* polluter, because streams are keyed by name, not
  by draw order. This is what makes pollution configs stable under
  iteration, and it is the design choice the seeding ablation bench
  (``benchmarks/bench_ablation_seeding.py``) quantifies.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_hash(name: str) -> int:
    """A process-independent 32-bit hash of a name (CRC-32).

    Python's builtin ``hash`` is salted per process; CRC-32 is stable, which
    keeps seeds reproducible across runs and machines.
    """
    return zlib.crc32(name.encode("utf-8"))


#: Spawn-key namespace separating shard-seed derivation from polluter
#: streams (polluter spawn keys are 2-tuples, shard keys are 3-tuples, so
#: the two families can never collide; the constant keeps the derivation
#: self-describing in checkpoint/debug dumps).
SHARD_DOMAIN = 0x5AD


def derive_shard_seed(seed: int | None, shard_index: int, n_shards: int) -> int:
    """The run seed of shard ``shard_index`` in a ``n_shards``-way run.

    Derivation is a pure function of ``(seed, n_shards, shard_index)`` via
    :class:`numpy.random.SeedSequence`, so a sharded run is reproducible for
    a fixed worker count, and the shard seeds are pairwise independent — no
    shard's stream is a prefix or offset of another's. ``None`` seeds derive
    from entropy 0, mirroring :class:`RandomSource`'s own convention.
    """
    if shard_index < 0 or shard_index >= n_shards:
        raise ValueError(
            f"shard_index must be in [0, {n_shards}), got {shard_index}"
        )
    seq = np.random.SeedSequence(
        entropy=0 if seed is None else int(seed),
        spawn_key=(SHARD_DOMAIN, int(n_shards), int(shard_index)),
    )
    words = seq.generate_state(2, dtype=np.uint32)
    return (int(words[0]) << 32 | int(words[1])) % (2**63)


class RandomSource:
    """Factory of named, independent child generators for one pollution run."""

    def __init__(self, seed: int | None) -> None:
        self._seed = seed
        self._entropy = 0 if seed is None else int(seed)
        self._issued: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int | None:
        return self._seed

    def child(self, name: str, stream: int = 0) -> np.random.Generator:
        """The generator for ``name``; repeated calls return the same object.

        ``stream`` separates sub-streams under one name (a polluter's
        condition and error function draw from different streams so a
        condition evaluating True/False never shifts the error's draws).
        """
        key = f"{name}#{stream}"
        if key not in self._issued:
            seq = np.random.SeedSequence(
                entropy=self._entropy, spawn_key=(stable_hash(name), stream)
            )
            self._issued[key] = np.random.default_rng(seq)
        return self._issued[key]

    def for_shard(self, shard_index: int, n_shards: int) -> "RandomSource":
        """An independent source for one shard of a parallel pollution run.

        Used by :mod:`repro.parallel` for *unkeyed* plans, where each worker
        pollutes an arbitrary record subset: every shard gets its own seed
        (see :func:`derive_shard_seed`) so the run is reproducible for a
        fixed ``(seed, n_shards)`` pair. Keyed plans do **not** derive — they
        share the base seed, because their per-key named streams already make
        random draws independent of which shard a key lands on.
        """
        return RandomSource(derive_shard_seed(self._seed, shard_index, n_shards))

    def fork(self, run_index: int) -> "RandomSource":
        """An independent source for repetition ``run_index`` of an experiment.

        Experiments repeat pollution 50 (Exp. 1) or 10 (Exp. 2) times with
        different randomness but a fixed base seed; forking keeps the whole
        batch reproducible.
        """
        base = self._entropy
        return RandomSource((base * 1_000_003 + run_index + 1) % (2**63))
