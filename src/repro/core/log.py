"""The pollution log: ground truth for every injected error.

Figure 2 shows "Log Data" as an optional output of the pollution step: a
record of *what was polluted, where, and how*, keyed by the tuple IDs
assigned during preparation. The log serves three purposes:

1. **ground truth** for evaluating DQ tools — an error detector's hits are
   scored against the log (Experiment 1);
2. **reproduction** — together with the run seed, the log documents the
   exact pollution; and
3. **analysis** — per-hour/per-attribute error counts (Fig. 4's orange
   bars come from the DQ tool, the blue bars from expectations computed
   over this log's domain).
"""

from __future__ import annotations

import csv
import io
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.streaming.record import Record
from repro.streaming.time import hour_of_day_int


@dataclass(frozen=True)
class PollutionEvent:
    """One firing of one polluter on one tuple."""

    record_id: int | None
    substream: int | None
    polluter: str
    error: str
    attributes: tuple[str, ...]
    tau: int
    before: dict[str, Any]
    after: dict[str, Any] | None  # None => the tuple was dropped
    emitted: int  # how many records the error emitted (0 drop, 1 normal, >1 dup)

    @property
    def dropped(self) -> bool:
        return self.emitted == 0

    @property
    def duplicated(self) -> bool:
        return self.emitted > 1

    def changed_attributes(self) -> tuple[str, ...]:
        """The targeted attributes whose value actually changed."""
        if self.after is None:
            return self.attributes
        changed = []
        for a in self.attributes:
            b, c = self.before.get(a), self.after.get(a)
            if b is c:
                continue
            if isinstance(b, float) and isinstance(c, float) and b != b and c != c:
                continue  # NaN -> NaN
            if b != c:
                changed.append(a)
        return tuple(changed)


class PollutionLog:
    """Append-only collection of :class:`PollutionEvent` with query helpers."""

    def __init__(self) -> None:
        self.events: list[PollutionEvent] = []

    def record_event(
        self,
        record: Record,
        polluter: str,
        error: str,
        attributes: tuple[str, ...],
        tau: int,
        before: dict[str, Any],
        after: dict[str, Any] | None,
        emitted: int,
    ) -> None:
        self.events.append(
            PollutionEvent(
                record_id=record.record_id,
                substream=record.substream,
                polluter=polluter,
                error=error,
                attributes=attributes,
                tau=tau,
                before=dict(before),
                after=dict(after) if after is not None else None,
                emitted=emitted,
            )
        )

    def extend(self, events: Iterable[PollutionEvent]) -> None:
        """Append already-built events (used when folding shard logs)."""
        self.events.extend(events)

    @classmethod
    def merged(cls, logs: "Iterable[PollutionLog | Iterable[PollutionEvent]]") -> "PollutionLog":
        """Deterministically merge per-shard logs back into one run log.

        A parallel run (:mod:`repro.parallel`) routes every record — and all
        of its split copies — to exactly one shard, so each record's events
        live contiguously, in chain order, inside a single shard log. The
        sequential log orders events by record arrival, which equals record
        ID order (IDs are assigned at arrival). A *stable* sort of the
        concatenation by record ID therefore reproduces the sequential log
        byte-for-byte: between records it restores arrival order, and within
        a record it preserves the shard's (correct) chain order.
        """
        out = cls()
        for log in logs:
            out.extend(log.events if isinstance(log, PollutionLog) else log)
        out.events.sort(
            key=lambda e: (e.record_id is None, e.record_id if e.record_id is not None else 0)
        )
        return out

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[PollutionEvent]:
        return iter(self.events)

    def by_polluter(self, qualified_name: str) -> list[PollutionEvent]:
        return [e for e in self.events if e.polluter == qualified_name]

    def polluted_record_ids(self, polluter: str | None = None) -> set[int]:
        """IDs of tuples hit by (any or one) polluter."""
        return {
            e.record_id
            for e in self.events
            if e.record_id is not None and (polluter is None or e.polluter == polluter)
        }

    def count_by_polluter(self) -> dict[str, int]:
        return dict(Counter(e.polluter for e in self.events))

    def count_by_hour(self, polluter: str | None = None) -> dict[int, int]:
        """Events per hour-of-day — the paper's Fig. 4 x-axis."""
        counts: Counter[int] = Counter()
        for e in self.events:
            if polluter is None or e.polluter == polluter:
                counts[hour_of_day_int(e.tau)] += 1
        return {h: counts.get(h, 0) for h in range(24)}

    def count_changed(self, polluter: str | None = None) -> int:
        """Events that changed at least one attribute value (or dropped/duplicated)."""
        n = 0
        for e in self.events:
            if polluter is not None and e.polluter != polluter:
                continue
            if e.dropped or e.duplicated or e.changed_attributes():
                n += 1
        return n

    # -- serialization -------------------------------------------------------

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize all events as a JSON array (returns the text)."""
        payload = [
            {
                "record_id": e.record_id,
                "substream": e.substream,
                "polluter": e.polluter,
                "error": e.error,
                "attributes": list(e.attributes),
                "tau": e.tau,
                "before": _jsonable(e.before),
                "after": _jsonable(e.after) if e.after is not None else None,
                "emitted": e.emitted,
            }
            for e in self.events
        ]
        text = json.dumps(payload, indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_csv(self, path: str | Path | io.TextIOBase) -> None:
        """Write a flat CSV: one row per (event, attribute) pair."""
        owns = not isinstance(path, io.TextIOBase)
        f = open(path, "w", newline="") if owns else path
        try:
            writer = csv.writer(f)
            writer.writerow(
                ["record_id", "substream", "polluter", "error", "attribute",
                 "tau", "before", "after", "emitted"]
            )
            for e in self.events:
                targets = e.attributes or ("",)
                for a in targets:
                    writer.writerow(
                        [e.record_id, e.substream, e.polluter, e.error, a, e.tau,
                         e.before.get(a, ""),
                         "" if e.after is None else e.after.get(a, ""),
                         e.emitted]
                    )
        finally:
            if owns:
                f.close()


def _jsonable(values: dict[str, Any]) -> dict[str, Any]:
    out = {}
    for k, v in values.items():
        if isinstance(v, float) and v != v:
            out[k] = "NaN"
        else:
            out[k] = v
    return out
