"""Declarative pollution configuration (Fig. 2's "Define Error Conditions").

Challenge C3 asks for a configuration surface that is simple for
inexperienced users yet expressive for experts. This module maps plain
dicts (JSON-compatible — load them from files with ``json.load``) to
pipeline objects:

.. code-block:: python

    pipeline = pipeline_from_config({
        "name": "random-temporal",
        "polluters": [
            {
                "type": "standard",
                "name": "distance-nulls",
                "attributes": ["Distance"],
                "error": {"type": "set_null"},
                "condition": {"type": "sinusoidal",
                              "amplitude": 0.25, "offset": 0.25},
            },
        ],
    })

Composites nest naturally: a polluter spec with ``"type": "composite"``
carries a ``"children"`` list of polluter specs. Every error/condition type
in the catalogues is registered under a snake_case key; unknown keys raise
:class:`~repro.errors.ConfigError` with the list of known types.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core import conditions as C
from repro.core import patterns as P
from repro.core.composite import CompositeMode, CompositePolluter
from repro.core.errors import (
    CaseError,
    CumulativeDrift,
    DelayTuple,
    DerivedTemporalError,
    DropTuple,
    DuplicateTuple,
    FrozenValue,
    GaussianNoise,
    IncorrectCategory,
    Offset,
    OutlierSpike,
    RampedMultiplicativeNoise,
    RoundToPrecision,
    ScaleByFactor,
    SetToConstant,
    SetToDefault,
    SetToNaN,
    SetToNull,
    SignFlip,
    SwapAttributes,
    SwapWithPrevious,
    TimestampJitter,
    Truncate,
    Typo,
    UniformNoise,
    UnitConversion,
    WhitespacePadding,
)
from repro.core.errors.base import ErrorFunction
from repro.core.pipeline import PollutionPipeline
from repro.core.polluter import Polluter, StandardPolluter
from repro.errors import ConfigError, IcewaflError
from repro.streaming.time import Duration, parse_timestamp


def _ts(value: Any) -> int:
    """Accept epoch seconds or a timestamp string in configs."""
    if isinstance(value, str):
        return parse_timestamp(value)
    return int(value)


def _sub(path: str, key: str) -> str:
    """Extend a JSON-path-style location (``polluters[2].condition``)."""
    return f"{path}.{key}" if path else key


def _located(exc: ConfigError, path: str) -> ConfigError:
    """Attach a location to a ConfigError raised below us, keeping the
    innermost (most specific) path when one is already set."""
    if exc.path is None and path:
        return ConfigError(exc.args[0], path=path)
    return exc


def _duration(value: Any) -> Duration:
    """Accept seconds (number) or e.g. ``{"hours": 1}`` in configs."""
    if isinstance(value, Mapping):
        total = 0
        for unit, n in value.items():
            if unit == "seconds":
                total += int(n)
            elif unit == "minutes":
                total += int(n * 60)
            elif unit == "hours":
                total += int(n * 3600)
            elif unit == "days":
                total += int(n * 86400)
            else:
                raise ConfigError(f"unknown duration unit {unit!r}")
        return Duration(total)
    return Duration(int(value))


# ---------------------------------------------------------------------------
# Pattern registry
# ---------------------------------------------------------------------------

_PATTERNS: dict[str, Callable[..., P.ChangePattern]] = {
    "constant": lambda value=1.0: P.ConstantPattern(value),
    "abrupt": lambda change_time, before=0.0, after=1.0: P.AbruptPattern(
        _ts(change_time), before, after
    ),
    "incremental": lambda start, end, start_value=0.0, end_value=1.0: P.IncrementalPattern(
        _ts(start), _ts(end), start_value, end_value
    ),
    "intermediate": lambda start, end, block_seconds=3600: P.IntermediatePattern(
        _ts(start), _ts(end), block_seconds
    ),
    "sinusoidal": lambda amplitude=0.25, offset=0.25, period_hours=24.0, phase=0.0: P.SinusoidalPattern(
        amplitude, offset, period_hours, phase
    ),
}


def pattern_from_config(spec: Mapping[str, Any], _path: str = "") -> P.ChangePattern:
    kind = spec.get("type")
    if kind not in _PATTERNS:
        raise ConfigError(
            f"unknown pattern type {kind!r}; known: {sorted(_PATTERNS)}",
            path=_path or None,
        )
    kwargs = {k: v for k, v in spec.items() if k != "type"}
    try:
        return _PATTERNS[kind](**kwargs)
    except ConfigError as exc:
        raise _located(exc, _path) from exc
    except (TypeError, ValueError, IcewaflError) as exc:
        raise ConfigError(
            f"bad arguments for pattern {kind!r}: {exc}", path=_path or None
        ) from exc


# ---------------------------------------------------------------------------
# Condition registry
# ---------------------------------------------------------------------------

_CONDITIONS: dict[str, Callable[..., C.Condition]] = {
    "always": lambda: C.AlwaysCondition(),
    "never": lambda: C.NeverCondition(),
    "probability": lambda p: C.ProbabilityCondition(p),
    "attribute": lambda attribute, op, value: C.AttributeCondition(attribute, op, value),
    "null_value": lambda attribute: C.NullValueCondition(attribute),
    "in_set": lambda attribute, values: C.InSetCondition(attribute, values),
    "range": lambda attribute, low=None, high=None: C.RangeCondition(attribute, low, high),
    "after": lambda timestamp: C.AfterCondition(_ts(timestamp)),
    "before": lambda timestamp: C.BeforeCondition(_ts(timestamp)),
    "time_interval": lambda start, end: C.TimeIntervalCondition(_ts(start), _ts(end)),
    "daily_interval": lambda start_hour, end_hour: C.DailyIntervalCondition(
        start_hour, end_hour
    ),
    "sinusoidal": lambda amplitude=0.25, offset=0.25, period_hours=24.0, phase=0.0: C.SinusoidalCondition(
        amplitude, offset, period_hours, phase
    ),
    "linear_ramp": lambda tau0, taun, scale=1.0: C.LinearRampCondition(
        _ts(tau0), _ts(taun), scale
    ),
    "every_nth": lambda n, offset=0: C.EveryNthCondition(n, offset),
    "burst": lambda p_enter=0.01, p_exit=0.2, p_error_good=0.0, p_error_bad=0.9: C.BurstCondition(
        p_enter, p_exit, p_error_good, p_error_bad
    ),
}


def condition_from_config(spec: Mapping[str, Any], _path: str = "") -> C.Condition:
    kind = spec.get("type")
    if kind in ("all_of", "and", "any_of", "or"):
        children = spec.get("children")
        if not children:
            raise ConfigError(
                f"composite condition {kind!r} needs a non-empty 'children' list",
                path=_path or None,
            )
        built = [
            condition_from_config(c, _sub(_path, f"children[{i}]"))
            for i, c in enumerate(children)
        ]
        return C.AllOf(*built) if kind in ("all_of", "and") else C.AnyOf(*built)
    if kind == "not":
        if "child" not in spec:
            raise ConfigError(
                "'not' condition needs a 'child' entry", path=_path or None
            )
        return C.Not(condition_from_config(spec["child"], _sub(_path, "child")))
    if kind == "pattern_probability":
        if "pattern" not in spec:
            raise ConfigError(
                "'pattern_probability' condition needs a 'pattern' entry",
                path=_path or None,
            )
        return C.PatternProbabilityCondition(
            pattern_from_config(spec["pattern"], _sub(_path, "pattern")),
            scale=spec.get("scale", 1.0),
        )
    if kind not in _CONDITIONS:
        known = sorted(_CONDITIONS) + ["all_of", "any_of", "not", "pattern_probability"]
        raise ConfigError(
            f"unknown condition type {kind!r}; known: {known}", path=_path or None
        )
    kwargs = {k: v for k, v in spec.items() if k != "type"}
    try:
        return _CONDITIONS[kind](**kwargs)
    except ConfigError as exc:
        raise _located(exc, _path) from exc
    except (TypeError, ValueError, IcewaflError) as exc:
        raise ConfigError(
            f"bad arguments for condition {kind!r}: {exc}", path=_path or None
        ) from exc


# ---------------------------------------------------------------------------
# Error registry
# ---------------------------------------------------------------------------

_ERRORS: dict[str, Callable[..., ErrorFunction]] = {
    "gaussian_noise": lambda sigma: GaussianNoise(sigma),
    "uniform_noise": lambda low, high, multiplicative=False, signed=False: UniformNoise(
        low, high, multiplicative, signed
    ),
    "scale": lambda factor: ScaleByFactor(factor),
    "unit_conversion": lambda from_unit, to_unit: UnitConversion(from_unit, to_unit),
    "offset": lambda delta: Offset(delta),
    "round": lambda digits: RoundToPrecision(digits),
    "outlier": lambda k=10.0, scale=None, signed=True: OutlierSpike(k, scale, signed),
    "sign_flip": lambda: SignFlip(),
    "swap_attributes": lambda: SwapAttributes(),
    "set_null": lambda: SetToNull(),
    "set_nan": lambda: SetToNaN(),
    "set_constant": lambda value: SetToConstant(value),
    "set_default": lambda defaults: SetToDefault(defaults),
    "incorrect_category": lambda domain: IncorrectCategory(domain),
    "typo": lambda n_errors=1: Typo(n_errors),
    "case": lambda mode="random": CaseError(mode),
    "truncate": lambda keep: Truncate(keep),
    "whitespace": lambda max_spaces=3: WhitespacePadding(max_spaces),
    "delay": lambda delay, timestamp_attribute=None: DelayTuple(
        _duration(delay), timestamp_attribute
    ),
    "frozen_value": lambda: FrozenValue(),
    "timestamp_jitter": lambda max_jitter, timestamp_attribute=None: TimestampJitter(
        _duration(max_jitter), timestamp_attribute
    ),
    "drop": lambda: DropTuple(),
    "duplicate": lambda copies=1, spacing=None, timestamp_attribute=None: DuplicateTuple(
        copies,
        _duration(spacing) if spacing is not None else None,
        timestamp_attribute,
    ),
    "cumulative_drift": lambda step: CumulativeDrift(step),
    "swap_with_previous": lambda: SwapWithPrevious(),
    "ramped_mult_noise": lambda tau0, taun, a_max=0.0, b_max=0.5: RampedMultiplicativeNoise(
        _ts(tau0), _ts(taun), a_max, b_max
    ),
}


def error_from_config(spec: Mapping[str, Any], _path: str = "") -> ErrorFunction:
    kind = spec.get("type")
    if kind == "derived":
        for needed in ("error", "pattern"):
            if needed not in spec:
                raise ConfigError(
                    f"'derived' error needs an {needed!r} entry", path=_path or None
                )
        return DerivedTemporalError(
            error_from_config(spec["error"], _sub(_path, "error")),
            pattern_from_config(spec["pattern"], _sub(_path, "pattern")),
        )
    if kind not in _ERRORS:
        known = sorted(_ERRORS) + ["derived"]
        raise ConfigError(
            f"unknown error type {kind!r}; known: {known}", path=_path or None
        )
    kwargs = {k: v for k, v in spec.items() if k != "type"}
    try:
        return _ERRORS[kind](**kwargs)
    except ConfigError as exc:
        raise _located(exc, _path) from exc
    except (TypeError, ValueError, IcewaflError) as exc:
        raise ConfigError(
            f"bad arguments for error {kind!r}: {exc}", path=_path or None
        ) from exc


# ---------------------------------------------------------------------------
# Polluters & pipelines
# ---------------------------------------------------------------------------


def polluter_from_config(spec: Mapping[str, Any], _path: str = "") -> Polluter:
    """Build a standard or composite polluter from its JSON-compatible spec."""
    kind = spec.get("type", "standard")
    if kind == "standard":
        if "error" not in spec:
            raise ConfigError(
                "standard polluter spec needs an 'error' entry", path=_path or None
            )
        condition = (
            condition_from_config(spec["condition"], _sub(_path, "condition"))
            if "condition" in spec
            else None
        )
        return StandardPolluter(
            error=error_from_config(spec["error"], _sub(_path, "error")),
            attributes=spec.get("attributes", ()),
            condition=condition,
            name=spec.get("name"),
        )
    if kind == "composite":
        children_spec = spec.get("children")
        if not children_spec:
            raise ConfigError(
                "composite polluter spec needs non-empty 'children'",
                path=_path or None,
            )
        condition = (
            condition_from_config(spec["condition"], _sub(_path, "condition"))
            if "condition" in spec
            else None
        )
        try:
            mode = CompositeMode(spec.get("mode", "all"))
        except ValueError as exc:
            raise ConfigError(
                f"unknown composite mode {spec.get('mode')!r}; known: "
                f"{[m.value for m in CompositeMode]}",
                path=_sub(_path, "mode") or None,
            ) from exc
        return CompositePolluter(
            children=[
                polluter_from_config(c, _sub(_path, f"children[{i}]"))
                for i, c in enumerate(children_spec)
            ],
            condition=condition,
            mode=mode,
            weights=spec.get("weights"),
            name=spec.get("name"),
        )
    raise ConfigError(
        f"unknown polluter type {kind!r}; known: ['standard', 'composite']",
        path=_path or None,
    )


def pipeline_from_config(spec: Mapping[str, Any]) -> PollutionPipeline:
    """Build a :class:`PollutionPipeline` from a JSON-compatible dict."""
    polluter_specs = spec.get("polluters")
    if not polluter_specs:
        raise ConfigError("pipeline spec needs a non-empty 'polluters' list")
    polluters = [
        polluter_from_config(p, f"polluters[{i}]")
        for i, p in enumerate(polluter_specs)
    ]
    return PollutionPipeline(polluters, name=spec.get("name", "pipeline"))
