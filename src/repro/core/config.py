"""Declarative pollution configuration (Fig. 2's "Define Error Conditions").

Challenge C3 asks for a configuration surface that is simple for
inexperienced users yet expressive for experts. This module maps plain
dicts (JSON-compatible — load them from files with ``json.load``) to
pipeline objects:

.. code-block:: python

    pipeline = pipeline_from_config({
        "name": "random-temporal",
        "polluters": [
            {
                "type": "standard",
                "name": "distance-nulls",
                "attributes": ["Distance"],
                "error": {"type": "set_null"},
                "condition": {"type": "sinusoidal",
                              "amplitude": 0.25, "offset": 0.25},
            },
        ],
    })

Composites nest naturally: a polluter spec with ``"type": "composite"``
carries a ``"children"`` list of polluter specs. Every error/condition type
in the catalogues is registered under a snake_case key; unknown keys raise
:class:`~repro.errors.ConfigError` with the list of known types.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core import conditions as C
from repro.core import patterns as P
from repro.core.composite import CompositeMode, CompositePolluter
from repro.core.errors import (
    CaseError,
    CumulativeDrift,
    DelayTuple,
    DerivedTemporalError,
    DropTuple,
    DuplicateTuple,
    FrozenValue,
    GaussianNoise,
    IncorrectCategory,
    Offset,
    OutlierSpike,
    RampedMultiplicativeNoise,
    RoundToPrecision,
    ScaleByFactor,
    SetToConstant,
    SetToDefault,
    SetToNaN,
    SetToNull,
    SignFlip,
    SwapAttributes,
    SwapWithPrevious,
    TimestampJitter,
    Truncate,
    Typo,
    UniformNoise,
    UnitConversion,
    WhitespacePadding,
)
from repro.core.errors.base import ErrorFunction
from repro.core.pipeline import PollutionPipeline
from repro.core.polluter import Polluter, StandardPolluter
from repro.errors import ConfigError
from repro.streaming.time import Duration, parse_timestamp


def _ts(value: Any) -> int:
    """Accept epoch seconds or a timestamp string in configs."""
    if isinstance(value, str):
        return parse_timestamp(value)
    return int(value)


def _duration(value: Any) -> Duration:
    """Accept seconds (number) or e.g. ``{"hours": 1}`` in configs."""
    if isinstance(value, Mapping):
        total = 0
        for unit, n in value.items():
            if unit == "seconds":
                total += int(n)
            elif unit == "minutes":
                total += int(n * 60)
            elif unit == "hours":
                total += int(n * 3600)
            elif unit == "days":
                total += int(n * 86400)
            else:
                raise ConfigError(f"unknown duration unit {unit!r}")
        return Duration(total)
    return Duration(int(value))


# ---------------------------------------------------------------------------
# Pattern registry
# ---------------------------------------------------------------------------

_PATTERNS: dict[str, Callable[..., P.ChangePattern]] = {
    "constant": lambda value=1.0: P.ConstantPattern(value),
    "abrupt": lambda change_time, before=0.0, after=1.0: P.AbruptPattern(
        _ts(change_time), before, after
    ),
    "incremental": lambda start, end, start_value=0.0, end_value=1.0: P.IncrementalPattern(
        _ts(start), _ts(end), start_value, end_value
    ),
    "intermediate": lambda start, end, block_seconds=3600: P.IntermediatePattern(
        _ts(start), _ts(end), block_seconds
    ),
    "sinusoidal": lambda amplitude=0.25, offset=0.25, period_hours=24.0, phase=0.0: P.SinusoidalPattern(
        amplitude, offset, period_hours, phase
    ),
}


def pattern_from_config(spec: Mapping[str, Any]) -> P.ChangePattern:
    kind = spec.get("type")
    if kind not in _PATTERNS:
        raise ConfigError(
            f"unknown pattern type {kind!r}; known: {sorted(_PATTERNS)}"
        )
    kwargs = {k: v for k, v in spec.items() if k != "type"}
    return _PATTERNS[kind](**kwargs)


# ---------------------------------------------------------------------------
# Condition registry
# ---------------------------------------------------------------------------

_CONDITIONS: dict[str, Callable[..., C.Condition]] = {
    "always": lambda: C.AlwaysCondition(),
    "never": lambda: C.NeverCondition(),
    "probability": lambda p: C.ProbabilityCondition(p),
    "attribute": lambda attribute, op, value: C.AttributeCondition(attribute, op, value),
    "null_value": lambda attribute: C.NullValueCondition(attribute),
    "in_set": lambda attribute, values: C.InSetCondition(attribute, values),
    "range": lambda attribute, low=None, high=None: C.RangeCondition(attribute, low, high),
    "after": lambda timestamp: C.AfterCondition(_ts(timestamp)),
    "before": lambda timestamp: C.BeforeCondition(_ts(timestamp)),
    "time_interval": lambda start, end: C.TimeIntervalCondition(_ts(start), _ts(end)),
    "daily_interval": lambda start_hour, end_hour: C.DailyIntervalCondition(
        start_hour, end_hour
    ),
    "sinusoidal": lambda amplitude=0.25, offset=0.25, period_hours=24.0, phase=0.0: C.SinusoidalCondition(
        amplitude, offset, period_hours, phase
    ),
    "linear_ramp": lambda tau0, taun, scale=1.0: C.LinearRampCondition(
        _ts(tau0), _ts(taun), scale
    ),
    "every_nth": lambda n, offset=0: C.EveryNthCondition(n, offset),
}


def condition_from_config(spec: Mapping[str, Any]) -> C.Condition:
    kind = spec.get("type")
    if kind in ("all_of", "and"):
        return C.AllOf(*(condition_from_config(c) for c in spec["children"]))
    if kind in ("any_of", "or"):
        return C.AnyOf(*(condition_from_config(c) for c in spec["children"]))
    if kind == "not":
        return C.Not(condition_from_config(spec["child"]))
    if kind == "pattern_probability":
        return C.PatternProbabilityCondition(
            pattern_from_config(spec["pattern"]), scale=spec.get("scale", 1.0)
        )
    if kind not in _CONDITIONS:
        known = sorted(_CONDITIONS) + ["all_of", "any_of", "not", "pattern_probability"]
        raise ConfigError(f"unknown condition type {kind!r}; known: {known}")
    kwargs = {k: v for k, v in spec.items() if k != "type"}
    try:
        return _CONDITIONS[kind](**kwargs)
    except TypeError as exc:
        raise ConfigError(f"bad arguments for condition {kind!r}: {exc}") from exc


# ---------------------------------------------------------------------------
# Error registry
# ---------------------------------------------------------------------------

_ERRORS: dict[str, Callable[..., ErrorFunction]] = {
    "gaussian_noise": lambda sigma: GaussianNoise(sigma),
    "uniform_noise": lambda low, high, multiplicative=False, signed=False: UniformNoise(
        low, high, multiplicative, signed
    ),
    "scale": lambda factor: ScaleByFactor(factor),
    "unit_conversion": lambda from_unit, to_unit: UnitConversion(from_unit, to_unit),
    "offset": lambda delta: Offset(delta),
    "round": lambda digits: RoundToPrecision(digits),
    "outlier": lambda k=10.0, scale=None, signed=True: OutlierSpike(k, scale, signed),
    "sign_flip": lambda: SignFlip(),
    "swap_attributes": lambda: SwapAttributes(),
    "set_null": lambda: SetToNull(),
    "set_nan": lambda: SetToNaN(),
    "set_constant": lambda value: SetToConstant(value),
    "set_default": lambda defaults: SetToDefault(defaults),
    "incorrect_category": lambda domain: IncorrectCategory(domain),
    "typo": lambda n_errors=1: Typo(n_errors),
    "case": lambda mode="random": CaseError(mode),
    "truncate": lambda keep: Truncate(keep),
    "whitespace": lambda max_spaces=3: WhitespacePadding(max_spaces),
    "delay": lambda delay, timestamp_attribute=None: DelayTuple(
        _duration(delay), timestamp_attribute
    ),
    "frozen_value": lambda: FrozenValue(),
    "timestamp_jitter": lambda max_jitter, timestamp_attribute=None: TimestampJitter(
        _duration(max_jitter), timestamp_attribute
    ),
    "drop": lambda: DropTuple(),
    "duplicate": lambda copies=1, spacing=None, timestamp_attribute=None: DuplicateTuple(
        copies,
        _duration(spacing) if spacing is not None else None,
        timestamp_attribute,
    ),
    "cumulative_drift": lambda step: CumulativeDrift(step),
    "swap_with_previous": lambda: SwapWithPrevious(),
    "ramped_mult_noise": lambda tau0, taun, a_max=0.0, b_max=0.5: RampedMultiplicativeNoise(
        _ts(tau0), _ts(taun), a_max, b_max
    ),
}


def error_from_config(spec: Mapping[str, Any]) -> ErrorFunction:
    kind = spec.get("type")
    if kind == "derived":
        return DerivedTemporalError(
            error_from_config(spec["error"]), pattern_from_config(spec["pattern"])
        )
    if kind not in _ERRORS:
        known = sorted(_ERRORS) + ["derived"]
        raise ConfigError(f"unknown error type {kind!r}; known: {known}")
    kwargs = {k: v for k, v in spec.items() if k != "type"}
    try:
        return _ERRORS[kind](**kwargs)
    except TypeError as exc:
        raise ConfigError(f"bad arguments for error {kind!r}: {exc}") from exc


# ---------------------------------------------------------------------------
# Polluters & pipelines
# ---------------------------------------------------------------------------


def polluter_from_config(spec: Mapping[str, Any]) -> Polluter:
    """Build a standard or composite polluter from its JSON-compatible spec."""
    kind = spec.get("type", "standard")
    if kind == "standard":
        if "error" not in spec:
            raise ConfigError("standard polluter spec needs an 'error' entry")
        condition = (
            condition_from_config(spec["condition"]) if "condition" in spec else None
        )
        return StandardPolluter(
            error=error_from_config(spec["error"]),
            attributes=spec.get("attributes", ()),
            condition=condition,
            name=spec.get("name"),
        )
    if kind == "composite":
        children_spec = spec.get("children")
        if not children_spec:
            raise ConfigError("composite polluter spec needs non-empty 'children'")
        condition = (
            condition_from_config(spec["condition"]) if "condition" in spec else None
        )
        mode = CompositeMode(spec.get("mode", "all"))
        return CompositePolluter(
            children=[polluter_from_config(c) for c in children_spec],
            condition=condition,
            mode=mode,
            weights=spec.get("weights"),
            name=spec.get("name"),
        )
    raise ConfigError(f"unknown polluter type {kind!r}; known: ['standard', 'composite']")


def pipeline_from_config(spec: Mapping[str, Any]) -> PollutionPipeline:
    """Build a :class:`PollutionPipeline` from a JSON-compatible dict."""
    polluter_specs = spec.get("polluters")
    if not polluter_specs:
        raise ConfigError("pipeline spec needs a non-empty 'polluters' list")
    polluters = [polluter_from_config(p) for p in polluter_specs]
    return PollutionPipeline(polluters, name=spec.get("name", "pipeline"))
