"""Cross-polluter error dependencies (§5 item 1; the Fig. 1 scenario).

The motivating example: two co-located sensors S1/S2 are hit by the same
confounder (a cloud's shadow); the drifting cloud impacts sensor S4 *after
a time delay*; the logical sensor S3 inherits S1/S2's errors. Expressing
this requires one polluter's firing to influence another polluter's
condition — a dependency the base model cannot state.

This module adds it with two pieces:

* :class:`ErrorHistory` — a shared, time-indexed record of polluter
  firings. :class:`TrackedPolluter` wraps any polluter and appends to the
  history whenever the wrapped polluter fires.
* :class:`FiredRecentlyCondition` — fires when a named polluter fired
  within a window of the past, optionally lagged: "the cloud that shadowed
  S1 between 30 and 90 minutes ago is over S4 now".

Both pieces are ordinary catalogue citizens, so dependent polluters compose
into pipelines, composites, and keyed scenarios like everything else.
Determinism: the history is filled by upstream polluters in stream order,
so a seeded run reproduces dependent errors exactly.
"""

from __future__ import annotations

import bisect
from typing import Hashable

from repro.core.conditions.base import Condition
from repro.core.log import PollutionLog
from repro.core.polluter import Application, Polluter
from repro.core.rng import RandomSource
from repro.errors import ConditionError, PollutionError
from repro.streaming.record import Record
from repro.streaming.time import Duration


class ErrorHistory:
    """Time-indexed firings of tracked polluters, queryable by window.

    Entries are ``(tau, key)`` pairs per polluter name; ``key`` optionally
    scopes firings (e.g. per sensor) for keyed scenarios.
    """

    def __init__(self) -> None:
        self._firings: dict[str, list[tuple[int, Hashable]]] = {}

    def record(self, polluter_name: str, tau: int, key: Hashable = None) -> None:
        entries = self._firings.setdefault(polluter_name, [])
        # Stream order is (near-)chronological in tau; keep sorted for search.
        bisect.insort(entries, (tau, _orderable(key)))

    def fired_in_window(
        self,
        polluter_name: str,
        start_tau: int,
        end_tau: int,
        key: Hashable = None,
    ) -> bool:
        """True iff the polluter fired with ``start_tau <= tau <= end_tau``."""
        entries = self._firings.get(polluter_name, [])
        lo = bisect.bisect_left(entries, (start_tau, _MIN))
        for tau, entry_key in entries[lo:]:
            if tau > end_tau:
                break
            if key is None or entry_key == _orderable(key):
                return True
        return False

    def count(self, polluter_name: str) -> int:
        return len(self._firings.get(polluter_name, []))

    def clear(self) -> None:
        self._firings.clear()


class _Min:
    """Sorts before every other orderable key."""

    def __lt__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False


_MIN = _Min()


def _orderable(key: Hashable) -> Hashable:
    # None keys sort against strings poorly; normalize for bisect storage.
    return "" if key is None else str(key)


class TrackedPolluter(Polluter):
    """Wraps a polluter; records its firings into an :class:`ErrorHistory`.

    The tracked name defaults to the wrapped polluter's name — downstream
    :class:`FiredRecentlyCondition` instances reference that name.
    """

    def __init__(
        self,
        inner: Polluter,
        history: ErrorHistory,
        track_as: str | None = None,
    ) -> None:
        super().__init__(name=inner.name)
        self.inner = inner
        self.history = history
        self.track_as = track_as or inner.name

    def bind(self, source: RandomSource, scope: str = "") -> None:
        self._qualified_name = f"{scope}/{self.name}" if scope else self.name
        self.inner.bind(source, scope=scope)

    def reset(self) -> None:
        self.inner.reset()
        # The shared history belongs to the *run*; the runner clears it via
        # the first tracked polluter it resets.
        self.history.clear()

    def apply(self, record: Record, tau: int, log: PollutionLog | None = None) -> Application:
        outcome = self.inner.apply(record, tau, log)
        if outcome.fired:
            self.history.record(self.track_as, tau, key=record.substream)
        return outcome

    def expected_probability(self, record: Record, tau: int) -> float:
        return self.inner.expected_probability(record, tau)

    def describe(self) -> str:
        return f"tracked({self.inner.describe()})"


class FiredRecentlyCondition(Condition):
    """Fires when a tracked polluter fired within a lagged window.

    With ``lag`` L and ``window`` W, the condition at event time ``tau``
    checks firings in ``[tau - L - W, tau - L]`` — "the confounder that hit
    the upstream sensor between L and L+W ago reaches this sensor now".
    ``same_substream=True`` restricts to firings in this record's
    sub-stream (for integration scenarios where dependencies are
    stream-local).
    """

    def __init__(
        self,
        history: ErrorHistory,
        polluter_name: str,
        window: Duration,
        lag: Duration | None = None,
        same_substream: bool = False,
    ) -> None:
        super().__init__()
        if window.seconds <= 0:
            raise ConditionError("dependency window must be positive")
        self.history = history
        self.polluter_name = polluter_name
        self.window = window
        self.lag = lag or Duration.of_seconds(0)
        self.same_substream = same_substream

    def evaluate(self, record: Record, tau: int) -> bool:
        end = tau - self.lag.seconds
        start = end - self.window.seconds
        key = record.substream if self.same_substream else None
        return self.history.fired_in_window(self.polluter_name, start, end, key=key)

    def expected_probability(self, record: Record, tau: int) -> float:
        # Dependent on upstream randomness; the analytic walk treats the
        # realized history as given (exact *conditional* expectation).
        return 1.0 if self.evaluate(record, tau) else 0.0

    def describe(self) -> str:
        return (
            f"fired_recently({self.polluter_name!r}, "
            f"window={self.window.seconds}s, lag={self.lag.seconds}s)"
        )


def track(polluter: Polluter, history: ErrorHistory, track_as: str | None = None) -> TrackedPolluter:
    """Convenience wrapper: ``track(polluter, history)``."""
    if isinstance(polluter, TrackedPolluter):
        raise PollutionError(f"polluter {polluter.name!r} is already tracked")
    return TrackedPolluter(polluter, history, track_as)
