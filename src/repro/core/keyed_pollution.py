"""Keyed pollution: per-partition pipelines with isolated state (§5, items 1-2).

The paper's future work plans to "leverage Flink's keyed process functions
... as they enable the computation of (current and past) states of the data
stream across individual computing nodes". This module implements that
extension on the reproduction's substrate:

* :class:`KeyedPollutionProcessFunction` — a keyed operator that runs one
  pollution pipeline *per key* (e.g. per sensor/station). Stateful error
  functions (frozen values, cumulative drift, swaps) are instantiated per
  key through a pipeline factory, so sensor A freezing never contaminates
  sensor B's memory — the property that makes stateful pollution correct
  under partitioning.
* :func:`pollute_keyed` — Algorithm 1 with key-partitioned pollution: one
  logical multiplexed stream in, per-key pipelines applied, merged output
  sorted by timestamp.

Determinism: the per-key pipelines draw from named streams keyed by
``pipeline-name/key/polluter-name``, so adding a key (a new sensor) never
perturbs existing keys' randomness — the keyed analogue of the seeding
design decision in :mod:`repro.core.rng`.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

from repro.core.integrate import sort_by_timestamp
from repro.core.log import PollutionLog
from repro.core.pipeline import PollutionPipeline
from repro.core.prepare import IdGenerator, prepare_stream
from repro.core.rng import RandomSource
from repro.errors import PollutionError
from repro.obs.metrics import MetricsRegistry
from repro.streaming.keyed import (
    KeyedContext,
    KeyedProcessFunction,
    StateStore,
    TimerService,
)
from repro.streaming.operators import Collector
from repro.streaming.record import Record
from repro.streaming.schema import Schema

PipelineFactory = Callable[[Hashable], PollutionPipeline]
KeySelector = Callable[[Record], Hashable]


class FreshPipelineFactory:
    """A picklable pipeline factory cloning one template pipeline per key.

    Wraps the common case — "run *this* pipeline independently for every
    key" — as a serializable object that can ship to worker processes
    (lambda factories cannot). Each call deep-copies the unbound template,
    so stateful error functions get per-key memory, and the caller (keyed
    runner or shard worker) binds/scopes the clone afterwards.
    """

    def __init__(self, template: PollutionPipeline) -> None:
        self._template = template

    def __call__(self, key: Hashable) -> PollutionPipeline:
        return copy.deepcopy(self._template)

    def __repr__(self) -> str:
        return f"FreshPipelineFactory({self._template.name!r})"


class KeyedPollutionProcessFunction(KeyedProcessFunction):
    """Runs a per-key pollution pipeline inside a keyed stream operator.

    Parameters
    ----------
    pipeline_factory:
        Builds the pipeline for a key on first encounter. Factories must
        return *fresh* polluter objects per call (stateful error functions
        hold per-key memory).
    random_source:
        The run's seed source; each key's pipeline binds to child streams
        scoped by the key.
    log:
        Optional shared pollution log (events carry record ids, so per-key
        attribution joins through the clean stream).
    """

    def __init__(
        self,
        pipeline_factory: PipelineFactory,
        random_source: RandomSource,
        log: PollutionLog | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: Any = None,
    ) -> None:
        self._factory = pipeline_factory
        self._source = random_source
        self._log = log
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        self._profiler = profiler
        self._pipelines: dict[Hashable, PollutionPipeline] = {}
        self._pending_state: dict[str, Any] = {}

    def _pipeline_for(self, key: Hashable) -> PollutionPipeline:
        if key not in self._pipelines:
            pipeline = self._factory(key)
            if self._profiler is not None:
                # Classify before the name is key-scoped: per-key polluter
                # instances then share one label per polluter, not one per
                # (key, polluter).
                self._profiler.register_pipeline(pipeline)
            # Scope the pipeline's named streams by the key so per-key
            # randomness is independent and stable under key additions.
            pipeline.name = f"{pipeline.name}/key={key!r}"
            pipeline.bind(self._source)
            pipeline.reset()
            if self._metrics is not None:
                pipeline.bind_metrics(self._metrics)
            stored = self._pending_state.pop(repr(key), None)
            if stored is not None:
                pipeline.restore_state(stored)
            self._pipelines[key] = pipeline
        return self._pipelines[key]

    def process(self, record: Record, ctx: KeyedContext, out: Collector) -> None:
        tau = record.event_time
        if tau is None:
            raise PollutionError("keyed pollution received an unprepared record")
        pipeline = self._pipeline_for(ctx.current_key)
        for result in pipeline.apply(record, tau, self._log):
            out.collect(result)

    def flush_metrics(self) -> None:
        """Fold every per-key pipeline's buffered tallies into the registry."""
        for pipeline in self._pipelines.values():
            pipeline.flush_metrics()

    def snapshot_state(self) -> dict[str, Any] | None:
        """Per-key pipeline state, keyed by ``repr(key)`` for serializability.

        Keys are lazily re-materialized on restore: state is stashed until
        the key's first post-restore record rebuilds its pipeline, so the
        factory never runs for keys the resumed stream no longer contains.
        """
        states = {
            repr(key): pipeline.snapshot_state()
            for key, pipeline in self._pipelines.items()
        }
        states = {k: s for k, s in states.items() if s is not None}
        pending = dict(self._pending_state)
        if not states and not pending:
            return None
        return {"pipelines": {**pending, **states}}

    def restore_state(self, state: Mapping[str, Any] | None) -> None:
        if state is None:
            return
        self._pending_state = dict(state.get("pipelines", {}))

    @property
    def keys_seen(self) -> list[Hashable]:
        return list(self._pipelines)


def run_keyed_direct(
    prepared: Iterable[Record],
    key_selector: KeySelector,
    pipeline_factory: PipelineFactory,
    random_source: RandomSource,
    pollution_log: PollutionLog | None = None,
    metrics: MetricsRegistry | None = None,
    profiler: Any = None,
) -> list[Record]:
    """Apply per-key pollution to an already-prepared record stream.

    The shared sequential keyed loop: ``pollute_keyed`` drives it over the
    whole stream; each :mod:`repro.parallel` shard worker drives it over its
    key partition (correct because a key's records never straddle shards,
    so every per-key pipeline sees the exact sequential draw order).
    Records in ``prepared`` are consumed as-is — callers own copying if the
    originals must survive. Returns the unsorted polluted records.
    """
    operator = KeyedPollutionProcessFunction(
        pipeline_factory, random_source, pollution_log, metrics, profiler=profiler
    )
    polluted: list[Record] = []
    collector = Collector(polluted.append)
    ctx = KeyedContext(StateStore(), TimerService())
    for record in prepared:
        ctx.current_key = key_selector(record)
        ctx.event_time = record.event_time
        operator.process(record, ctx, collector)
    if metrics is not None and metrics.enabled:
        operator.flush_metrics()
    return polluted


def pollute_keyed(
    data: Sequence[Mapping[str, Any] | Record],
    key_selector: KeySelector,
    pipeline_factory: PipelineFactory,
    schema: Schema,
    seed: int | None = None,
    log: bool = True,
    metrics: MetricsRegistry | None = None,
):
    """Algorithm 1 with key-partitioned pollution.

    Returns a :class:`~repro.core.runner.PollutionResult`; the polluted
    stream interleaves all keys, sorted by the (possibly polluted)
    timestamp, exactly like the unkeyed runner's integration step.
    """
    from repro.core.runner import PollutionResult
    from repro.streaming.source import CollectionSource

    source = CollectionSource(schema, data, validate=False)
    random_source = RandomSource(seed)
    pollution_log = PollutionLog() if log else None
    metered = metrics is not None and metrics.enabled

    clean = list(prepare_stream(source, schema, IdGenerator()))
    polluted = run_keyed_direct(
        (record.copy() for record in clean),
        key_selector,
        pipeline_factory,
        random_source,
        pollution_log,
        metrics if metered else None,
    )
    return PollutionResult(
        clean=clean,
        polluted=sort_by_timestamp(polluted, schema),
        log=pollution_log if pollution_log is not None else PollutionLog(),
        schema=schema,
        seed=seed,
        metrics=metrics if metered else None,
    )
