"""Keyed pollution: per-partition pipelines with isolated state (§5, items 1-2).

The paper's future work plans to "leverage Flink's keyed process functions
... as they enable the computation of (current and past) states of the data
stream across individual computing nodes". This module implements that
extension on the reproduction's substrate:

* :class:`KeyedPollutionProcessFunction` — a keyed operator that runs one
  pollution pipeline *per key* (e.g. per sensor/station). Stateful error
  functions (frozen values, cumulative drift, swaps) are instantiated per
  key through a pipeline factory, so sensor A freezing never contaminates
  sensor B's memory — the property that makes stateful pollution correct
  under partitioning.
* :func:`pollute_keyed` — Algorithm 1 with key-partitioned pollution: one
  logical multiplexed stream in, per-key pipelines applied, merged output
  sorted by timestamp.

Determinism: the per-key pipelines draw from named streams keyed by
``pipeline-name/key/polluter-name``, so adding a key (a new sensor) never
perturbs existing keys' randomness — the keyed analogue of the seeding
design decision in :mod:`repro.core.rng`.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping, Sequence

from repro.core.integrate import sort_by_timestamp
from repro.core.log import PollutionLog
from repro.core.pipeline import PollutionPipeline
from repro.core.prepare import IdGenerator, prepare_stream
from repro.core.rng import RandomSource
from repro.errors import PollutionError
from repro.streaming.keyed import (
    KeyedContext,
    KeyedProcessFunction,
    StateStore,
    TimerService,
)
from repro.streaming.operators import Collector
from repro.streaming.record import Record
from repro.streaming.schema import Schema

PipelineFactory = Callable[[Hashable], PollutionPipeline]
KeySelector = Callable[[Record], Hashable]


class KeyedPollutionProcessFunction(KeyedProcessFunction):
    """Runs a per-key pollution pipeline inside a keyed stream operator.

    Parameters
    ----------
    pipeline_factory:
        Builds the pipeline for a key on first encounter. Factories must
        return *fresh* polluter objects per call (stateful error functions
        hold per-key memory).
    random_source:
        The run's seed source; each key's pipeline binds to child streams
        scoped by the key.
    log:
        Optional shared pollution log (events carry record ids, so per-key
        attribution joins through the clean stream).
    """

    def __init__(
        self,
        pipeline_factory: PipelineFactory,
        random_source: RandomSource,
        log: PollutionLog | None = None,
    ) -> None:
        self._factory = pipeline_factory
        self._source = random_source
        self._log = log
        self._pipelines: dict[Hashable, PollutionPipeline] = {}

    def _pipeline_for(self, key: Hashable) -> PollutionPipeline:
        if key not in self._pipelines:
            pipeline = self._factory(key)
            # Scope the pipeline's named streams by the key so per-key
            # randomness is independent and stable under key additions.
            pipeline.name = f"{pipeline.name}/key={key!r}"
            pipeline.bind(self._source)
            pipeline.reset()
            self._pipelines[key] = pipeline
        return self._pipelines[key]

    def process(self, record: Record, ctx: KeyedContext, out: Collector) -> None:
        tau = record.event_time
        if tau is None:
            raise PollutionError("keyed pollution received an unprepared record")
        pipeline = self._pipeline_for(ctx.current_key)
        for result in pipeline.apply(record, tau, self._log):
            out.collect(result)

    @property
    def keys_seen(self) -> list[Hashable]:
        return list(self._pipelines)


def pollute_keyed(
    data: Sequence[Mapping[str, Any] | Record],
    key_selector: KeySelector,
    pipeline_factory: PipelineFactory,
    schema: Schema,
    seed: int | None = None,
    log: bool = True,
):
    """Algorithm 1 with key-partitioned pollution.

    Returns a :class:`~repro.core.runner.PollutionResult`; the polluted
    stream interleaves all keys, sorted by the (possibly polluted)
    timestamp, exactly like the unkeyed runner's integration step.
    """
    from repro.core.runner import PollutionResult
    from repro.streaming.source import CollectionSource

    source = CollectionSource(schema, data, validate=False)
    random_source = RandomSource(seed)
    pollution_log = PollutionLog() if log else None

    operator = KeyedPollutionProcessFunction(
        pipeline_factory, random_source, pollution_log
    )
    clean: list[Record] = []
    polluted: list[Record] = []
    collector = Collector(polluted.append)
    ctx = KeyedContext(StateStore(), TimerService())
    for record in prepare_stream(source, schema, IdGenerator()):
        clean.append(record)
        work = record.copy()
        ctx.current_key = key_selector(work)
        ctx.event_time = work.event_time
        operator.process(work, ctx, collector)
    return PollutionResult(
        clean=clean,
        polluted=sort_by_timestamp(polluted, schema),
        log=pollution_log if pollution_log is not None else PollutionLog(),
        schema=schema,
        seed=seed,
    )
