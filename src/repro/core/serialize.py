"""Pipeline serialization: objects back to declarative configs.

:mod:`repro.core.config` builds pipelines *from* JSON-compatible dicts;
this module is the inverse. Together with the run seed they make a
pollution benchmark fully self-describing: ``pipeline_to_config(pipeline)``
+ seed + input data reproduce the exact dirty stream (Fig. 2's reproducible
workflow, closed under programmatic pipeline construction).

Round-trip guarantee (tested): for every serializable pipeline ``P``,
``pipeline_from_config(pipeline_to_config(P))`` produces byte-identical
pollution under the same seed. Polluters built from custom (unregistered)
condition/error classes raise :class:`~repro.errors.ConfigError` — they
have no declarative form.
"""

from __future__ import annotations

from typing import Any

from repro.core import conditions as C
from repro.core import patterns as P
from repro.core.composite import CompositePolluter
from repro.core.errors import (
    CaseError,
    CumulativeDrift,
    DelayTuple,
    DerivedTemporalError,
    DropTuple,
    DuplicateTuple,
    FrozenValue,
    GaussianNoise,
    IncorrectCategory,
    Offset,
    OutlierSpike,
    RampedMultiplicativeNoise,
    RoundToPrecision,
    ScaleByFactor,
    SetToConstant,
    SetToDefault,
    SetToNaN,
    SetToNull,
    SignFlip,
    SwapAttributes,
    SwapWithPrevious,
    TimestampJitter,
    Truncate,
    Typo,
    UniformNoise,
    UnitConversion,
    WhitespacePadding,
)
from repro.core.errors.base import ErrorFunction
from repro.core.pipeline import PollutionPipeline
from repro.core.polluter import Polluter, StandardPolluter
from repro.errors import ConfigError


def pattern_to_config(pattern: P.ChangePattern) -> dict[str, Any]:
    if isinstance(pattern, P.ConstantPattern):
        return {"type": "constant", "value": pattern._value}  # noqa: SLF001
    if isinstance(pattern, P.AbruptPattern):
        return {
            "type": "abrupt",
            "change_time": pattern._change_time,  # noqa: SLF001
            "before": pattern._before,  # noqa: SLF001
            "after": pattern._after,  # noqa: SLF001
        }
    if isinstance(pattern, P.IncrementalPattern):
        return {
            "type": "incremental",
            "start": pattern._start,  # noqa: SLF001
            "end": pattern._end,  # noqa: SLF001
            "start_value": pattern._start_value,  # noqa: SLF001
            "end_value": pattern._end_value,  # noqa: SLF001
        }
    if isinstance(pattern, P.IntermediatePattern):
        return {
            "type": "intermediate",
            "start": pattern._start,  # noqa: SLF001
            "end": pattern._end,  # noqa: SLF001
            "block_seconds": pattern._block,  # noqa: SLF001
        }
    if isinstance(pattern, P.SinusoidalPattern):
        return {
            "type": "sinusoidal",
            "amplitude": pattern._amplitude,  # noqa: SLF001
            "offset": pattern._offset,  # noqa: SLF001
            "period_hours": pattern._period,  # noqa: SLF001
            "phase": pattern._phase,  # noqa: SLF001
        }
    raise ConfigError(
        f"pattern {type(pattern).__name__} has no declarative form"
    )


def condition_to_config(condition: C.Condition) -> dict[str, Any]:
    if isinstance(condition, C.AlwaysCondition):
        return {"type": "always"}
    if isinstance(condition, C.NeverCondition):
        return {"type": "never"}
    if isinstance(condition, C.ProbabilityCondition):
        return {"type": "probability", "p": condition.p}
    if isinstance(condition, C.AttributeCondition):
        return {
            "type": "attribute",
            "attribute": condition.attribute,
            "op": condition.op,
            "value": condition.value,
        }
    if isinstance(condition, C.NullValueCondition):
        return {"type": "null_value", "attribute": condition.attribute}
    if isinstance(condition, C.InSetCondition):
        return {
            "type": "in_set",
            "attribute": condition.attribute,
            "values": sorted(condition.values, key=repr),
        }
    if isinstance(condition, C.RangeCondition):
        return {
            "type": "range",
            "attribute": condition.attribute,
            "low": condition.low,
            "high": condition.high,
        }
    if isinstance(condition, C.AfterCondition):
        return {"type": "after", "timestamp": condition.timestamp}
    if isinstance(condition, C.BeforeCondition):
        return {"type": "before", "timestamp": condition.timestamp}
    if isinstance(condition, C.TimeIntervalCondition):
        return {"type": "time_interval", "start": condition.start, "end": condition.end}
    if isinstance(condition, C.DailyIntervalCondition):
        return {
            "type": "daily_interval",
            "start_hour": condition.start_hour,
            "end_hour": condition.end_hour,
        }
    # Order matters: the specialized pattern conditions subclass
    # PatternProbabilityCondition.
    if isinstance(condition, C.LinearRampCondition):
        return {
            "type": "linear_ramp",
            "tau0": condition.tau0,
            "taun": condition.taun,
            "scale": condition.scale,
        }
    if isinstance(condition, C.SinusoidalCondition):
        spec = pattern_to_config(condition.pattern)
        spec.pop("type")
        return {"type": "sinusoidal", **spec}
    if isinstance(condition, C.PatternProbabilityCondition):
        return {
            "type": "pattern_probability",
            "pattern": pattern_to_config(condition.pattern),
            "scale": condition.scale,
        }
    if isinstance(condition, C.EveryNthCondition):
        return {"type": "every_nth", "n": condition.n, "offset": condition.offset}
    if isinstance(condition, C.BurstCondition):
        return {
            "type": "burst",
            "p_enter": condition.p_enter,
            "p_exit": condition.p_exit,
            "p_error_good": condition.p_error_good,
            "p_error_bad": condition.p_error_bad,
        }
    if isinstance(condition, C.AllOf):
        return {
            "type": "all_of",
            "children": [condition_to_config(c) for c in condition.children],
        }
    if isinstance(condition, C.AnyOf):
        return {
            "type": "any_of",
            "children": [condition_to_config(c) for c in condition.children],
        }
    if isinstance(condition, C.Not):
        return {"type": "not", "child": condition_to_config(condition.child)}
    raise ConfigError(
        f"condition {type(condition).__name__} has no declarative form"
    )


def error_to_config(error: ErrorFunction) -> dict[str, Any]:
    if isinstance(error, DerivedTemporalError):
        return {
            "type": "derived",
            "error": error_to_config(error.inner),
            "pattern": pattern_to_config(error.pattern),
        }
    if isinstance(error, GaussianNoise):
        return {"type": "gaussian_noise", "sigma": error.sigma}
    if isinstance(error, UniformNoise):
        return {
            "type": "uniform_noise",
            "low": error.low,
            "high": error.high,
            "multiplicative": error.multiplicative,
            "signed": error.signed,
        }
    if isinstance(error, UnitConversion):  # before ScaleByFactor (subclass)
        return {
            "type": "unit_conversion",
            "from_unit": error.from_unit,
            "to_unit": error.to_unit,
        }
    if isinstance(error, ScaleByFactor):
        return {"type": "scale", "factor": error.factor}
    if isinstance(error, Offset):
        return {"type": "offset", "delta": error.delta}
    if isinstance(error, RoundToPrecision):
        return {"type": "round", "digits": error.digits}
    if isinstance(error, OutlierSpike):
        return {"type": "outlier", "k": error.k, "scale": error.scale, "signed": error.signed}
    if isinstance(error, SignFlip):
        return {"type": "sign_flip"}
    if isinstance(error, SwapAttributes):
        return {"type": "swap_attributes"}
    if isinstance(error, SetToNull):
        return {"type": "set_null"}
    if isinstance(error, SetToNaN):
        return {"type": "set_nan"}
    if isinstance(error, SetToConstant):
        return {"type": "set_constant", "value": error.value}
    if isinstance(error, SetToDefault):
        return {"type": "set_default", "defaults": dict(error.defaults)}
    if isinstance(error, IncorrectCategory):
        return {"type": "incorrect_category", "domain": list(error.domain)}
    if isinstance(error, Typo):
        return {"type": "typo", "n_errors": error.n_errors}
    if isinstance(error, CaseError):
        return {"type": "case", "mode": error.mode}
    if isinstance(error, Truncate):
        return {"type": "truncate", "keep": error.keep}
    if isinstance(error, WhitespacePadding):
        return {"type": "whitespace", "max_spaces": error.max_spaces}
    if isinstance(error, DelayTuple):
        return {
            "type": "delay",
            "delay": error.delay.seconds,
            "timestamp_attribute": error.timestamp_attribute,
        }
    if isinstance(error, FrozenValue):
        return {"type": "frozen_value"}
    if isinstance(error, TimestampJitter):
        return {
            "type": "timestamp_jitter",
            "max_jitter": error.max_jitter.seconds,
            "timestamp_attribute": error.timestamp_attribute,
        }
    if isinstance(error, DropTuple):
        return {"type": "drop"}
    if isinstance(error, DuplicateTuple):
        return {
            "type": "duplicate",
            "copies": error.copies,
            "spacing": error.spacing.seconds,
            "timestamp_attribute": error.timestamp_attribute,
        }
    if isinstance(error, CumulativeDrift):
        return {"type": "cumulative_drift", "step": error.step}
    if isinstance(error, SwapWithPrevious):
        return {"type": "swap_with_previous"}
    if isinstance(error, RampedMultiplicativeNoise):
        return {
            "type": "ramped_mult_noise",
            "tau0": error.tau0,
            "taun": error.taun,
            "a_max": error.a_max,
            "b_max": error.b_max,
        }
    raise ConfigError(f"error {type(error).__name__} has no declarative form")


def polluter_to_config(polluter: Polluter) -> dict[str, Any]:
    if isinstance(polluter, StandardPolluter):
        return {
            "type": "standard",
            "name": polluter.name,
            "attributes": list(polluter.attributes),
            "error": error_to_config(polluter.error),
            "condition": condition_to_config(polluter.condition),
        }
    if isinstance(polluter, CompositePolluter):
        spec: dict[str, Any] = {
            "type": "composite",
            "name": polluter.name,
            "mode": polluter.mode.value,
            "condition": condition_to_config(polluter.condition),
            "children": [polluter_to_config(c) for c in polluter.children],
        }
        if polluter.weights is not None:
            spec["weights"] = list(polluter.weights)
        return spec
    raise ConfigError(f"polluter {type(polluter).__name__} has no declarative form")


def pipeline_to_config(pipeline: PollutionPipeline) -> dict[str, Any]:
    """Serialize a pipeline to its JSON-compatible declarative form."""
    return {
        "name": pipeline.name,
        "polluters": [polluter_to_config(p) for p in pipeline.polluters],
    }
