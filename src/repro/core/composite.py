"""Composite polluters: structuring pollution pipelines (§2.2.1).

"Composite polluters can register an arbitrary number of standard polluters
that actually insert the errors. Through nesting, composite polluters allow
modeling more complex pollution strategies, for example, two error types
that always occur together or a set of errors that are mutually exclusive."

Three delegation modes cover the paper's examples:

* :attr:`CompositeMode.ALL` — every child is applied in sequence (errors
  that occur together; the software-update scenario of Fig. 5);
* :attr:`CompositeMode.FIRST_MATCH` — children are offered the tuple in
  order until one fires (mutually exclusive errors with priority);
* :attr:`CompositeMode.CHOOSE_ONE` — one child is drawn (optionally
  weighted) and applied (mutually exclusive errors, random mix).

Since children are themselves polluters, composites nest arbitrarily —
Fig. 5's "wrong BPM Measurement" composite sits inside the "Software
Update" composite. A composite with mode ALL and condition *always* is an
inlined sub-pipeline.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.core.conditions.base import Condition
from repro.core.conditions.random import AlwaysCondition
from repro.core.log import PollutionLog
from repro.core.polluter import Application, Polluter, _PolluterObs
from repro.core.rng import RandomSource
from repro.errors import PollutionError
from repro.obs.metrics import MetricsRegistry
from repro.streaming.record import Record


class CompositeMode(enum.Enum):
    """How a composite delegates to its children: all in sequence, first
    whose condition fires (mutual exclusion with priority), or one drawn at
    random (mutual exclusion with mixing weights)."""

    ALL = "all"
    FIRST_MATCH = "first_match"
    CHOOSE_ONE = "choose_one"


class CompositePolluter(Polluter):
    """A polluter that delegates to registered child polluters.

    Parameters
    ----------
    children:
        The registered polluters (standard or composite), applied per
        ``mode`` when the composite's own ``condition`` fires.
    condition:
        The shared gate — e.g. Fig. 5's "Time >= 2016-02-27".
    mode:
        Delegation mode, see :class:`CompositeMode`.
    weights:
        Only for ``CHOOSE_ONE``: relative child weights (normalized
        internally); uniform if omitted.
    """

    def __init__(
        self,
        children: Sequence[Polluter],
        condition: Condition | None = None,
        mode: CompositeMode = CompositeMode.ALL,
        weights: Sequence[float] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or "composite")
        if not children:
            raise PollutionError("composite polluter needs at least one child")
        names = [c.name for c in children]
        if len(set(names)) != len(names):
            raise PollutionError(
                f"composite {self.name!r}: duplicate child names {names}; "
                "give children distinct names for stable seeding"
            )
        self.children = list(children)
        self.condition = condition or AlwaysCondition()
        self.mode = mode
        if weights is not None:
            if mode is not CompositeMode.CHOOSE_ONE:
                raise PollutionError("weights are only valid with CHOOSE_ONE")
            if len(weights) != len(children):
                raise PollutionError(
                    f"got {len(weights)} weights for {len(children)} children"
                )
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise PollutionError("weights must be non-negative with positive sum")
            total = float(sum(weights))
            self.weights: tuple[float, ...] | None = tuple(w / total for w in weights)
        else:
            self.weights = None
        self._choice_rng: np.random.Generator | None = None

    def bind(self, source: RandomSource, scope: str = "") -> None:
        self._qualified_name = f"{scope}/{self.name}" if scope else self.name
        self.condition.bind_rng(source.child(self._qualified_name, stream=0))
        self._choice_rng = source.child(self._qualified_name, stream=2)
        for child in self.children:
            child.bind(source, scope=self._qualified_name)

    def bind_metrics(self, registry: MetricsRegistry | None) -> None:
        """Meter the composite's own gate, then every child recursively."""
        if registry is None or not registry.enabled:
            self._obs = None
        else:
            self._obs = _PolluterObs(registry, self._qualified_name, None)
        for child in self.children:
            child.bind_metrics(registry)

    def flush_metrics(self) -> None:
        # The composite's own gate writes its counters directly; only the
        # children buffer.
        for child in self.children:
            child.flush_metrics()

    def reset(self) -> None:
        self.condition.reset()
        for child in self.children:
            child.reset()

    def snapshot_state(self):
        condition = self.condition.snapshot_state()
        choice = (
            self._choice_rng.bit_generator.state
            if self._choice_rng is not None
            else None
        )
        children = {c.name: c.snapshot_state() for c in self.children}
        if condition is None and choice is None and not any(children.values()):
            return None
        return {"condition": condition, "choice_rng": choice, "children": children}

    def restore_state(self, state) -> None:
        if state is None:
            return
        self.condition.restore_state(state["condition"])
        if state["choice_rng"] is not None:
            if self._choice_rng is None:
                raise PollutionError(
                    f"composite {self.name!r}: cannot restore choice RNG state "
                    "before bind()"
                )
            self._choice_rng.bit_generator.state = state["choice_rng"]
        by_name = state["children"]
        for child in self.children:
            child.restore_state(by_name.get(child.name))

    # -- application ----------------------------------------------------------

    def apply(self, record: Record, tau: int, log: PollutionLog | None = None) -> Application:
        obs = self._obs
        if not self.condition.evaluate(record, tau):
            if obs is not None:
                obs.misses.value += 1
            return Application([record], fired=False)
        if obs is not None:
            obs.hits.value += 1
        if self.mode is CompositeMode.ALL:
            outcome = self._apply_all(record, tau, log)
        elif self.mode is CompositeMode.FIRST_MATCH:
            outcome = self._apply_first_match(record, tau, log)
        else:
            outcome = self._apply_choose_one(record, tau, log)
        if obs is not None and outcome.fired:
            obs.activations.value += 1
        return outcome

    def _apply_all(self, record: Record, tau: int, log: PollutionLog | None) -> Application:
        records = [record]
        fired_any = False
        for child in self.children:
            next_records: list[Record] = []
            for r in records:
                outcome = child.apply(r, tau, log)
                fired_any = fired_any or outcome.fired
                next_records.extend(outcome.records)
            records = next_records
            if not records:
                break  # tuple dropped; nothing left for later children
        return Application(records, fired=fired_any)

    def _apply_first_match(self, record: Record, tau: int, log: PollutionLog | None) -> Application:
        for child in self.children:
            outcome = child.apply(record, tau, log)
            if outcome.fired:
                return Application(outcome.records, fired=True)
            # Not fired => records == [record] untouched; try the next child.
        return Application([record], fired=False)

    def _apply_choose_one(self, record: Record, tau: int, log: PollutionLog | None) -> Application:
        if self._choice_rng is None:
            raise PollutionError(
                f"composite {self.name!r} not bound; attach it to a pipeline first"
            )
        idx = int(self._choice_rng.choice(len(self.children), p=self.weights))
        outcome = self.children[idx].apply(record, tau, log)
        return Application(outcome.records, fired=outcome.fired)

    # -- ground truth -------------------------------------------------------------

    def expected_probability(self, record: Record, tau: int) -> float:
        """Probability that *at least one* child fires on this tuple."""
        gate = self.condition.expected_probability(record, tau)
        if gate == 0.0:
            return 0.0
        if self.mode is CompositeMode.CHOOSE_ONE:
            weights = self.weights or [1.0 / len(self.children)] * len(self.children)
            p = sum(
                w * c.expected_probability(record, tau)
                for w, c in zip(weights, self.children)
            )
            return gate * p
        # ALL / FIRST_MATCH: fires unless every child's condition misses.
        p_none = 1.0
        for child in self.children:
            p_none *= 1.0 - child.expected_probability(record, tau)
        return gate * (1.0 - p_none)

    def child_gate_probability(self, record: Record, tau: int) -> float:
        """Probability that delegation reaches the children at all.

        Experiments multiply this with a specific child's own expected
        probability to get that child's marginal firing rate (Table 1's
        "Expected after Pollution" column).
        """
        return self.condition.expected_probability(record, tau)

    def describe(self) -> str:
        inner = "; ".join(c.describe() for c in self.children)
        return (
            f"{self.name}[{self.mode.value}]: if {self.condition.describe()} "
            f"then ({inner})"
        )
