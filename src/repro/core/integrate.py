"""Step 3 of Algorithm 1: integrate and output pipeline results.

Line 10 unions the ``m`` polluted sub-streams — each tuple keeps its ID and
gains its sub-stream identifier, while the replicated event time ``tau`` is
conceptually dropped (we retain it on the record's metadata for ground-truth
tooling; serialization sinks never write it). Line 11 sorts the union by the
(possibly polluted) timestamp, which is what turns a rewritten timestamp
into an actually *out-of-position* tuple downstream.

The sort is stable with a deterministic tie-break (timestamp, then original
event time, then record id, then sub-stream), so integration output is fully
reproducible. Complexity is the paper's O(n*m*log(n*m)).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import PollutionError
from repro.streaming.operators import Collector, ProcessFunction, ProcessContext
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.watermarks import Watermark


def timestamp_sort_key(schema: Schema):
    """The integration sort key for one schema, as a reusable callable.

    Shared between :func:`sort_by_timestamp` and the k-way shard merge in
    :mod:`repro.parallel` — both orderings must agree exactly for sharded
    output to be byte-identical to a sequential run. The key is total over
    distinct records (``record_id`` disambiguates ties), so a per-shard sort
    followed by a stable k-way merge equals one global stable sort.
    """
    ts_attr = schema.timestamp_attribute

    def key(r: Record):
        ts = r.get(ts_attr)
        return (
            ts is None,
            ts if ts is not None else 0,
            r.event_time if r.event_time is not None else 0,
            r.record_id if r.record_id is not None else 0,
            r.substream if r.substream is not None else 0,
        )

    return key


def sort_by_timestamp(records: Iterable[Record], schema: Schema) -> list[Record]:
    """Order records by their (possibly polluted) timestamp attribute.

    Tuples whose timestamp was polluted to ``None`` sort to the stream's
    end — they have no defined position, and placing them last keeps them
    discoverable rather than silently interleaved.
    """
    return sorted(records, key=timestamp_sort_key(schema))


def integrate(substreams: Sequence[list[Record]], schema: Schema) -> list[Record]:
    """Union ``m`` polluted sub-streams and sort by timestamp (lines 10-11)."""
    if not substreams:
        raise PollutionError("integration needs at least one sub-stream")
    merged: list[Record] = []
    for index, records in enumerate(substreams):
        for record in records:
            if record.substream is None:
                record.substream = index
            merged.append(record)
    return sort_by_timestamp(merged, schema)


class EventTimeSorter(ProcessFunction):
    """Streaming re-sorter: buffers records, emits them in timestamp order.

    The streaming-engine equivalent of line 11 for unbounded execution:
    records are held until the watermark passes their (polluted) timestamp,
    then released in order. With the end-of-stream watermark this flushes
    everything, so bounded runs produce exactly ``sort_by_timestamp``'s
    output.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._buffer: list[Record] = []
        self._emitted_up_to: int | None = None

    def process(self, record: Record, ctx: ProcessContext, out: Collector) -> None:
        self._buffer.append(record)

    def snapshot_state(self):
        if not self._buffer and self._emitted_up_to is None:
            return None
        return {
            "buffer": [r.copy() for r in self._buffer],
            "emitted_up_to": self._emitted_up_to,
        }

    def restore_state(self, state) -> None:
        if state is None:
            return
        self._buffer = [r.copy() for r in state["buffer"]]
        self._emitted_up_to = state["emitted_up_to"]

    def on_watermark(self, watermark: Watermark, out: Collector) -> None:
        ts_attr = self._schema.timestamp_attribute
        ready = [
            r for r in self._buffer
            if r.get(ts_attr) is not None and r.get(ts_attr) <= watermark.timestamp
        ]
        if watermark.timestamp >= Watermark.max().timestamp:
            ready = list(self._buffer)
        if not ready:
            return
        ready_ids = {id(r) for r in ready}
        self._buffer = [r for r in self._buffer if id(r) not in ready_ids]
        for record in sort_by_timestamp(ready, self._schema):
            out.collect(record)
