"""Analytic ground truth: expected pollution counts.

Experiment 1 compares the number of errors a DQ tool *measures* against the
number Icewafl is *expected* to inject (Fig. 4's blue series, Table 1's
expectation column). For stochastic conditions the expectation is the sum
over tuples of the marginal firing probability; for deterministic gates it
is an exact count. These helpers walk a pipeline (including nested
composites) and compute those sums per polluter and per hour of day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.composite import CompositeMode, CompositePolluter
from repro.core.pipeline import PollutionPipeline
from repro.core.polluter import Polluter, StandardPolluter
from repro.streaming.record import Record
from repro.streaming.time import hour_of_day_int


@dataclass
class ExpectedCounts:
    """Expected firing counts for one pollution run."""

    total: dict[str, float] = field(default_factory=dict)
    by_hour: dict[str, dict[int, float]] = field(default_factory=dict)

    def for_polluter(self, qualified_name: str) -> float:
        return self.total.get(qualified_name, 0.0)

    def hours_for_polluter(self, qualified_name: str) -> dict[int, float]:
        return self.by_hour.get(qualified_name, {h: 0.0 for h in range(24)})


def _walk(
    polluter: Polluter,
    gate: float,
    record: Record,
    tau: int,
    out: ExpectedCounts,
    scope: str,
) -> None:
    """Accumulate marginal firing probability for one tuple.

    ``gate`` is the probability that delegation reaches this polluter at all
    (the product of enclosing composites' condition probabilities). For
    CHOOSE_ONE composites the per-child selection probability multiplies in.
    Marginals assume conditions draw independently per tuple, which holds
    for the built-in stochastic conditions (separate named streams).
    ``scope`` rebuilds the pipeline-qualified names, so analysis works on
    bound and unbound pipelines alike.
    """
    name = f"{scope}/{polluter.name}" if scope else polluter.name
    if isinstance(polluter, StandardPolluter):
        p = gate * polluter.condition.expected_probability(record, tau)
        if p > 0.0:
            out.total[name] = out.total.get(name, 0.0) + p
            hours = out.by_hour.setdefault(name, {h: 0.0 for h in range(24)})
            hours[hour_of_day_int(tau)] += p
        return
    if isinstance(polluter, CompositePolluter):
        own = gate * polluter.condition.expected_probability(record, tau)
        if own == 0.0:
            return
        if polluter.mode is CompositeMode.CHOOSE_ONE:
            weights = polluter.weights or [1.0 / len(polluter.children)] * len(
                polluter.children
            )
            for w, child in zip(weights, polluter.children):
                _walk(child, own * w, record, tau, out, name)
        else:
            # ALL: every child sees the tuple. FIRST_MATCH: upper bound —
            # each child sees the tuple unless an earlier sibling fired;
            # with deterministic disjoint conditions this is exact.
            reach = own
            for child in polluter.children:
                _walk(child, reach, record, tau, out, name)
                if polluter.mode is CompositeMode.FIRST_MATCH:
                    miss = 1.0 - child.expected_probability(record, tau)
                    reach *= miss
        return
    raise TypeError(f"unknown polluter type: {type(polluter).__name__}")


def expected_counts(
    records: Iterable[Record],
    pipeline: PollutionPipeline | Sequence[Polluter],
) -> ExpectedCounts:
    """Expected firing counts of every (nested) polluter over ``records``.

    Records must be prepared (event time set). The estimate treats polluters
    as independent and ignores value changes made by earlier polluters in
    the chain (exact when conditions do not read attributes that earlier
    polluters modify — true for all of the paper's scenarios).
    """
    if isinstance(pipeline, PollutionPipeline):
        polluters = list(pipeline)
        scope = pipeline.name
    else:
        polluters = list(pipeline)
        scope = ""
    out = ExpectedCounts()
    for record in records:
        tau = record.event_time
        if tau is None:
            raise ValueError("records must be prepared (event_time set)")
        for polluter in polluters:
            _walk(polluter, 1.0, record, tau, out, scope)
    return out
