"""Icewafl's pollution model — the paper's primary contribution.

A *polluter* ``p = <e, c, A_p>`` (paper Eq. 2) couples an error function
``e``, a condition ``c``, and a set of target attributes ``A_p``; applied to
a tuple ``t`` with event time ``tau`` it returns ``e(t, A_p, tau)`` when
``c(t, tau)`` holds and ``t`` unchanged otherwise. Polluters compose into
*pollution pipelines* (§2.2.1); *composite polluters* nest pipelines under
shared conditions; *integration scenarios* (§2.2.2) split a stream into
overlapping sub-streams, pollute each with its own pipeline, and merge the
results sorted by timestamp (Algorithm 1).

Public entry points:

* :func:`repro.core.runner.pollute` — Algorithm 1 end-to-end,
* :class:`repro.core.pipeline.PollutionPipeline` — compose polluters,
* :class:`repro.core.polluter.StandardPolluter` /
  :class:`repro.core.composite.CompositePolluter` — the two polluter kinds,
* :mod:`repro.core.conditions` and :mod:`repro.core.errors` — the condition
  and error-function catalogues,
* :func:`repro.core.config.pipeline_from_config` — declarative configuration.
"""

from repro.core.composite import CompositeMode, CompositePolluter
from repro.core.dependencies import (
    ErrorHistory,
    FiredRecentlyCondition,
    TrackedPolluter,
    track,
)
from repro.core.keyed_pollution import KeyedPollutionProcessFunction, pollute_keyed
from repro.core.log import PollutionEvent, PollutionLog
from repro.core.pipeline import PollutionPipeline
from repro.core.polluter import Polluter, StandardPolluter
from repro.core.runner import PollutionResult, pollute
from repro.core.config import pipeline_from_config, polluter_from_config

__all__ = [
    "CompositeMode",
    "CompositePolluter",
    "ErrorHistory",
    "FiredRecentlyCondition",
    "KeyedPollutionProcessFunction",
    "Polluter",
    "PollutionEvent",
    "PollutionLog",
    "PollutionPipeline",
    "PollutionResult",
    "StandardPolluter",
    "TrackedPolluter",
    "pipeline_from_config",
    "pollute",
    "pollute_keyed",
    "polluter_from_config",
    "track",
]
