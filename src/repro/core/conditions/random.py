"""Random (MCAR) conditions: errors injected completely at random."""

from __future__ import annotations

from repro.core.conditions.base import Condition
from repro.errors import ConditionError
from repro.streaming.record import Record


class AlwaysCondition(Condition):
    """Fires on every tuple; the default condition of a polluter."""

    def evaluate(self, record: Record, tau: int) -> bool:
        return True

    def describe(self) -> str:
        return "always"


class NeverCondition(Condition):
    """Never fires; useful to disable a polluter in a config without removing it."""

    def evaluate(self, record: Record, tau: int) -> bool:
        return False

    def describe(self) -> str:
        return "never"


class ProbabilityCondition(Condition):
    """Fires independently with fixed probability ``p`` (MCAR).

    The software-update scenario (§3.1.2) uses ``p = 0.2`` for its nested
    BPM-to-null polluter, and the scale scenario (§3.2.1) uses a prior
    ``p = 0.01``.
    """

    stochastic = True

    def __init__(self, p: float) -> None:
        super().__init__()
        if not 0.0 <= p <= 1.0:
            raise ConditionError(f"probability must be in [0, 1], got {p}")
        self.p = p

    def evaluate(self, record: Record, tau: int) -> bool:
        return bool(self.rng.random() < self.p)

    def expected_probability(self, record: Record, tau: int) -> float:
        return self.p

    def describe(self) -> str:
        return f"prob({self.p})"
