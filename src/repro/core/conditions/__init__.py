"""Pollution conditions — the ``c`` in a polluter ``<e, c, A_p>``.

Following Schelter et al.'s error-injection taxonomy (cited in §2.2), a
condition may fire

(i)   completely at random (:class:`ProbabilityCondition` — MCAR),
(ii)  depending on the values to be polluted (:class:`AttributeCondition`
      over an attribute in ``A_p`` — MNAR), or
(iii) depending on values of the tuple that are *not* polluted
      (:class:`AttributeCondition` over any other attribute — MAR).

Icewafl adds **temporal conditions** over the event time ``tau``
(:mod:`repro.core.conditions.temporal`) and **composite conditions** that
conjoin any of the above (:mod:`repro.core.conditions.composite`).
"""

from repro.core.conditions.base import Condition
from repro.core.conditions.composite import AllOf, AnyOf, Not
from repro.core.conditions.markov import BurstCondition
from repro.core.conditions.random import (
    AlwaysCondition,
    NeverCondition,
    ProbabilityCondition,
)
from repro.core.conditions.temporal import (
    AfterCondition,
    BeforeCondition,
    DailyIntervalCondition,
    EveryNthCondition,
    LinearRampCondition,
    PatternProbabilityCondition,
    SinusoidalCondition,
    TimeIntervalCondition,
)
from repro.core.conditions.value import (
    AttributeCondition,
    InSetCondition,
    NullValueCondition,
    PredicateCondition,
    RangeCondition,
)

__all__ = [
    "AfterCondition",
    "AllOf",
    "AlwaysCondition",
    "AnyOf",
    "BurstCondition",
    "AttributeCondition",
    "BeforeCondition",
    "Condition",
    "DailyIntervalCondition",
    "EveryNthCondition",
    "InSetCondition",
    "LinearRampCondition",
    "NeverCondition",
    "Not",
    "NullValueCondition",
    "PatternProbabilityCondition",
    "PredicateCondition",
    "ProbabilityCondition",
    "RangeCondition",
    "SinusoidalCondition",
    "TimeIntervalCondition",
]
