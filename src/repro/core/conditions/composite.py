"""Composite conditions: conjunction, disjunction, negation.

§2.2: "Icewafl supports ... composite conditions that allow to conjoin any
of the aforementioned conditions." The bad-network scenario nests a 20 %
probability condition inside a daily time gate — ``AllOf(DailyInterval(13,
15), Probability(0.2))``.

Expected-probability propagation assumes the children are independent given
the tuple (true for the built-in stochastic conditions, which draw from
separate streams); deterministic children contribute exactly 0 or 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.conditions.base import Condition
from repro.errors import ConditionError
from repro.streaming.record import Record


class _Composite(Condition):
    def __init__(self, *children: Condition) -> None:
        super().__init__()
        if not children:
            raise ConditionError(f"{type(self).__name__} needs at least one child")
        self.children = tuple(children)

    @property
    def stochastic(self) -> bool:  # type: ignore[override]
        return any(c.stochastic for c in self.children)

    def bind_rng(self, rng: np.random.Generator) -> None:
        super().bind_rng(rng)
        for child in self.children:
            child.bind_rng(rng)

    def reset(self) -> None:
        for child in self.children:
            child.reset()

    def _state_snapshot(self):
        states = [c.snapshot_state() for c in self.children]
        return states if any(s is not None for s in states) else None

    def _restore_snapshot(self, state) -> None:
        for child, child_state in zip(self.children, state):
            child.restore_state(child_state)


class AllOf(_Composite):
    """Logical AND: fires iff every child fires.

    Children are evaluated left-to-right with short-circuiting, so a cheap
    deterministic gate placed first avoids burning random draws — and since
    stochastic draws are per-polluter streams, short-circuiting never skews
    sibling polluters.
    """

    def evaluate(self, record: Record, tau: int) -> bool:
        return all(c.evaluate(record, tau) for c in self.children)

    def expected_probability(self, record: Record, tau: int) -> float:
        p = 1.0
        for c in self.children:
            p *= c.expected_probability(record, tau)
            if p == 0.0:
                break
        return p

    def describe(self) -> str:
        return "(" + " and ".join(c.describe() for c in self.children) + ")"


class AnyOf(_Composite):
    """Logical OR: fires iff at least one child fires.

    No short-circuiting: every stochastic child draws on every tuple, so the
    sequence of random numbers each child consumes is independent of its
    siblings' outcomes — reproducibility under config edits again.
    """

    def evaluate(self, record: Record, tau: int) -> bool:
        results = [c.evaluate(record, tau) for c in self.children]
        return any(results)

    def expected_probability(self, record: Record, tau: int) -> float:
        p_none = 1.0
        for c in self.children:
            p_none *= 1.0 - c.expected_probability(record, tau)
        return 1.0 - p_none

    def describe(self) -> str:
        return "(" + " or ".join(c.describe() for c in self.children) + ")"


class Not(Condition):
    """Logical negation of one child condition."""

    def __init__(self, child: Condition) -> None:
        super().__init__()
        self.child = child

    @property
    def stochastic(self) -> bool:  # type: ignore[override]
        return self.child.stochastic

    def bind_rng(self, rng: np.random.Generator) -> None:
        super().bind_rng(rng)
        self.child.bind_rng(rng)

    def reset(self) -> None:
        self.child.reset()

    def _state_snapshot(self):
        return self.child.snapshot_state()

    def _restore_snapshot(self, state) -> None:
        self.child.restore_state(state)

    def evaluate(self, record: Record, tau: int) -> bool:
        return not self.child.evaluate(record, tau)

    def expected_probability(self, record: Record, tau: int) -> float:
        return 1.0 - self.child.expected_probability(record, tau)

    def describe(self) -> str:
        return f"not {self.child.describe()}"
