"""Bursty error conditions: a Gilbert-Elliott two-state Markov model.

Real stream errors rarely arrive independently — a loose cable, a wireless
dead zone, or an overloaded gateway produces *bursts* of bad tuples. The
classic model is Gilbert-Elliott: a hidden two-state Markov chain (GOOD /
BAD) advanced per tuple; errors occur with a low probability in GOOD and a
high probability in BAD.

This implements the paper's future-work direction of "time-dependent states
of the data stream and dependencies between tuple-specific random
variables" (§5, item 1): successive firing decisions are *correlated*
through the hidden state, unlike every other stochastic condition in the
catalogue.
"""

from __future__ import annotations

from repro.core.conditions.base import Condition
from repro.errors import ConditionError
from repro.streaming.record import Record


class BurstCondition(Condition):
    """Gilbert-Elliott bursty firing.

    Parameters
    ----------
    p_enter:
        Probability of transitioning GOOD -> BAD at each tuple.
    p_exit:
        Probability of transitioning BAD -> GOOD at each tuple.
    p_error_good:
        Firing probability while in the GOOD state (usually ~0).
    p_error_bad:
        Firing probability while in the BAD state (usually high).

    The expected burst length is ``1 / p_exit`` tuples; the stationary
    probability of being in BAD is ``p_enter / (p_enter + p_exit)``.
    """

    stochastic = True

    def __init__(
        self,
        p_enter: float = 0.01,
        p_exit: float = 0.2,
        p_error_good: float = 0.0,
        p_error_bad: float = 0.9,
    ) -> None:
        super().__init__()
        for name, p in (
            ("p_enter", p_enter), ("p_exit", p_exit),
            ("p_error_good", p_error_good), ("p_error_bad", p_error_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConditionError(f"{name} must be in [0, 1], got {p}")
        if p_enter + p_exit == 0.0:
            raise ConditionError("p_enter and p_exit cannot both be zero")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.p_error_good = p_error_good
        self.p_error_bad = p_error_bad
        self._in_burst = False

    @property
    def in_burst(self) -> bool:
        return self._in_burst

    @property
    def stationary_bad_probability(self) -> float:
        return self.p_enter / (self.p_enter + self.p_exit)

    @property
    def expected_burst_length(self) -> float:
        return 1.0 / self.p_exit if self.p_exit > 0 else float("inf")

    def evaluate(self, record: Record, tau: int) -> bool:
        # Advance the hidden chain first, then emit under the new state.
        if self._in_burst:
            if self.rng.random() < self.p_exit:
                self._in_burst = False
        else:
            if self.rng.random() < self.p_enter:
                self._in_burst = True
        p = self.p_error_bad if self._in_burst else self.p_error_good
        if p >= 1.0:
            return True
        if p <= 0.0:
            return False
        return bool(self.rng.random() < p)

    def expected_probability(self, record: Record, tau: int) -> float:
        """Stationary marginal firing probability (long-run average)."""
        pi_bad = self.stationary_bad_probability
        return pi_bad * self.p_error_bad + (1 - pi_bad) * self.p_error_good

    def reset(self) -> None:
        self._in_burst = False

    def _state_snapshot(self):
        return self._in_burst or None

    def _restore_snapshot(self, state) -> None:
        self._in_burst = bool(state)

    def describe(self) -> str:
        return (
            f"burst(enter={self.p_enter}, exit={self.p_exit}, "
            f"p_good={self.p_error_good}, p_bad={self.p_error_bad})"
        )
