"""Condition base class.

A condition is evaluated per tuple as ``c(t, tau)`` (paper Eq. 2): it sees
the full record (so it can depend on polluted or unpolluted attributes) and
the event time ``tau`` (so it can be temporal). Stochastic conditions draw
from a generator bound by the owning polluter, keeping all randomness under
the run's named-seed scheme (:mod:`repro.core.rng`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConditionError
from repro.streaming.record import Record


class Condition:
    """Base class for pollution conditions."""

    #: True if the condition draws random numbers (needs a bound generator).
    stochastic: bool = False

    def __init__(self) -> None:
        self._rng: np.random.Generator | None = None

    def bind_rng(self, rng: np.random.Generator) -> None:
        """Attach the random stream this condition draws from."""
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ConditionError(
                f"{type(self).__name__} is stochastic but has no bound RNG; "
                "attach the polluter to a pipeline (or call bind_rng) first"
            )
        return self._rng

    def evaluate(self, record: Record, tau: int) -> bool:
        """True iff the polluter should fire on this tuple."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run state (counters, Markov chains). No-op by default.

        The runner resets every polluter — and through it every condition —
        before each pollution run, so stateful conditions never leak state
        across repetitions.
        """

    def expected_probability(self, record: Record, tau: int) -> float:
        """The marginal firing probability for this tuple (ground truth).

        Deterministic conditions return 0.0 or 1.0. Experiments use this to
        compute the *expected* number of injected errors analytically (the
        blue series of Fig. 4 and the expectation column of Table 1).
        """
        return 1.0 if self.evaluate_deterministic(record, tau) else 0.0

    def evaluate_deterministic(self, record: Record, tau: int) -> bool:
        """Like :meth:`evaluate` for non-stochastic conditions.

        Stochastic conditions override :meth:`expected_probability` instead
        and leave this unimplemented.
        """
        if self.stochastic:
            raise ConditionError(
                f"{type(self).__name__} is stochastic; use expected_probability"
            )
        return self.evaluate(record, tau)

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> dict | None:
        """Serializable mid-stream state for checkpoint/restore.

        Mirrors :meth:`repro.core.errors.base.ErrorFunction.snapshot_state`:
        the bound RNG's bit-generator state plus the subclass's own counters
        or chain state from :meth:`_state_snapshot`.
        """
        state = self._state_snapshot()
        rng_state = self._rng.bit_generator.state if self._rng is not None else None
        if state is None and rng_state is None:
            return None
        return {"state": state, "rng": rng_state}

    def restore_state(self, snapshot: dict | None) -> None:
        if snapshot is None:
            return
        if snapshot.get("rng") is not None:
            if self._rng is None:
                raise ConditionError(
                    f"{type(self).__name__}: cannot restore RNG state before "
                    "bind_rng; bind the pipeline first, then restore"
                )
            self._rng.bit_generator.state = snapshot["rng"]
        if snapshot.get("state") is not None:
            self._restore_snapshot(snapshot["state"])

    def _state_snapshot(self):
        """Subclass hook: per-stream mutable state (``None`` = none)."""
        return None

    def _restore_snapshot(self, state) -> None:
        """Subclass hook: restore what :meth:`_state_snapshot` produced."""

    def describe(self) -> str:
        return type(self).__name__

    # -- composition sugar -------------------------------------------------

    def __and__(self, other: "Condition") -> "Condition":
        from repro.core.conditions.composite import AllOf

        return AllOf(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        from repro.core.conditions.composite import AnyOf

        return AnyOf(self, other)

    def __invert__(self) -> "Condition":
        from repro.core.conditions.composite import Not

        return Not(self)
