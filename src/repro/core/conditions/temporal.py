"""Temporal conditions: firing decisions driven by the event time ``tau``.

These are Icewafl's distinguishing feature over static polluters (Challenge
C1). Two families exist:

* **deterministic time gates** — fire inside an absolute interval
  (:class:`TimeIntervalCondition`), after/before a point
  (:class:`AfterCondition`, :class:`BeforeCondition`), or inside a daily
  time-of-day window (:class:`DailyIntervalCondition`, used by the
  bad-network scenario's "13:00–14:59" gate);
* **time-varying probabilities** — fire with a probability that is a
  function of ``tau``: the sinusoid of Experiment 3.1.1
  (:class:`SinusoidalCondition`), the linear ramp of Eq. 4
  (:class:`LinearRampCondition`), or any change pattern
  (:class:`PatternProbabilityCondition`).
"""

from __future__ import annotations

from repro.core.conditions.base import Condition
from repro.core.patterns import ChangePattern, IncrementalPattern, SinusoidalPattern
from repro.errors import ConditionError
from repro.streaming.record import Record
from repro.streaming.time import in_daily_interval


class AfterCondition(Condition):
    """Fires for all tuples with ``tau >= timestamp``.

    The software-update scenario's top-level gate "Time >= 2016-02-27".
    """

    def __init__(self, timestamp: int) -> None:
        super().__init__()
        self.timestamp = int(timestamp)

    def evaluate(self, record: Record, tau: int) -> bool:
        return tau >= self.timestamp

    def describe(self) -> str:
        return f"tau >= {self.timestamp}"


class BeforeCondition(Condition):
    """Fires for all tuples with ``tau < timestamp``."""

    def __init__(self, timestamp: int) -> None:
        super().__init__()
        self.timestamp = int(timestamp)

    def evaluate(self, record: Record, tau: int) -> bool:
        return tau < self.timestamp

    def describe(self) -> str:
        return f"tau < {self.timestamp}"


class TimeIntervalCondition(Condition):
    """Fires inside the absolute half-open interval ``[start, end)``."""

    def __init__(self, start: int, end: int) -> None:
        super().__init__()
        if end <= start:
            raise ConditionError(f"empty interval [{start}, {end})")
        self.start = int(start)
        self.end = int(end)

    def evaluate(self, record: Record, tau: int) -> bool:
        return self.start <= tau < self.end

    def describe(self) -> str:
        return f"tau in [{self.start}, {self.end})"


class DailyIntervalCondition(Condition):
    """Fires when the time-of-day of ``tau`` is in ``[start_hour, end_hour)``.

    Handles midnight wrap (e.g. ``start_hour=22, end_hour=2``). The
    bad-network scenario uses ``[13, 15)`` — "between 01:00 pm and
    02:59 pm".
    """

    def __init__(self, start_hour: float, end_hour: float) -> None:
        super().__init__()
        for h in (start_hour, end_hour):
            if not 0.0 <= h <= 24.0:
                raise ConditionError(f"hour out of range [0, 24]: {h}")
        self.start_hour = start_hour
        self.end_hour = end_hour

    def evaluate(self, record: Record, tau: int) -> bool:
        return in_daily_interval(tau, self.start_hour, self.end_hour)

    def describe(self) -> str:
        return f"hour(tau) in [{self.start_hour}, {self.end_hour})"


class PatternProbabilityCondition(Condition):
    """Fires with probability ``scale * pattern.intensity(tau)``.

    The general mechanism behind "a static error is applied with an
    increased/decreased probability during a specific time interval"
    (§2.2): any :class:`~repro.core.patterns.ChangePattern` becomes a
    time-varying activation probability.
    """

    stochastic = True

    def __init__(self, pattern: ChangePattern, scale: float = 1.0) -> None:
        super().__init__()
        if not 0.0 <= scale <= 1.0:
            raise ConditionError(f"scale must be in [0, 1], got {scale}")
        self.pattern = pattern
        self.scale = scale

    def probability(self, tau: int) -> float:
        return self.scale * self.pattern(tau)

    def evaluate(self, record: Record, tau: int) -> bool:
        return bool(self.rng.random() < self.probability(tau))

    def expected_probability(self, record: Record, tau: int) -> float:
        return self.probability(tau)

    def describe(self) -> str:
        return f"p(tau) = {self.scale} * {self.pattern.describe()}"


class SinusoidalCondition(PatternProbabilityCondition):
    """Experiment 3.1.1's condition: ``p(t) = A * cos(2*pi*t / T) + B``.

    Defaults reproduce the paper's ``p(t) = 0.25 * cos(pi/12 * t) + 0.25``
    (daily cycle, probability in ``[0, 0.5]``, maximal at midnight).
    """

    def __init__(
        self,
        amplitude: float = 0.25,
        offset: float = 0.25,
        period_hours: float = 24.0,
        phase: float = 0.0,
    ) -> None:
        super().__init__(
            SinusoidalPattern(
                amplitude=amplitude,
                offset=offset,
                period_hours=period_hours,
                phase=phase,
            )
        )


class LinearRampCondition(PatternProbabilityCondition):
    """Equation 4: activation probability grows linearly over the stream life.

    ``p(activation | tau_i) = hours(tau_i - tau_0) / hours(tau_n - tau_0)``,
    optionally scaled. ``tau_0``/``tau_n`` are the first and last event
    times of the stream being polluted.
    """

    def __init__(self, tau0: int, taun: int, scale: float = 1.0) -> None:
        super().__init__(IncrementalPattern(tau0, taun), scale=scale)
        self.tau0 = int(tau0)
        self.taun = int(taun)

    def describe(self) -> str:
        return (
            f"p(tau) = {self.scale} * hours(tau - {self.tau0}) / "
            f"hours({self.taun} - {self.tau0})"
        )


class EveryNthCondition(Condition):
    """Fires on every ``n``-th tuple the condition sees (deterministic).

    A convenience for building regular error grids in tests and examples —
    e.g. pollute every 4th measurement.
    """

    def __init__(self, n: int, offset: int = 0) -> None:
        super().__init__()
        if n < 1:
            raise ConditionError(f"n must be >= 1, got {n}")
        self.n = n
        self.offset = offset % n
        self._count = 0

    def evaluate(self, record: Record, tau: int) -> bool:
        fire = (self._count % self.n) == self.offset
        self._count += 1
        return fire

    def evaluate_deterministic(self, record: Record, tau: int) -> bool:
        # Stateful but not random: evaluating consumes one tick.
        return self.evaluate(record, tau)

    def reset(self) -> None:
        self._count = 0

    def _state_snapshot(self):
        return self._count or None

    def _restore_snapshot(self, state) -> None:
        self._count = state

    def describe(self) -> str:
        return f"every {self.n}th (offset {self.offset})"
