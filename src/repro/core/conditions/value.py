"""Value-dependent conditions (MAR / MNAR).

Whether a value-dependent condition is MNAR ("depending on the values to be
polluted") or MAR ("depending on the values of the input tuple that are not
to be polluted") is determined by whether its attribute belongs to the
polluter's target set ``A_p`` — the condition mechanics are identical. The
software-update scenario's ``BPM > 100`` gate (Fig. 5) is an
:class:`AttributeCondition` with operator ``>``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Collection

from repro.core.conditions.base import Condition
from repro.errors import ConditionError
from repro.streaming.record import Record

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class AttributeCondition(Condition):
    """Compares one attribute's value against a constant.

    ``AttributeCondition("BPM", ">", 100)`` fires on tuples whose BPM
    exceeds 100. ``None`` values never satisfy a comparison (they are
    *absence* of a value, not a small one).
    """

    def __init__(self, attribute: str, op: str, value: Any) -> None:
        super().__init__()
        if op not in _OPERATORS:
            raise ConditionError(
                f"unknown operator {op!r}; expected one of {sorted(_OPERATORS)}"
            )
        self.attribute = attribute
        self.op = op
        self.value = value
        self._fn = _OPERATORS[op]

    def evaluate(self, record: Record, tau: int) -> bool:
        current = record.get(self.attribute)
        if current is None:
            return False
        try:
            return bool(self._fn(current, self.value))
        except TypeError as exc:
            raise ConditionError(
                f"cannot compare {self.attribute}={current!r} {self.op} {self.value!r}"
            ) from exc

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


class NullValueCondition(Condition):
    """Fires when an attribute is ``None`` (or NaN for floats)."""

    def __init__(self, attribute: str, treat_nan_as_null: bool = True) -> None:
        super().__init__()
        self.attribute = attribute
        self._nan_is_null = treat_nan_as_null

    def evaluate(self, record: Record, tau: int) -> bool:
        value = record.get(self.attribute)
        if value is None:
            return True
        if self._nan_is_null and isinstance(value, float) and value != value:
            return True
        return False

    def describe(self) -> str:
        return f"{self.attribute} is null"


class InSetCondition(Condition):
    """Fires when an attribute's value belongs to a finite set."""

    def __init__(self, attribute: str, values: Collection[Any]) -> None:
        super().__init__()
        if not values:
            raise ConditionError("InSetCondition needs a non-empty value set")
        self.attribute = attribute
        self.values = frozenset(values)

    def evaluate(self, record: Record, tau: int) -> bool:
        return record.get(self.attribute) in self.values

    def describe(self) -> str:
        return f"{self.attribute} in {sorted(map(repr, self.values))}"


class RangeCondition(Condition):
    """Fires when ``low <= value <= high`` (either bound optional)."""

    def __init__(
        self, attribute: str, low: float | None = None, high: float | None = None
    ) -> None:
        super().__init__()
        if low is None and high is None:
            raise ConditionError("RangeCondition needs at least one bound")
        if low is not None and high is not None and low > high:
            raise ConditionError(f"empty range [{low}, {high}]")
        self.attribute = attribute
        self.low = low
        self.high = high

    def evaluate(self, record: Record, tau: int) -> bool:
        value = record.get(self.attribute)
        if value is None or not isinstance(value, (int, float)) or value != value:
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def describe(self) -> str:
        return f"{self.attribute} in [{self.low}, {self.high}]"


class PredicateCondition(Condition):
    """Escape hatch: an arbitrary user predicate over ``(record, tau)``.

    Expert users model conditions the built-ins cannot express; the
    predicate must be deterministic (use :class:`ProbabilityCondition`
    composition for randomness) so expected error counts stay computable.
    """

    def __init__(self, fn: Callable[[Record, int], bool], name: str = "predicate") -> None:
        super().__init__()
        self._fn = fn
        self._name = name

    def evaluate(self, record: Record, tau: int) -> bool:
        return bool(self._fn(record, tau))

    def describe(self) -> str:
        return f"predicate({self._name})"
