"""Static string/category error functions.

Cover Figure 3's "Incorrect Category" example plus the classic
string-corruption repertoire of static polluters (BART, GouDa, Jenga):
typos, case errors, truncation, and whitespace padding.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors.base import ErrorFunction, ErrorOutput
from repro.errors import ErrorFunctionError
from repro.streaming.record import Record


def _require_string(record: Record, attribute: str) -> str | None:
    value = record.get(attribute)
    if value is None:
        return None
    if not isinstance(value, str):
        raise ErrorFunctionError(
            f"attribute {attribute!r} holds non-string value {value!r}"
        )
    return value


class IncorrectCategory(ErrorFunction):
    """Replaces a categorical value with a *different* one from the domain.

    The replacement is drawn uniformly from the domain minus the current
    value, so the result is always an actual error (never a no-op), matching
    Fig. 3's "Incorrect Category".
    """

    stochastic = True

    def __init__(self, domain: Sequence[str]) -> None:
        super().__init__()
        if len(set(domain)) < 2:
            raise ErrorFunctionError(
                "incorrect-category needs a domain with >= 2 distinct values"
            )
        self.domain = tuple(dict.fromkeys(domain))  # dedupe, keep order

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = _require_string(record, name)
            if value is None:
                continue
            candidates = [c for c in self.domain if c != value]
            record[name] = candidates[int(self.rng.integers(len(candidates)))]
        return record

    def describe(self) -> str:
        return f"incorrect_category(domain={list(self.domain)})"


class Typo(ErrorFunction):
    """Injects keyboard-style typos: swap, delete, insert, or replace a char.

    ``n_errors`` independent edits are applied; ``intensity`` scales the
    edit count (ceil), so a derived temporal typo error corrupts more
    heavily over time.
    """

    stochastic = True
    _ALPHABET = "abcdefghijklmnopqrstuvwxyz"

    def __init__(self, n_errors: int = 1) -> None:
        super().__init__()
        if n_errors < 1:
            raise ErrorFunctionError(f"n_errors must be >= 1, got {n_errors}")
        self.n_errors = n_errors

    def _one_edit(self, text: str) -> str:
        if not text:
            return text
        kind = int(self.rng.integers(4))
        pos = int(self.rng.integers(len(text)))
        if kind == 0 and len(text) >= 2:  # swap adjacent
            pos = min(pos, len(text) - 2)
            return text[:pos] + text[pos + 1] + text[pos] + text[pos + 2:]
        if kind == 1 and len(text) >= 2:  # delete
            return text[:pos] + text[pos + 1:]
        if kind == 2:  # insert
            ch = self._ALPHABET[int(self.rng.integers(len(self._ALPHABET)))]
            return text[:pos] + ch + text[pos:]
        ch = self._ALPHABET[int(self.rng.integers(len(self._ALPHABET)))]  # replace
        return text[:pos] + ch + text[pos + 1:]

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        edits = max(1, round(self.n_errors * intensity))
        for name in attributes:
            value = _require_string(record, name)
            if value is None:
                continue
            for _ in range(edits):
                value = self._one_edit(value)
            record[name] = value
        return record

    def describe(self) -> str:
        return f"typo(n={self.n_errors})"


class CaseError(ErrorFunction):
    """Corrupts letter casing: upper, lower, or random per character."""

    stochastic = True

    def __init__(self, mode: str = "random") -> None:
        super().__init__()
        if mode not in ("upper", "lower", "random"):
            raise ErrorFunctionError(f"mode must be upper/lower/random, got {mode!r}")
        self.mode = mode

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = _require_string(record, name)
            if value is None:
                continue
            if self.mode == "upper":
                record[name] = value.upper()
            elif self.mode == "lower":
                record[name] = value.lower()
            else:
                record[name] = "".join(
                    c.upper() if self.rng.random() < 0.5 else c.lower() for c in value
                )
        return record

    def describe(self) -> str:
        return f"case({self.mode})"


class Truncate(ErrorFunction):
    """Keeps only the first ``keep`` characters (field-length overflow)."""

    def __init__(self, keep: int) -> None:
        super().__init__()
        if keep < 0:
            raise ErrorFunctionError(f"keep must be >= 0, got {keep}")
        self.keep = keep

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = _require_string(record, name)
            if value is None:
                continue
            record[name] = value[: self.keep]
        return record

    def describe(self) -> str:
        return f"truncate(keep={self.keep})"


class WhitespacePadding(ErrorFunction):
    """Adds leading/trailing whitespace (a classic export artifact)."""

    stochastic = True

    def __init__(self, max_spaces: int = 3) -> None:
        super().__init__()
        if max_spaces < 1:
            raise ErrorFunctionError(f"max_spaces must be >= 1, got {max_spaces}")
        self.max_spaces = max_spaces

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = _require_string(record, name)
            if value is None:
                continue
            left = int(self.rng.integers(self.max_spaces + 1))
            right = int(self.rng.integers(self.max_spaces + 1))
            if left == 0 and right == 0:
                left = 1
            record[name] = " " * left + value + " " * right
        return record

    def describe(self) -> str:
        return f"whitespace(max={self.max_spaces})"
