"""Native temporal error functions — temporal by definition (Fig. 3).

* :class:`DelayTuple` — shifts the tuple's *timestamp attribute* forward,
  simulating late arrival (e.g. a bad network connection, §3.1.3). The
  replicated event time ``tau`` is untouched, so pollution conditions keep
  seeing the true time; the output stream, sorted by the polluted
  timestamp, shows the tuple out of its original position.
* :class:`FrozenValue` — repeats the last observed value ("stuck-at"
  sensor); keeps per-attribute memory across tuples.
* :class:`TimestampJitter` — perturbs the timestamp by bounded random
  jitter (clock skew / sync errors).
* :class:`DropTuple` — removes the tuple from the stream entirely.
* :class:`DuplicateTuple` — re-emits the tuple ``n`` extra times, optionally
  spacing the copies by a timestamp step (retransmission artifacts; merged
  sub-streams turn these into fuzzy duplicates).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors.base import ErrorFunction, ErrorOutput
from repro.errors import ErrorFunctionError
from repro.streaming.record import Record
from repro.streaming.time import Duration


class DelayTuple(ErrorFunction):
    """Delays a tuple by rewriting its timestamp attribute.

    Parameters
    ----------
    delay:
        How far the tuple arrives late. §3.1.3 uses one hour.
    timestamp_attribute:
        Which attribute carries the output timestamp; the pollution runner
        fills this in from the schema if left ``None``.
    """

    native_temporal = True

    def __init__(self, delay: Duration, timestamp_attribute: str | None = None) -> None:
        super().__init__()
        if delay.seconds <= 0:
            raise ErrorFunctionError("delay must be positive")
        self.delay = delay
        self.timestamp_attribute = timestamp_attribute

    def _ts_attr(self, attributes: Sequence[str]) -> str:
        if self.timestamp_attribute is not None:
            return self.timestamp_attribute
        if len(attributes) != 1:
            raise ErrorFunctionError(
                "DelayTuple needs an explicit timestamp_attribute when A_p "
                f"is not a single attribute (got {list(attributes)})"
            )
        return attributes[0]

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        name = self._ts_attr(attributes)
        current = record.get(name)
        if current is None:
            return record
        record[name] = int(current) + int(self.delay.seconds * intensity)
        return record

    def target_attributes(self, attributes: Sequence[str]) -> tuple[str, ...]:
        if self.timestamp_attribute is not None:
            return (self.timestamp_attribute,)
        return tuple(attributes)

    def describe(self) -> str:
        return f"delay({self.delay.seconds}s)"


class FrozenValue(ErrorFunction):
    """Repeats the last seen value per attribute (a stuck sensor).

    On the first tuple it fires for, there is no history yet, so the value
    freezes *from then on*: the current value is recorded and subsequent
    firings replay it. Call :meth:`reset` (the runner does) between runs.

    When used inside a keyed/partitioned scenario, instantiate one polluter
    per sub-stream — memory is per instance, matching the per-sub-pipeline
    error independence of §2.2.2.
    """

    native_temporal = True

    def __init__(self) -> None:
        super().__init__()
        self._memory: dict[str, object] = {}

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            if name in self._memory:
                record[name] = self._memory[name]
            else:
                self._memory[name] = record.get(name)
        return record

    def reset(self) -> None:
        self._memory = {}

    def _state_snapshot(self):
        return dict(self._memory)

    def _restore_snapshot(self, state) -> None:
        self._memory = dict(state)

    def describe(self) -> str:
        return "frozen_value"


class TimestampJitter(ErrorFunction):
    """Adds uniform jitter in ``[-max_jitter, +max_jitter]`` to the timestamp.

    Fig. 3's "Timestamp Error": clocks drift both ways, unlike
    :class:`DelayTuple` which only moves forward.
    """

    native_temporal = True
    stochastic = True

    def __init__(self, max_jitter: Duration, timestamp_attribute: str | None = None) -> None:
        super().__init__()
        if max_jitter.seconds <= 0:
            raise ErrorFunctionError("max_jitter must be positive")
        self.max_jitter = max_jitter
        self.timestamp_attribute = timestamp_attribute

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        name = self.timestamp_attribute or attributes[0]
        current = record.get(name)
        if current is None:
            return record
        bound = int(self.max_jitter.seconds * intensity)
        jitter = int(self.rng.integers(-bound, bound + 1))
        record[name] = int(current) + jitter
        return record

    def target_attributes(self, attributes: Sequence[str]) -> tuple[str, ...]:
        if self.timestamp_attribute is not None:
            return (self.timestamp_attribute,)
        return tuple(attributes)

    def describe(self) -> str:
        return f"timestamp_jitter(±{self.max_jitter.seconds}s)"


class DropTuple(ErrorFunction):
    """Removes the tuple from the polluted stream (message loss)."""

    native_temporal = True

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        return None

    def describe(self) -> str:
        return "drop"


class DuplicateTuple(ErrorFunction):
    """Emits ``copies`` extra copies of the tuple.

    Each copy's timestamp is advanced by ``spacing`` (0 = exact duplicates).
    All copies keep the original ``record_id``, so ground-truth matching
    identifies them as duplicates of one clean tuple.
    """

    native_temporal = True

    def __init__(self, copies: int = 1, spacing: Duration | None = None,
                 timestamp_attribute: str | None = None) -> None:
        super().__init__()
        if copies < 1:
            raise ErrorFunctionError(f"copies must be >= 1, got {copies}")
        self.copies = copies
        self.spacing = spacing or Duration.of_seconds(0)
        self.timestamp_attribute = timestamp_attribute

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        out = [record]
        ts_attr = self.timestamp_attribute
        for i in range(1, self.copies + 1):
            dup = record.copy()
            if ts_attr is not None and self.spacing.seconds and dup.get(ts_attr) is not None:
                dup[ts_attr] = int(dup[ts_attr]) + i * self.spacing.seconds
            out.append(dup)
        return out

    def describe(self) -> str:
        return f"duplicate(copies={self.copies}, spacing={self.spacing.seconds}s)"
