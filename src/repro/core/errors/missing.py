"""Missing-value and constant-replacement error functions.

"Missing Value" is one of Figure 3's canonical static error examples;
Experiment 3.1.1 injects nulls into the wearable stream's ``Distance``
attribute, and the software-update scenario sets ``BPM`` to 0 and to null.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.errors.base import ErrorFunction, ErrorOutput
from repro.streaming.record import Record


class SetToNull(ErrorFunction):
    """Replaces the value with ``None`` (a missing value)."""

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            record[name] = None
        return record

    def describe(self) -> str:
        return "set_null"


class SetToNaN(ErrorFunction):
    """Replaces the value with ``float('nan')``.

    Distinct from :class:`SetToNull`: a NaN is a *present but unusable*
    float, which some DQ tools and models treat differently from absence.
    """

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            record[name] = math.nan
        return record

    def describe(self) -> str:
        return "set_nan"


class SetToConstant(ErrorFunction):
    """Replaces the value with a fixed constant.

    The software-update scenario's first BPM polluter is
    ``SetToConstant(0)`` — a disguised missing value that null checks miss.
    """

    def __init__(self, value: Any) -> None:
        super().__init__()
        self.value = value

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            record[name] = self.value
        return record

    def describe(self) -> str:
        return f"set_constant({self.value!r})"


class SetToDefault(ErrorFunction):
    """Replaces the value with a per-attribute default.

    Models systems that silently substitute configured defaults when a
    reading is unavailable — each attribute can carry its own default.
    """

    def __init__(self, defaults: dict[str, Any]) -> None:
        super().__init__()
        self.defaults = dict(defaults)

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            if name in self.defaults:
                record[name] = self.defaults[name]
        return record

    def describe(self) -> str:
        return f"set_default({self.defaults!r})"
