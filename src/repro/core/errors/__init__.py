"""Error functions — the ``e`` in a polluter ``<e, c, A_p>``.

An error function ``e : dom(A) x 2^A x T -> dom(A)`` transforms a tuple
given target attributes and the event time (paper §2.2). The catalogue
mirrors Figure 3:

* **static** errors (event-time independent):
  :mod:`~repro.core.errors.static_numeric` (noise, scaling, precision, unit
  change, outliers, ...), :mod:`~repro.core.errors.static_string` (typos,
  incorrect category, casing, ...), :mod:`~repro.core.errors.missing`
  (nulls, NaNs, defaults);
* **native temporal** errors (temporal by definition):
  :mod:`~repro.core.errors.native_temporal` (delayed tuple, frozen value,
  timestamp error, dropped/duplicated tuple);
* **derived temporal** errors (static error x change pattern):
  :mod:`~repro.core.errors.derived`;
* **stateful** errors keyed on stream history (the paper's future-work
  direction, implemented here as an extension):
  :mod:`~repro.core.errors.stateful`.
"""

from repro.core.errors.base import ErrorFunction
from repro.core.errors.derived import DerivedTemporalError, RampedMultiplicativeNoise
from repro.core.errors.missing import SetToConstant, SetToDefault, SetToNaN, SetToNull
from repro.core.errors.native_temporal import (
    DelayTuple,
    DropTuple,
    DuplicateTuple,
    FrozenValue,
    TimestampJitter,
)
from repro.core.errors.static_numeric import (
    GaussianNoise,
    Offset,
    OutlierSpike,
    RoundToPrecision,
    ScaleByFactor,
    SignFlip,
    SwapAttributes,
    UniformNoise,
    UnitConversion,
)
from repro.core.errors.static_string import (
    CaseError,
    IncorrectCategory,
    Truncate,
    Typo,
    WhitespacePadding,
)
from repro.core.errors.stateful import CumulativeDrift, SwapWithPrevious

__all__ = [
    "CaseError",
    "CumulativeDrift",
    "DelayTuple",
    "DerivedTemporalError",
    "DropTuple",
    "DuplicateTuple",
    "ErrorFunction",
    "FrozenValue",
    "GaussianNoise",
    "IncorrectCategory",
    "Offset",
    "OutlierSpike",
    "RampedMultiplicativeNoise",
    "RoundToPrecision",
    "ScaleByFactor",
    "SetToConstant",
    "SetToDefault",
    "SetToNaN",
    "SetToNull",
    "SignFlip",
    "SwapAttributes",
    "SwapWithPrevious",
    "TimestampJitter",
    "Truncate",
    "Typo",
    "UniformNoise",
    "UnitConversion",
    "WhitespacePadding",
]
