"""History-dependent error functions (the paper's future-work extension).

§5 item (1): "modeling more sophisticated dependency patterns requires
knowledge about the data stream's history and modeling of arbitrary
relationships between past events. To address this, we plan to extend our
model to incorporate time-dependent states of the data stream."

These error functions carry explicit state across tuples — beyond
:class:`~repro.core.errors.native_temporal.FrozenValue`'s single-value
memory — implementing that planned extension:

* :class:`CumulativeDrift` — sensor drift that accumulates per firing (a
  calibration error that worsens with use);
* :class:`SwapWithPrevious` — swaps the target value with the previous
  tuple's value (an inter-tuple dependency: two adjacent tuples are wrong
  *together*).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors.base import ErrorFunction, ErrorOutput, require_numeric
from repro.core.errors.static_numeric import _preserve_int
from repro.errors import ErrorFunctionError
from repro.streaming.record import Record


class CumulativeDrift(ErrorFunction):
    """Adds a bias that grows by ``step`` every time the error fires.

    The first firing adds ``step``, the second ``2 * step``, and so on —
    the classic picture of a sensor drifting further out of calibration
    with every reading. ``intensity`` scales the per-firing step.
    """

    def __init__(self, step: float) -> None:
        super().__init__()
        if step == 0:
            raise ErrorFunctionError("drift step must be non-zero")
        self.step = step
        self._accumulated: dict[str, float] = {}

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            self._accumulated[name] = self._accumulated.get(name, 0.0) + self.step * intensity
            record[name] = _preserve_int(record[name], value + self._accumulated[name])
        return record

    def reset(self) -> None:
        self._accumulated = {}

    def _state_snapshot(self):
        return dict(self._accumulated)

    def _restore_snapshot(self, state) -> None:
        self._accumulated = dict(state)

    def describe(self) -> str:
        return f"cumulative_drift(step={self.step})"


class SwapWithPrevious(ErrorFunction):
    """Swaps the target value with the value of the previous firing tuple.

    The first firing has no predecessor, so it only *stores* its value and
    leaves the tuple clean; every later firing receives the stored value and
    stores its own. This creates pairs of tuples whose errors depend on each
    other — the inter-tuple dependency pattern of the motivating example
    (Fig. 1), where errors propagate between related measurements.
    """

    def __init__(self) -> None:
        super().__init__()
        self._previous: dict[str, object] = {}

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            current = record.get(name)
            if name in self._previous:
                record[name] = self._previous[name]
            self._previous[name] = current
        return record

    def reset(self) -> None:
        self._previous = {}

    def _state_snapshot(self):
        return dict(self._previous)

    def _restore_snapshot(self, state) -> None:
        self._previous = dict(state)

    def describe(self) -> str:
        return "swap_with_previous"
