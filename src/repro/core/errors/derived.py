"""Derived temporal error functions: static error x change pattern.

§2.2: "derived error types result from combining a static error type with a
pattern of change over time ... the event time is used as an additional
input argument for the otherwise static error function (e.g., noise is
added based on the hour of the day)".

:class:`DerivedTemporalError` is the generic combinator: it evaluates a
:class:`~repro.core.patterns.ChangePattern` at ``tau`` and applies the
wrapped static error with that intensity. :class:`RampedMultiplicativeNoise`
is the specific construction of Experiment 3.2.1 / Equation 3, kept as its
own class because the equation defines the noise *bounds* (not a scalar
intensity) as functions of time.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors.base import ErrorFunction, ErrorOutput, require_numeric
from repro.core.errors.static_numeric import _preserve_int
from repro.core.patterns import ChangePattern
from repro.errors import ErrorFunctionError
from repro.streaming.record import Record
from repro.streaming.time import hours_between


class DerivedTemporalError(ErrorFunction):
    """Wraps a static error function; its magnitude follows a change pattern.

    ``intensity`` passed by the caller is multiplied with the pattern's
    intensity, so derived errors nest (a ramp of a sinusoid etc.).
    """

    def __init__(self, inner: ErrorFunction, pattern: ChangePattern) -> None:
        super().__init__()
        if inner.native_temporal:
            raise ErrorFunctionError(
                "derived temporal errors wrap *static* error functions; "
                f"{inner.describe()} is native temporal already"
            )
        self.inner = inner
        self.pattern = pattern

    @property
    def stochastic(self) -> bool:  # type: ignore[override]
        return self.inner.stochastic

    def bind_rng(self, rng) -> None:
        super().bind_rng(rng)
        self.inner.bind_rng(rng)

    def reset(self) -> None:
        self.inner.reset()

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        effective = intensity * self.pattern(tau)
        if effective <= 0.0:
            return record
        return self.inner.apply(record, attributes, tau, intensity=effective)

    def describe(self) -> str:
        return f"derived({self.inner.describe()} x {self.pattern.describe()})"


class RampedMultiplicativeNoise(ErrorFunction):
    """Equation 3's temporally increasing multiplicative uniform noise.

    For a tuple at event time ``tau_i`` the noise bounds are

    ``a(tau_i) = a_max * hours(tau_i - tau_0) / hours(tau_n - tau_0)``
    ``b(tau_i) = b_max * hours(tau_i - tau_0) / hours(tau_n - tau_0)``

    a factor ``u ~ U(a(tau_i), b(tau_i))`` is drawn, and "depending on the
    result of a fair coin toss, the picked value is used as a factor to
    either increase or decrease the values of the polluted attribute":
    ``value * (1 + u)`` or ``value * (1 - u)``.

    Parameters
    ----------
    tau0, taun:
        Event time of the first and last tuple of the stream being polluted.
    a_max, b_max:
        The bound magnitudes reached at ``taun`` (``pi_max`` in the paper,
        one per bound).
    """

    stochastic = True

    def __init__(self, tau0: int, taun: int, a_max: float = 0.0, b_max: float = 0.5) -> None:
        super().__init__()
        if taun <= tau0:
            raise ErrorFunctionError("need taun > tau0")
        if b_max < a_max:
            raise ErrorFunctionError(f"need a_max <= b_max, got [{a_max}, {b_max}]")
        self.tau0 = int(tau0)
        self.taun = int(taun)
        self.a_max = a_max
        self.b_max = b_max

    def _bounds(self, tau: int) -> tuple[float, float]:
        frac = hours_between(self.tau0, tau) / hours_between(self.tau0, self.taun)
        frac = min(1.0, max(0.0, frac))
        return self.a_max * frac, self.b_max * frac

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        a, b = self._bounds(tau)
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            u = float(self.rng.uniform(a, b)) * intensity
            direction = 1.0 if self.rng.random() < 0.5 else -1.0
            record[name] = _preserve_int(record[name], value * (1.0 + direction * u))
        return record

    def describe(self) -> str:
        return (
            f"ramped_mult_noise(U(a,b) -> [{self.a_max},{self.b_max}] "
            f"over [{self.tau0},{self.taun}])"
        )
