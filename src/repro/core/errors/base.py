"""Error function base class and application contract.

An error function receives the record (already copied by the pipeline — it
may mutate freely), the target attribute names ``A_p``, the event time
``tau``, and an *intensity* in ``[0, 1]`` supplied by derived temporal
errors (1.0 for plain static application). It returns:

* the (mutated) record — the common case;
* ``None`` — the tuple is dropped from the polluted stream
  (:class:`~repro.core.errors.native_temporal.DropTuple`);
* a list of records — the tuple fans out
  (:class:`~repro.core.errors.native_temporal.DuplicateTuple`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ErrorFunctionError
from repro.streaming.record import Record

#: What an error function may return.
ErrorOutput = Record | list[Record] | None


class ErrorFunction:
    """Base class for error functions."""

    #: True if the function draws random numbers (needs a bound generator).
    stochastic: bool = False
    #: True for errors that are temporal by definition (Fig. 3, "native").
    native_temporal: bool = False

    def __init__(self) -> None:
        self._rng: np.random.Generator | None = None

    def bind_rng(self, rng: np.random.Generator) -> None:
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ErrorFunctionError(
                f"{type(self).__name__} is stochastic but has no bound RNG; "
                "attach the polluter to a pipeline (or call bind_rng) first"
            )
        return self._rng

    def apply(
        self,
        record: Record,
        attributes: Sequence[str],
        tau: int,
        intensity: float = 1.0,
    ) -> ErrorOutput:
        """Transform ``record`` in place (and return it), drop it, or fan out."""
        raise NotImplementedError

    def target_attributes(self, attributes: Sequence[str]) -> tuple[str, ...]:
        """The attributes this function actually writes, for ground-truth logs.

        Defaults to the polluter's ``A_p``; timestamp errors configured with
        an explicit timestamp attribute override this so the pollution log
        captures the rewritten timestamp even when ``A_p`` is empty.
        """
        return tuple(attributes)

    def reset(self) -> None:
        """Clear any per-stream state (frozen-value memory etc.).

        Called by the runner before each pollution run so an error-function
        instance can be reused across repetitions.
        """

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> dict | None:
        """Serializable mid-stream state for checkpoint/restore.

        Combines the bound RNG's bit-generator state (so stochastic errors
        replay identically after a resume) with the subclass's own state
        from :meth:`_state_snapshot`. ``None`` means fully stateless.
        """
        state = self._state_snapshot()
        rng_state = self._rng.bit_generator.state if self._rng is not None else None
        if state is None and rng_state is None:
            return None
        return {"state": state, "rng": rng_state}

    def restore_state(self, snapshot: dict | None) -> None:
        if snapshot is None:
            return
        if snapshot.get("rng") is not None:
            if self._rng is None:
                raise ErrorFunctionError(
                    f"{type(self).__name__}: cannot restore RNG state before "
                    "bind_rng; bind the pipeline first, then restore"
                )
            self._rng.bit_generator.state = snapshot["rng"]
        if snapshot.get("state") is not None:
            self._restore_snapshot(snapshot["state"])

    def _state_snapshot(self):
        """Subclass hook: per-stream mutable state (``None`` = none)."""
        return None

    def _restore_snapshot(self, state) -> None:
        """Subclass hook: restore what :meth:`_state_snapshot` produced."""

    def describe(self) -> str:
        return type(self).__name__


def require_numeric(record: Record, attribute: str) -> float | None:
    """Fetch a numeric attribute value, or None if missing/NaN.

    Numeric error functions skip attributes that are currently null — a
    polluter cannot meaningfully scale a missing measurement. Raises for
    non-numeric types, which indicates a mis-targeted ``A_p``.
    """
    value = record.get(attribute)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ErrorFunctionError(
            f"attribute {attribute!r} holds non-numeric value {value!r}"
        )
    if isinstance(value, float) and value != value:  # NaN
        return None
    return float(value)
