"""Static numeric error functions.

These model the "Static Error Types" column of Figure 3 for numeric
attributes: Gaussian noise, scaling by a factor, offsets, precision loss,
unit conversions, outlier spikes, and sign flips. All accept an
``intensity`` in ``[0, 1]`` that derived temporal errors use to modulate
magnitude over time; at ``intensity=1.0`` they behave statically.

Integer-typed attributes keep integer values where the transformation
allows it (scaling an INT by 100 stays an INT); noise on an INT rounds to
the nearest integer, matching what a miscalibrated integer sensor emits.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors.base import ErrorFunction, ErrorOutput, require_numeric
from repro.errors import ErrorFunctionError
from repro.streaming.record import Record


def _preserve_int(original: object, new_value: float) -> float | int:
    """Keep INT attributes integral when the clean value was an int."""
    if isinstance(original, int) and not isinstance(original, bool):
        return round(new_value)
    return new_value


class GaussianNoise(ErrorFunction):
    """Adds zero-mean Gaussian noise with standard deviation ``sigma``.

    ``intensity`` scales ``sigma`` linearly, so a derived temporal wrapper
    produces noise that grows (or follows any pattern) over time.
    """

    stochastic = True

    def __init__(self, sigma: float) -> None:
        super().__init__()
        if sigma <= 0:
            raise ErrorFunctionError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            noise = self.rng.normal(0.0, self.sigma * intensity)
            record[name] = _preserve_int(record[name], value + noise)
        return record

    def describe(self) -> str:
        return f"gaussian_noise(sigma={self.sigma})"


class UniformNoise(ErrorFunction):
    """Noise drawn from ``U(low, high)``, additive or multiplicative.

    In multiplicative mode the drawn factor ``u`` perturbs the value as
    ``value * (1 + u)`` — set ``signed=True`` to flip the direction of the
    perturbation on a fair coin toss, the construction of Experiment 3.2.1's
    noise scenario.
    """

    stochastic = True

    def __init__(
        self,
        low: float,
        high: float,
        multiplicative: bool = False,
        signed: bool = False,
    ) -> None:
        super().__init__()
        if high < low:
            raise ErrorFunctionError(f"need low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self.multiplicative = multiplicative
        self.signed = signed

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            u = self.rng.uniform(self.low, self.high) * intensity
            if self.signed and self.rng.random() < 0.5:
                u = -u
            new = value * (1.0 + u) if self.multiplicative else value + u
            record[name] = _preserve_int(record[name], new)
        return record

    def describe(self) -> str:
        mode = "multiplicative" if self.multiplicative else "additive"
        return f"uniform_noise([{self.low},{self.high}], {mode}, signed={self.signed})"


class ScaleByFactor(ErrorFunction):
    """Multiplies values by a constant factor (Fig. 3, "Scaled by Factor").

    Experiment 3.2.1's scale scenario uses ``factor = 0.125``. With
    ``intensity < 1`` the factor interpolates toward identity:
    ``effective = 1 + intensity * (factor - 1)``.
    """

    def __init__(self, factor: float) -> None:
        super().__init__()
        self.factor = factor

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        effective = 1.0 + intensity * (self.factor - 1.0)
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            record[name] = _preserve_int(record[name], value * effective)
        return record

    def describe(self) -> str:
        return f"scale(factor={self.factor})"


class UnitConversion(ScaleByFactor):
    """A unit change, e.g. km -> cm (factor 100 000).

    Semantically distinct from :class:`ScaleByFactor` — the value is now in
    the *wrong unit*, not merely wrong — which matters for ground-truth
    labeling; mechanically identical. The software-update scenario converts
    the ``Distance`` attribute from km to cm.
    """

    KNOWN = {
        ("km", "m"): 1_000.0,
        ("km", "cm"): 100_000.0,
        ("m", "cm"): 100.0,
        ("m", "km"): 0.001,
        ("cm", "m"): 0.01,
        ("cm", "km"): 0.000_01,
        ("h", "min"): 60.0,
        ("min", "s"): 60.0,
        ("h", "s"): 3_600.0,
        ("kg", "g"): 1_000.0,
        ("g", "kg"): 0.001,
        ("celsius", "fahrenheit"): None,  # affine, handled specially
    }

    def __init__(self, from_unit: str, to_unit: str) -> None:
        key = (from_unit.lower(), to_unit.lower())
        self._affine_c2f = key == ("celsius", "fahrenheit")
        if self._affine_c2f:
            factor = 1.8
        else:
            if key not in self.KNOWN:
                raise ErrorFunctionError(
                    f"unknown unit conversion {from_unit!r} -> {to_unit!r}; "
                    f"known pairs: {sorted(self.KNOWN)}"
                )
            factor = self.KNOWN[key]  # type: ignore[assignment]
        super().__init__(factor)
        self.from_unit = from_unit
        self.to_unit = to_unit

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        record = super().apply(record, attributes, tau, intensity)  # type: ignore[assignment]
        if self._affine_c2f:
            for name in attributes:
                value = require_numeric(record, name)
                if value is not None:
                    record[name] = _preserve_int(record[name], value + 32.0 * intensity)
        return record

    def describe(self) -> str:
        return f"unit_conversion({self.from_unit}->{self.to_unit})"


class Offset(ErrorFunction):
    """Adds a constant offset (systematic sensor bias)."""

    def __init__(self, delta: float) -> None:
        super().__init__()
        self.delta = delta

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            record[name] = _preserve_int(record[name], value + self.delta * intensity)
        return record

    def describe(self) -> str:
        return f"offset(delta={self.delta})"


class RoundToPrecision(ErrorFunction):
    """Rounds to ``digits`` decimal places (precision loss).

    The software-update scenario rounds ``CaloriesBurned`` to precision 2.
    Negative ``digits`` round to tens/hundreds (e.g. ``-2`` -> nearest 100).
    """

    def __init__(self, digits: int) -> None:
        super().__init__()
        self.digits = int(digits)

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            record[name] = _preserve_int(record[name], round(value, self.digits))
        return record

    def describe(self) -> str:
        return f"round(digits={self.digits})"


class OutlierSpike(ErrorFunction):
    """Replaces the value by an extreme outlier ``value ± k * scale``.

    ``scale`` defaults to the value's own magnitude (relative spike). With
    ``signed=True`` (default), the spike direction is random.
    """

    stochastic = True

    def __init__(self, k: float = 10.0, scale: float | None = None, signed: bool = True) -> None:
        super().__init__()
        if k <= 0:
            raise ErrorFunctionError(f"k must be positive, got {k}")
        self.k = k
        self.scale = scale
        self.signed = signed

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            base = self.scale if self.scale is not None else max(abs(value), 1.0)
            spike = self.k * base * intensity
            if self.signed and self.rng.random() < 0.5:
                spike = -spike
            record[name] = _preserve_int(record[name], value + spike)
        return record

    def describe(self) -> str:
        return f"outlier(k={self.k}, scale={self.scale})"


class SignFlip(ErrorFunction):
    """Negates the value (wiring/parsing errors that invert a sign)."""

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        for name in attributes:
            value = require_numeric(record, name)
            if value is None:
                continue
            record[name] = _preserve_int(record[name], -value)
        return record

    def describe(self) -> str:
        return "sign_flip"


class SwapAttributes(ErrorFunction):
    """Swaps the values of two attributes within the tuple.

    The classic mapping/ETL error (BART's attribute-swap): a height lands
    in the weight column and vice versa. ``A_p`` must name exactly two
    attributes; types are not checked — a swap that violates the schema is
    precisely the kind of dirtiness type-checking DQ rules should catch.
    """

    def apply(self, record: Record, attributes: Sequence[str], tau: int, intensity: float = 1.0) -> ErrorOutput:
        if len(attributes) != 2:
            raise ErrorFunctionError(
                f"swap_attributes needs exactly two target attributes, "
                f"got {list(attributes)}"
            )
        a, b = attributes
        record[a], record[b] = record.get(b), record.get(a)
        return record

    def describe(self) -> str:
        return "swap_attributes"
