"""repro — a from-scratch reproduction of *Icewafl: A Configurable Data
Stream Polluter* (EDBT 2025).

Icewafl injects configurable **temporal data errors** into data streams to
produce benchmark datasets for evaluating data-quality tools and the
robustness of online forecasting methods. This library rebuilds the full
system and every substrate it depends on:

* :mod:`repro.core` — the pollution model: polluters ``<e, c, A_p>``,
  conditions, error functions, change patterns, composite polluters,
  pollution pipelines, integration scenarios, and Algorithm 1's runner;
* :mod:`repro.streaming` — a single-process stream-processing substrate
  (the Apache Flink stand-in);
* :mod:`repro.quality` — an expectations-based data-quality tool (the
  Great Expectations stand-in);
* :mod:`repro.forecasting` — online ARIMA / ARIMAX / Holt-Winters plus the
  paper's evaluation protocol (the River stand-in);
* :mod:`repro.datasets` — calibrated synthetic twins of the paper's two
  datasets and the preparation utilities;
* :mod:`repro.experiments` — drivers reproducing every table and figure.

Quickstart::

    from repro import (
        Attribute, DataType, Schema,
        PollutionPipeline, StandardPolluter, pollute,
    )
    from repro.core.conditions import ProbabilityCondition
    from repro.core.errors import GaussianNoise

    schema = Schema([Attribute("value", DataType.FLOAT),
                     Attribute("timestamp", DataType.TIMESTAMP)])
    pipeline = PollutionPipeline([
        StandardPolluter(GaussianNoise(sigma=2.0), ["value"],
                         ProbabilityCondition(0.1), name="noise"),
    ], name="demo")
    result = pollute(rows, pipeline, schema=schema, seed=42)
    # result.clean, result.polluted, result.log
"""

from repro.core import (
    CompositeMode,
    CompositePolluter,
    PollutionEvent,
    PollutionLog,
    PollutionPipeline,
    PollutionResult,
    StandardPolluter,
    pipeline_from_config,
    pollute,
    polluter_from_config,
)
from repro.errors import (
    ConditionError,
    ConfigError,
    DatasetError,
    ErrorFunctionError,
    ExpectationError,
    ForecastingError,
    IcewaflError,
    NotFittedError,
    PollutionError,
    SchemaError,
    StreamError,
)
from repro.check import (
    CheckOptions,
    CheckReport,
    Diagnostic,
    PlanCheckWarning,
    Severity,
    analyze,
    analyze_config,
)
from repro.core.keyed_pollution import FreshPipelineFactory
from repro.obs import MetricsRegistry, Tracer, render_metrics, write_metrics
from repro.parallel import ShardedEnvironment, pollute_parallel
from repro.streaming import (
    Attribute,
    DataType,
    Duration,
    Record,
    Schema,
    StreamExecutionEnvironment,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "CheckOptions",
    "CheckReport",
    "CompositeMode",
    "CompositePolluter",
    "ConditionError",
    "ConfigError",
    "DataType",
    "DatasetError",
    "Diagnostic",
    "Duration",
    "ErrorFunctionError",
    "ExpectationError",
    "ForecastingError",
    "FreshPipelineFactory",
    "IcewaflError",
    "MetricsRegistry",
    "NotFittedError",
    "PlanCheckWarning",
    "PollutionError",
    "PollutionEvent",
    "PollutionLog",
    "PollutionPipeline",
    "PollutionResult",
    "Record",
    "Schema",
    "SchemaError",
    "Severity",
    "ShardedEnvironment",
    "StandardPolluter",
    "StreamError",
    "StreamExecutionEnvironment",
    "Tracer",
    "__version__",
    "analyze",
    "analyze_config",
    "pipeline_from_config",
    "pollute",
    "pollute_parallel",
    "polluter_from_config",
    "render_metrics",
    "write_metrics",
]
