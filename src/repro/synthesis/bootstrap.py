"""Seasonal block bootstrap: an error-preserving synthesizer.

Cuts the source stream into contiguous blocks of one season (a day for
hourly data) and generates synthetic streams by concatenating blocks drawn
with replacement. Within a block, everything survives verbatim — values,
cross-attribute relationships, *and any data errors*: injected nulls,
frozen runs, out-of-range spikes. Only the block order (and hence
long-range structure) is randomized.

In the §5(4) study this is the "approaches that preserve error patterns
from the real data stream" family: synthetic data from a polluted source
carries approximately the source's error rate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.synthesis.base import TimeSeriesSynthesizer


class SeasonalBlockBootstrap(TimeSeriesSynthesizer):
    """Block bootstrap with season-length blocks.

    Parameters
    ----------
    season_length:
        Tuples per block (24 for hourly data with daily seasonality).
    align_to_season:
        When True (default), blocks start at season boundaries of the
        source (midnight for daily blocks), so diurnal phase is preserved.
    """

    def __init__(self, season_length: int = 24, align_to_season: bool = True) -> None:
        if season_length < 1:
            raise DatasetError("season_length must be >= 1")
        self.season_length = season_length
        self.align_to_season = align_to_season
        self._blocks: list[list[Record]] = []
        self._schema: Schema | None = None
        self._targets: tuple[str, ...] = ()
        self._step = 3600
        self._start_ts = 0

    @property
    def is_fitted(self) -> bool:
        return bool(self._blocks)

    def fit(
        self, records: Sequence[Record], schema: Schema, targets: Sequence[str]
    ) -> "SeasonalBlockBootstrap":
        self._check_fitted_inputs(records, schema, targets)
        self._schema = schema
        self._targets = tuple(targets)
        self._step = self._cadence(records, schema)
        ts_attr = schema.timestamp_attribute
        season_seconds = self.season_length * self._step

        offset = 0
        if self.align_to_season:
            # Skip to the first season boundary so every block has the same phase.
            first = records[0][ts_attr]
            boundary = first - (first % season_seconds) + (
                season_seconds if first % season_seconds else 0
            )
            while offset < len(records) and records[offset][ts_attr] < boundary:
                offset += 1
            if offset == len(records):
                offset = 0  # stream shorter than one season: fall back

        self._blocks = [
            list(records[i:i + self.season_length])
            for i in range(offset, len(records) - self.season_length + 1, self.season_length)
        ]
        if not self._blocks:
            raise DatasetError(
                f"source stream too short for season_length={self.season_length}"
            )
        self._start_ts = records[-1][ts_attr] + self._step
        return self

    def synthesize(self, n: int, seed: int | None = None) -> list[Record]:
        if not self.is_fitted:
            raise DatasetError("fit the synthesizer before synthesizing")
        assert self._schema is not None
        rng = np.random.default_rng(seed)
        ts_attr = self._schema.timestamp_attribute
        out: list[Record] = []
        ts = self._start_ts
        while len(out) < n:
            block = self._blocks[int(rng.integers(len(self._blocks)))]
            for source in block:
                if len(out) >= n:
                    break
                values = source.as_dict()
                values[ts_attr] = ts
                out.append(Record(values))
                ts += self._step
        return out

    def __repr__(self) -> str:
        return (
            f"SeasonalBlockBootstrap(season={self.season_length}, "
            f"blocks={len(self._blocks)})"
        )
