"""The synthesizer interface."""

from __future__ import annotations

from typing import Sequence

from repro.errors import DatasetError
from repro.streaming.record import Record
from repro.streaming.schema import Schema


class TimeSeriesSynthesizer:
    """Fits on a source stream, then generates synthetic streams.

    Synthetic records follow the source schema; timestamps are a fresh
    regular grid continuing the source's cadence (synthesis creates *new*
    data, so new event times — only the value dynamics are learned).
    """

    def fit(
        self, records: Sequence[Record], schema: Schema, targets: Sequence[str]
    ) -> "TimeSeriesSynthesizer":
        raise NotImplementedError

    def synthesize(self, n: int, seed: int | None = None) -> list[Record]:
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    def _check_fitted_inputs(
        self, records: Sequence[Record], schema: Schema, targets: Sequence[str]
    ) -> None:
        if not records:
            raise DatasetError("cannot fit a synthesizer on an empty stream")
        if not targets:
            raise DatasetError("synthesizer needs at least one target attribute")
        missing = [t for t in targets if t not in schema]
        if missing:
            raise DatasetError(f"targets not in schema: {missing}")
        if schema.timestamp_attribute in targets:
            raise DatasetError("the timestamp attribute cannot be a synthesis target")

    @staticmethod
    def _cadence(records: Sequence[Record], schema: Schema) -> int:
        ts_attr = schema.timestamp_attribute
        if len(records) < 2:
            return 3600
        deltas = [
            records[i + 1][ts_attr] - records[i][ts_attr]
            for i in range(min(len(records) - 1, 100))
        ]
        deltas = [d for d in deltas if d > 0]
        if not deltas:
            raise DatasetError("source stream has no increasing timestamps")
        deltas.sort()
        return int(deltas[len(deltas) // 2])  # median step
