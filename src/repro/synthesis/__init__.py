"""Time-series synthesis (the paper's future-work item 4).

§5: "we plan to ... explore new fields of application, such as testing
whether existing approaches to time series synthesis are agnostic to
different temporal error types and patterns. Such an analysis will reveal
the suitability of synthesis approaches for different use cases: synthesis
approaches that do not adopt errors from the real data stream are
beneficial for applications that require clean data. On the other hand,
approaches that preserve error patterns ... can be used to generate
synthetic data that is suitable for error analysis tasks."

This package implements that study's two synthesizer families:

* :class:`~repro.synthesis.bootstrap.SeasonalBlockBootstrap` — resamples
  whole seasonal blocks of the source stream. Whatever is *in* the blocks
  — including injected nulls, frozen runs, and noise — reappears in the
  synthetic stream: an **error-preserving** synthesizer.
* :class:`~repro.synthesis.ar.ARSynthesizer` — fits a seasonal-mean +
  AR(p) model to the source and generates fresh Gaussian innovations: an
  **error-agnostic** (smoothing) synthesizer that produces clean data even
  from a polluted source.

:mod:`repro.experiments.exp4_synthesis` runs the study: pollute a stream
with Icewafl, synthesize from the polluted stream with both methods,
measure the surviving error rate with the DQ tool.
"""

from repro.synthesis.ar import ARSynthesizer
from repro.synthesis.base import TimeSeriesSynthesizer
from repro.synthesis.bootstrap import SeasonalBlockBootstrap

__all__ = ["ARSynthesizer", "SeasonalBlockBootstrap", "TimeSeriesSynthesizer"]
