"""Seasonal-mean + AR(p) synthesizer: an error-agnostic generator.

Fits, per target attribute, a seasonal mean profile (one mean per position
in the season) plus an AR(p) model on the deseasonalized residuals
(Yule-Walker estimation), then generates synthetic streams by simulating
the AR process with fresh Gaussian innovations on top of the seasonal
profile.

Because fitting averages over the source and simulation draws *new* smooth
innovations, data errors in the source — missing values, spikes, frozen
runs — do not reappear: the synthesizer is **error-agnostic**, the "clean
data" family of the §5(4) study. Missing source values are simply excluded
from estimation; non-target attributes are filled with their seasonal
modal/mean values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.quality.dataset import is_missing
from repro.streaming.record import Record
from repro.streaming.schema import DataType, Schema
from repro.synthesis.base import TimeSeriesSynthesizer


class _TargetModel:
    """Seasonal means + AR(p) residual model for one attribute."""

    def __init__(self, seasonal_means: np.ndarray, ar_coeffs: np.ndarray, sigma: float) -> None:
        self.seasonal_means = seasonal_means
        self.ar_coeffs = ar_coeffs
        self.sigma = sigma


def _yule_walker(residuals: np.ndarray, order: int) -> tuple[np.ndarray, float]:
    """AR(p) coefficients and innovation std via the Yule-Walker equations."""
    n = len(residuals)
    if n <= order + 1:
        return np.zeros(order), float(np.std(residuals) or 1.0)
    x = residuals - residuals.mean()
    # Autocovariances r_0..r_p.
    r = np.array([x[: n - k] @ x[k:] / n for k in range(order + 1)])
    if r[0] <= 0:
        return np.zeros(order), 1.0
    R = np.array([[r[abs(i - j)] for j in range(order)] for i in range(order)])
    try:
        phi = np.linalg.solve(R, r[1: order + 1])
    except np.linalg.LinAlgError:
        return np.zeros(order), float(np.sqrt(r[0]))
    sigma2 = r[0] - phi @ r[1: order + 1]
    sigma = float(np.sqrt(max(sigma2, 1e-12)))
    # Clamp to a stable region: explode-y fits would make synthesis diverge.
    norm = np.abs(phi).sum()
    if norm >= 0.99:
        phi = phi * (0.98 / norm)
    return phi, sigma


class ARSynthesizer(TimeSeriesSynthesizer):
    """Seasonal profile + AR(p) residuals, simulated with fresh innovations.

    Parameters
    ----------
    order:
        AR order ``p`` for the deseasonalized residuals.
    season_length:
        Positions per season (24 for hourly/daily).
    """

    def __init__(self, order: int = 2, season_length: int = 24) -> None:
        if order < 1:
            raise DatasetError("AR order must be >= 1")
        if season_length < 1:
            raise DatasetError("season_length must be >= 1")
        self.order = order
        self.season_length = season_length
        self._models: dict[str, _TargetModel] = {}
        self._constants: dict[str, object] = {}
        self._schema: Schema | None = None
        self._step = 3600
        self._start_ts = 0

    @property
    def is_fitted(self) -> bool:
        return bool(self._models)

    def fit(
        self, records: Sequence[Record], schema: Schema, targets: Sequence[str]
    ) -> "ARSynthesizer":
        self._check_fitted_inputs(records, schema, targets)
        self._schema = schema
        self._step = self._cadence(records, schema)
        ts_attr = schema.timestamp_attribute
        m = self.season_length

        for name in targets:
            if not schema[name].dtype.is_numeric:
                raise DatasetError(f"AR synthesis needs numeric targets; {name!r} is not")
            phases: list[list[float]] = [[] for _ in range(m)]
            series: list[tuple[int, float]] = []
            for i, r in enumerate(records):
                v = r.get(name)
                if is_missing(v):
                    continue
                phases[i % m].append(float(v))
                series.append((i, float(v)))
            if not series:
                raise DatasetError(f"target {name!r} has no observed values")
            means = np.array(
                [np.mean(p) if p else float(np.mean([v for _, v in series])) for p in phases]
            )
            residuals = np.array([v - means[i % m] for i, v in series])
            phi, sigma = _yule_walker(residuals, self.order)
            self._models[name] = _TargetModel(means, phi, sigma)

        # Non-target attributes: carry a representative constant per phase
        # is overkill; use the first observed value (metadata-ish columns).
        for attr in schema:
            if attr.name in targets or attr.name == ts_attr:
                continue
            observed = next(
                (r.get(attr.name) for r in records if not is_missing(r.get(attr.name))),
                None,
            )
            self._constants[attr.name] = observed
        self._start_ts = records[-1][ts_attr] + self._step
        return self

    def synthesize(self, n: int, seed: int | None = None) -> list[Record]:
        if not self.is_fitted:
            raise DatasetError("fit the synthesizer before synthesizing")
        assert self._schema is not None
        rng = np.random.default_rng(seed)
        ts_attr = self._schema.timestamp_attribute
        m = self.season_length

        paths: dict[str, np.ndarray] = {}
        for name, model in self._models.items():
            p = self.order
            resid = np.zeros(n + p)
            innovations = rng.normal(0.0, model.sigma, n + p)
            for t in range(p, n + p):
                resid[t] = model.ar_coeffs @ resid[t - p: t][::-1] + innovations[t]
            seasonal = np.array([model.seasonal_means[i % m] for i in range(n)])
            paths[name] = seasonal + resid[p:]

        out = []
        for i in range(n):
            values: dict[str, object] = {ts_attr: self._start_ts + i * self._step}
            for name, path in paths.items():
                value = float(path[i])
                if self._schema[name].dtype is DataType.INT:
                    value = round(value)
                values[name] = value
            for name, constant in self._constants.items():
                values[name] = constant
            out.append(Record(values))
        return out

    def __repr__(self) -> str:
        return f"ARSynthesizer(order={self.order}, season={self.season_length})"
