"""Diagnostics and reports produced by the static plan analyzer.

A :class:`Diagnostic` is one finding — a stable rule ID, a severity, a
human-readable message, and a JSON-path-style location inside the plan
(e.g. ``polluters[1].children[0]``). A :class:`CheckReport` is the ordered
collection of diagnostics for one analysis run, with text and JSON
renderings shared by the CLI, the pre-flight hook, and tests.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Iterator


class Severity(enum.IntEnum):
    """Severity of a diagnostic; ordering is meaningful (ERROR > WARNING)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in reports (``"error"``, ``"warning"``...)."""
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {label!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding against a pollution plan."""

    rule: str
    severity: Severity
    message: str
    location: str = ""
    polluter: str | None = None
    pipeline: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "location": self.location,
        }
        if self.polluter is not None:
            out["polluter"] = self.polluter
        if self.pipeline is not None:
            out["pipeline"] = self.pipeline
        return out

    def render(self) -> str:
        where = self.location or "<plan>"
        return f"{self.rule} {self.severity.label:<7} {where}: {self.message}"


class CheckReport:
    """The result of statically analyzing one plan (or one config file)."""

    def __init__(self, diagnostics: tuple[Diagnostic, ...] | list[Diagnostic]) -> None:
        ordered = sorted(
            diagnostics,
            key=lambda d: (-int(d.severity), d.rule, d.location, d.message),
        )
        self.diagnostics: tuple[Diagnostic, ...] = tuple(ordered)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"CheckReport(errors={len(self.errors)}, warnings={len(self.warnings)}, "
            f"infos={len(self.infos)})"
        )

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """True when the plan has no error-severity diagnostics."""
        return not self.errors

    def rules(self) -> frozenset[str]:
        return frozenset(d.rule for d in self.diagnostics)

    def by_rule(self, rule: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        worst = self.max_severity
        if worst is not None and worst >= fail_on:
            return 1
        return 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "max_severity": None if self.max_severity is None else self.max_severity.label,
                "ok": self.ok,
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_text(self) -> str:
        if not self.diagnostics:
            return "no diagnostics — plan looks clean"
        head = (
            f"{len(self.diagnostics)} diagnostic(s): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        lines = [head] + [f"  {d.render()}" for d in self.diagnostics]
        return "\n".join(lines)

    @staticmethod
    def merge(reports: "list[CheckReport]") -> "CheckReport":
        diags: list[Diagnostic] = []
        for report in reports:
            diags.extend(report.diagnostics)
        return CheckReport(diags)
