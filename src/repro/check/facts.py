"""Abstract facts extracted from a pollution plan without executing it.

The analyzer never evaluates a condition or applies an error function.
Instead it folds each plan component into a small fact lattice:

* :class:`Interval` / :class:`AttrConstraint` — conservative value and
  event-time constraints (``None`` bounds mean unbounded);
* :class:`ConditionFacts` — which attributes a condition reads, the value
  ranges it can accept, its active time window, an upper bound on its firing
  probability, and structural dead causes (``never``, ``zero-probability``,
  ``contradiction``);
* :class:`ErrorFacts` — what an error function requires of its target
  (numeric/string), whether it is stateful, rewrites timestamps, or changes
  tuple multiplicity, and the time window where a derived error has nonzero
  intensity;
* :class:`LeafFacts` / :class:`PlanFacts` — the flattened plan: one leaf per
  standard polluter, with composite gates merged in and composite
  exclusivity (FIRST_MATCH / CHOOSE_ONE) recorded for conflict analysis.

Everything here is deliberately conservative: when a component cannot be
analyzed (custom predicates, unknown subclasses) the facts degrade to
"anything is possible" and the rules only emit an informational note.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.composite import CompositePolluter
from repro.core.conditions import (
    AllOf,
    AlwaysCondition,
    AnyOf,
    AfterCondition,
    AttributeCondition,
    BeforeCondition,
    BurstCondition,
    DailyIntervalCondition,
    EveryNthCondition,
    InSetCondition,
    NeverCondition,
    Not,
    NullValueCondition,
    PatternProbabilityCondition,
    ProbabilityCondition,
    RangeCondition,
    TimeIntervalCondition,
)
from repro.core.conditions.base import Condition
from repro.core.dependencies import FiredRecentlyCondition, TrackedPolluter
from repro.core.errors import (
    CaseError,
    CumulativeDrift,
    DelayTuple,
    DerivedTemporalError,
    DropTuple,
    DuplicateTuple,
    FrozenValue,
    GaussianNoise,
    IncorrectCategory,
    Offset,
    OutlierSpike,
    RampedMultiplicativeNoise,
    RoundToPrecision,
    ScaleByFactor,
    SetToConstant,
    SetToDefault,
    SetToNaN,
    SetToNull,
    SignFlip,
    SwapAttributes,
    SwapWithPrevious,
    TimestampJitter,
    Truncate,
    Typo,
    UniformNoise,
    WhitespacePadding,
)
from repro.core.errors.base import ErrorFunction
from repro.core.patterns import (
    AbruptPattern,
    ChangePattern,
    ConstantPattern,
    IncrementalPattern,
    IntermediatePattern,
    SinusoidalPattern,
)
from repro.core.pipeline import PollutionPipeline
from repro.core.polluter import Polluter, StandardPolluter
from repro.streaming.schema import Attribute, DataType


# --------------------------------------------------------------------------
# Intervals and per-attribute constraints
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed interval with optional bounds; ``None`` means unbounded."""

    lo: float | None = None
    hi: float | None = None

    @property
    def empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    @property
    def unbounded(self) -> bool:
        return self.lo is None and self.hi is None

    def intersect(self, other: "Interval") -> "Interval":
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def overlaps(self, other: "Interval") -> bool:
        return not self.intersect(other).empty

    def contains(self, other: "Interval") -> bool:
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    def contains_value(self, value: object) -> bool:
        if self.unbounded:
            return True
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "+inf" if self.hi is None else f"{self.hi:g}"
        return f"[{lo}, {hi}]"


UNBOUNDED = Interval()
EMPTY_INTERVAL = Interval(1.0, 0.0)


@dataclass(frozen=True)
class AttrConstraint:
    """The values one attribute may take for a condition to fire.

    ``interval`` constrains numeric values; ``allowed`` (when not ``None``)
    is a finite set of admissible values of any type. A value satisfies the
    constraint when it lies in the interval *and* (if present) the set.
    """

    interval: Interval = UNBOUNDED
    allowed: frozenset[Any] | None = None

    @property
    def empty(self) -> bool:
        if self.interval.empty:
            return True
        if self.allowed is None:
            return False
        return not any(self.interval.contains_value(v) for v in self.allowed)

    def intersect(self, other: "AttrConstraint") -> "AttrConstraint":
        if self.allowed is None:
            allowed = other.allowed
        elif other.allowed is None:
            allowed = self.allowed
        else:
            allowed = self.allowed & other.allowed
        return AttrConstraint(self.interval.intersect(other.interval), allowed)

    def disjoint_from(self, other: "AttrConstraint") -> bool:
        return self.intersect(other).empty

    def describe(self) -> str:
        parts = []
        if not self.interval.unbounded:
            parts.append(self.interval.describe())
        if self.allowed is not None:
            shown = sorted(map(repr, self.allowed))[:4]
            suffix = ", ..." if len(self.allowed) > 4 else ""
            parts.append("{" + ", ".join(shown) + suffix + "}")
        return " & ".join(parts) or "any"


def domain_constraint(attribute: Attribute) -> AttrConstraint | None:
    """The declared value domain of a schema attribute, as a constraint."""
    if attribute.domain is None:
        return None
    if attribute.dtype is DataType.CATEGORY:
        return AttrConstraint(allowed=frozenset(attribute.domain))
    if attribute.dtype.is_numeric and len(attribute.domain) == 2:
        low, high = attribute.domain
        return AttrConstraint(interval=Interval(float(low), float(high)))
    return None


# --------------------------------------------------------------------------
# Condition facts
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DeadCause:
    """Why a condition can never fire.

    ``kind`` is one of ``"never"`` (an explicit NeverCondition — deliberate),
    ``"zero-probability"`` (a stochastic component with p = 0), or
    ``"contradiction"`` (structurally unsatisfiable constraints).
    """

    kind: str
    message: str


@dataclass(frozen=True)
class ConditionFacts:
    """Conservative facts about one (possibly composite) condition."""

    reads: frozenset[str] = frozenset()
    constraints: dict[str, AttrConstraint] = field(default_factory=dict)
    time: Interval = UNBOUNDED
    p_max: float = 1.0
    always_true: bool = False
    stochastic: bool = False
    stateful: bool = False
    analyzable: bool = True
    dead: tuple[DeadCause, ...] = ()
    depends_on: tuple[str, ...] = ()

    @property
    def is_dead(self) -> bool:
        return bool(self.dead)

    def dead_of_kind(self, kind: str) -> tuple[DeadCause, ...]:
        return tuple(c for c in self.dead if c.kind == kind)


def merge_all_of(parts: list[ConditionFacts]) -> ConditionFacts:
    """Conjunction of condition facts (AllOf / composite gate merging)."""
    if not parts:
        return ConditionFacts(always_true=True)
    reads: set[str] = set()
    constraints: dict[str, AttrConstraint] = {}
    time = UNBOUNDED
    dead: list[DeadCause] = []
    depends_on: list[str] = []
    for part in parts:
        reads |= part.reads
        time = time.intersect(part.time)
        dead.extend(part.dead)
        for name in part.depends_on:
            if name not in depends_on:
                depends_on.append(name)
        for attr, constraint in part.constraints.items():
            prior = constraints.get(attr)
            merged = constraint if prior is None else prior.intersect(constraint)
            constraints[attr] = merged
    if time.empty and not any(c.kind == "contradiction" for c in dead):
        dead.append(
            DeadCause(
                "contradiction",
                "combined temporal constraints leave an empty time window",
            )
        )
    for attr, constraint in constraints.items():
        if constraint.empty:
            dead.append(
                DeadCause(
                    "contradiction",
                    f"combined constraints on attribute {attr!r} are unsatisfiable",
                )
            )
    return ConditionFacts(
        reads=frozenset(reads),
        constraints=constraints,
        time=time,
        p_max=min(part.p_max for part in parts),
        always_true=all(part.always_true for part in parts),
        stochastic=any(part.stochastic for part in parts),
        stateful=any(part.stateful for part in parts),
        analyzable=all(part.analyzable for part in parts),
        dead=tuple(dead),
        depends_on=tuple(depends_on),
    )


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def pattern_max(pattern: ChangePattern) -> tuple[float, bool]:
    """Upper bound of a change pattern's intensity, and whether we know it."""
    if isinstance(pattern, ConstantPattern):
        return min(1.0, max(0.0, pattern._value)), True  # noqa: SLF001
    if isinstance(pattern, AbruptPattern):
        top = max(pattern._before, pattern._after)  # noqa: SLF001
        return min(1.0, max(0.0, top)), True
    if isinstance(pattern, IncrementalPattern):
        top = max(pattern._start_value, pattern._end_value)  # noqa: SLF001
        return min(1.0, max(0.0, top)), True
    if isinstance(pattern, IntermediatePattern):
        return 1.0, True
    if isinstance(pattern, SinusoidalPattern):
        top = pattern._offset + abs(pattern._amplitude)  # noqa: SLF001
        return min(1.0, max(0.0, top)), True
    return 1.0, False


def pattern_support(pattern: ChangePattern) -> Interval:
    """Time window where the pattern's intensity can be greater than zero."""
    if isinstance(pattern, ConstantPattern):
        return UNBOUNDED if pattern._value > 0 else EMPTY_INTERVAL  # noqa: SLF001
    if isinstance(pattern, AbruptPattern):
        before, after = pattern._before, pattern._after  # noqa: SLF001
        change = float(pattern._change_time)  # noqa: SLF001
        if before > 0 and after > 0:
            return UNBOUNDED
        if after > 0:
            return Interval(change, None)
        if before > 0:
            return Interval(None, change)
        return EMPTY_INTERVAL
    if isinstance(pattern, IncrementalPattern):
        sv, ev = pattern._start_value, pattern._end_value  # noqa: SLF001
        start, end = float(pattern._start), float(pattern._end)  # noqa: SLF001
        if sv <= 0 and ev <= 0:
            return EMPTY_INTERVAL
        if sv <= 0 < ev:
            return Interval(start, None)
        if ev <= 0 < sv:
            return Interval(None, end)
        return UNBOUNDED
    if isinstance(pattern, IntermediatePattern):
        return Interval(float(pattern._start), None)  # noqa: SLF001
    if isinstance(pattern, SinusoidalPattern):
        top, _ = pattern_max(pattern)
        return UNBOUNDED if top > 0 else EMPTY_INTERVAL
    return UNBOUNDED


def condition_facts(cond: Condition) -> ConditionFacts:
    """Fold one condition (recursively) into :class:`ConditionFacts`."""
    if isinstance(cond, AlwaysCondition):
        return ConditionFacts(always_true=True)
    if isinstance(cond, NeverCondition):
        return ConditionFacts(
            p_max=0.0,
            dead=(DeadCause("never", "an explicit 'never' condition disables this polluter"),),
        )
    if isinstance(cond, ProbabilityCondition):
        dead: tuple[DeadCause, ...] = ()
        if cond.p <= 0.0:
            dead = (DeadCause("zero-probability", "firing probability is 0"),)
        return ConditionFacts(
            p_max=cond.p,
            always_true=cond.p >= 1.0,
            stochastic=True,
            dead=dead,
        )
    if isinstance(cond, AttributeCondition):
        constraint = _attribute_constraint(cond)
        return ConditionFacts(
            reads=frozenset({cond.attribute}),
            constraints={} if constraint is None else {cond.attribute: constraint},
        )
    if isinstance(cond, NullValueCondition):
        return ConditionFacts(reads=frozenset({cond.attribute}))
    if isinstance(cond, InSetCondition):
        return ConditionFacts(
            reads=frozenset({cond.attribute}),
            constraints={cond.attribute: AttrConstraint(allowed=frozenset(cond.values))},
        )
    if isinstance(cond, RangeCondition):
        lo = None if cond.low is None else float(cond.low)
        hi = None if cond.high is None else float(cond.high)
        return ConditionFacts(
            reads=frozenset({cond.attribute}),
            constraints={cond.attribute: AttrConstraint(interval=Interval(lo, hi))},
        )
    if isinstance(cond, AfterCondition):
        return ConditionFacts(time=Interval(float(cond.timestamp), None))
    if isinstance(cond, BeforeCondition):
        return ConditionFacts(time=Interval(None, float(cond.timestamp)))
    if isinstance(cond, TimeIntervalCondition):
        return ConditionFacts(time=Interval(float(cond.start), float(cond.end)))
    if isinstance(cond, DailyIntervalCondition):
        dead = ()
        if cond.start_hour == cond.end_hour:
            dead = (
                DeadCause(
                    "contradiction",
                    f"daily interval [{cond.start_hour}, {cond.end_hour}) is empty",
                ),
            )
        return ConditionFacts(dead=dead)
    if isinstance(cond, EveryNthCondition):
        return ConditionFacts(stateful=True)
    if isinstance(cond, BurstCondition):
        p_top = max(cond.p_error_good, cond.p_error_bad)
        dead = ()
        if p_top <= 0.0:
            dead = (
                DeadCause(
                    "zero-probability",
                    "burst error probabilities are 0 in both states",
                ),
            )
        return ConditionFacts(p_max=p_top, stochastic=True, stateful=True, dead=dead)
    if isinstance(cond, FiredRecentlyCondition):
        return ConditionFacts(stateful=True, depends_on=(cond.polluter_name,))
    if isinstance(cond, PatternProbabilityCondition):
        # Covers SinusoidalCondition and LinearRampCondition subclasses too.
        top, known = pattern_max(cond.pattern)
        p_top = cond.scale * top
        dead = ()
        if known and p_top <= 0.0:
            dead = (
                DeadCause(
                    "zero-probability",
                    "pattern-driven firing probability is 0 everywhere",
                ),
            )
        support = pattern_support(cond.pattern) if known else UNBOUNDED
        return ConditionFacts(
            time=support,
            p_max=p_top if known else cond.scale,
            stochastic=True,
            analyzable=known,
            dead=dead,
        )
    if isinstance(cond, AllOf):
        return merge_all_of([condition_facts(child) for child in cond.children])
    if isinstance(cond, AnyOf):
        parts = [condition_facts(child) for child in cond.children]
        time = EMPTY_INTERVAL
        for part in parts:
            time = time.hull(part.time)
        miss = 1.0
        for part in parts:
            miss *= 1.0 - min(1.0, part.p_max)
        dead = ()
        if all(part.is_dead for part in parts):
            dead = (
                DeadCause(
                    "contradiction",
                    "no branch of this any_of can ever fire",
                ),
            )
        depends_on: list[str] = []
        for part in parts:
            for name in part.depends_on:
                if name not in depends_on:
                    depends_on.append(name)
        return ConditionFacts(
            reads=frozenset().union(*(part.reads for part in parts)),
            time=time,
            p_max=1.0 - miss,
            always_true=any(part.always_true for part in parts),
            stochastic=any(part.stochastic for part in parts),
            stateful=any(part.stateful for part in parts),
            analyzable=all(part.analyzable for part in parts),
            dead=dead,
            depends_on=tuple(depends_on),
        )
    if isinstance(cond, Not):
        child = condition_facts(cond.child)
        dead = ()
        if child.always_true:
            dead = (
                DeadCause(
                    "contradiction",
                    "negation of a condition that is always true",
                ),
            )
        return ConditionFacts(
            reads=child.reads,
            p_max=0.0 if child.always_true else 1.0,
            always_true=child.is_dead,
            stochastic=child.stochastic,
            stateful=child.stateful,
            analyzable=child.analyzable,
            dead=dead,
            depends_on=child.depends_on,
        )
    # PredicateCondition and unknown subclasses: no static knowledge.
    return ConditionFacts(
        stochastic=cond.stochastic,
        analyzable=False,
    )


def _attribute_constraint(cond: AttributeCondition) -> AttrConstraint | None:
    value = cond.value
    if cond.op == "==":
        if _numeric(value):
            return AttrConstraint(interval=Interval(float(value), float(value)))
        return AttrConstraint(allowed=frozenset({value}))
    if not _numeric(value):
        return None
    v = float(value)
    if cond.op in ("<", "<="):
        return AttrConstraint(interval=Interval(None, v))
    if cond.op in (">", ">="):
        return AttrConstraint(interval=Interval(v, None))
    return None  # "!=" excludes a point; not representable, stay conservative


# --------------------------------------------------------------------------
# Error-function facts
# --------------------------------------------------------------------------

NUMERIC_ONLY_ERRORS: tuple[type[ErrorFunction], ...] = (
    GaussianNoise,
    UniformNoise,
    ScaleByFactor,  # includes UnitConversion
    Offset,
    RoundToPrecision,
    OutlierSpike,
    SignFlip,
    SwapAttributes,
    CumulativeDrift,
    RampedMultiplicativeNoise,
)

STRING_ONLY_ERRORS: tuple[type[ErrorFunction], ...] = (
    IncorrectCategory,
    Typo,
    CaseError,
    Truncate,
    WhitespacePadding,
)

STATEFUL_ERRORS: tuple[type[ErrorFunction], ...] = (
    FrozenValue,
    CumulativeDrift,
    SwapWithPrevious,
)

MULTIPLICITY_ERRORS: tuple[type[ErrorFunction], ...] = (DropTuple, DuplicateTuple)

_KNOWN_ERRORS: tuple[type[ErrorFunction], ...] = (
    NUMERIC_ONLY_ERRORS
    + STRING_ONLY_ERRORS
    + STATEFUL_ERRORS
    + MULTIPLICITY_ERRORS
    + (SetToNull, SetToNaN, SetToConstant, SetToDefault, DelayTuple, TimestampJitter)
)


@dataclass(frozen=True)
class ErrorFacts:
    """Facts about one error function (derived wrappers unwrapped)."""

    leaf: ErrorFunction
    requires: str | None
    stochastic: bool
    stateful: bool
    analyzable: bool
    native_temporal: bool
    multiplicity: bool
    rewrites_timestamp: bool
    timestamp_attribute: str | None
    support: Interval
    zero_intensity: bool

    def describe(self) -> str:
        return self.leaf.describe()


def error_facts(error: ErrorFunction) -> ErrorFacts:
    support = UNBOUNDED
    zero_intensity = False
    inner: ErrorFunction = error
    while isinstance(inner, DerivedTemporalError):
        top, known = pattern_max(inner.pattern)
        if known:
            support = support.intersect(pattern_support(inner.pattern))
            if top <= 0.0:
                zero_intensity = True
        inner = inner.inner
    if isinstance(inner, RampedMultiplicativeNoise):
        support = support.intersect(Interval(float(inner.tau0), None))
        if inner.a_max <= 0.0 and inner.b_max <= 0.0:
            zero_intensity = True

    requires: str | None = None
    if isinstance(inner, NUMERIC_ONLY_ERRORS):
        requires = "numeric"
    elif isinstance(inner, STRING_ONLY_ERRORS):
        requires = "string"

    rewrites_ts = isinstance(inner, (DelayTuple, TimestampJitter))
    if isinstance(inner, DuplicateTuple) and inner.spacing.seconds > 0:
        rewrites_ts = True

    return ErrorFacts(
        leaf=inner,
        requires=requires,
        stochastic=error.stochastic,
        stateful=isinstance(inner, STATEFUL_ERRORS),
        analyzable=isinstance(inner, _KNOWN_ERRORS),
        native_temporal=inner.native_temporal,
        multiplicity=isinstance(inner, MULTIPLICITY_ERRORS),
        rewrites_timestamp=rewrites_ts,
        timestamp_attribute=getattr(inner, "timestamp_attribute", None),
        support=support,
        zero_intensity=zero_intensity,
    )


# --------------------------------------------------------------------------
# Plan facts: the flattened pipeline
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LeafFacts:
    """One standard polluter, with its composite gates folded in."""

    path: str
    name: str
    attributes: tuple[str, ...]
    raw_condition: Condition
    condition: ConditionFacts
    own_condition: ConditionFacts
    error: ErrorFacts
    writes: frozenset[str]
    tracked_as: str | None


@dataclass(frozen=True)
class PlanFacts:
    """The flattened plan for one pipeline."""

    pipeline: PollutionPipeline
    name: str
    leaves: tuple[LeafFacts, ...]
    opaque: tuple[tuple[str, str], ...]
    composites: dict[str, str]

    def mutually_exclusive(self, a: LeafFacts, b: LeafFacts) -> bool:
        """True when a composite guarantees at most one of the two fires."""
        ancestor = _nearest_common_composite(a.path, b.path)
        if ancestor is None:
            return False
        mode = self.composites.get(ancestor)
        return mode in ("first_match", "choose_one")


def _nearest_common_composite(path_a: str, path_b: str) -> str | None:
    """Longest shared ``.children[i]`` prefix under which the paths diverge."""
    if path_a == path_b:
        return None
    parts_a = path_a.split(".")
    parts_b = path_b.split(".")
    common = 0
    for seg_a, seg_b in zip(parts_a, parts_b):
        if seg_a != seg_b:
            break
        common += 1
    if common == 0:
        return None
    # The shared prefix names a composite only if at least one path continues
    # below it (leaves under the same composite differ in their child index).
    if common == len(parts_a) or common == len(parts_b):
        return None
    return ".".join(parts_a[:common])


def leaf_writes(polluter: StandardPolluter, facts: ErrorFacts) -> frozenset[str]:
    writes = set(polluter.attributes)
    if facts.timestamp_attribute is not None:
        writes.add(facts.timestamp_attribute)
    elif isinstance(facts.leaf, DelayTuple) and len(polluter.attributes) == 1:
        writes.add(polluter.attributes[0])
    return frozenset(writes)


def plan_facts(pipeline: PollutionPipeline) -> PlanFacts:
    leaves: list[LeafFacts] = []
    opaque: list[tuple[str, str]] = []
    composites: dict[str, str] = {}

    def walk(
        polluter: Polluter,
        path: str,
        gates: list[ConditionFacts],
        tracked_as: str | None,
    ) -> None:
        if isinstance(polluter, TrackedPolluter):
            walk(polluter.inner, path, gates, polluter.track_as)
            return
        if isinstance(polluter, CompositePolluter):
            composites[path] = polluter.mode.value
            gate = condition_facts(polluter.condition)
            for i, child in enumerate(polluter.children):
                walk(child, f"{path}.children[{i}]", gates + [gate], None)
            return
        if isinstance(polluter, StandardPolluter):
            own = condition_facts(polluter.condition)
            merged = merge_all_of([own, *gates]) if gates else own
            efacts = error_facts(polluter.error)
            leaves.append(
                LeafFacts(
                    path=path,
                    name=polluter.name,
                    attributes=tuple(polluter.attributes),
                    raw_condition=polluter.condition,
                    condition=merged,
                    own_condition=own,
                    error=efacts,
                    writes=leaf_writes(polluter, efacts),
                    tracked_as=tracked_as,
                )
            )
            return
        opaque.append((path, type(polluter).__name__))

    for i, polluter in enumerate(pipeline.polluters):
        walk(polluter, f"polluters[{i}]", [], None)

    return PlanFacts(
        pipeline=pipeline,
        name=pipeline.name,
        leaves=tuple(leaves),
        opaque=tuple(opaque),
        composites=composites,
    )


def conditions_disjoint(a: ConditionFacts, b: ConditionFacts) -> bool:
    """True when the two conditions provably never fire on the same record."""
    if a.is_dead or b.is_dead:
        return True
    if not a.time.overlaps(b.time):
        return True
    for attr in a.constraints.keys() & b.constraints.keys():
        if a.constraints[attr].disjoint_from(b.constraints[attr]):
            return True
    return False
