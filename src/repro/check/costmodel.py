"""A per-operator cost model for predicting batch-mode speedup (ICE702).

The model is deliberately coarse: it answers "is batching this plan worth
anything at all?", not "what is the exact throughput". Each top-level
polluter costs one unit per record on the per-record path; on the batched
path its cost shrinks by a per-kernel-kind factor calibrated from the
committed ``BENCH_throughput.json`` numbers (record ~68.6k tuples/s vs
batched[256] ~190k on the bench box, a ~2.8x ceiling for fully fused
kernels). Fallback kernels run the identical per-row apply under a thin
batching loop, so their factor is ~1.0 — which is exactly why a
fallback-dominated plan sees no batch win and ICE702 flags it.

Predicted plan speedup is the ratio of total per-record cost to total
batched cost: ``n_ops / sum(batched_cost(op))``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.check.factbase import KernelPrediction, PlanFactBase

#: Predicted speedup below which ICE702 calls a plan fallback-dominated.
SPEEDUP_THRESHOLD = 1.5

#: Calibrated ceiling: bench-measured batched[256] / record throughput.
DEFAULT_FUSED_SPEEDUP = 2.8


@dataclass(frozen=True)
class CostModel:
    """Relative batched cost (per record, per operator) by kernel shape.

    ``fused`` is the cost of a standard kernel on its fastest path (bulk
    Gaussian draw): ``1 / measured speedup``. The other shapes interpolate:
    a vectorized mask still pays the per-row fired path, a row mask also
    pays per-row condition evaluation, and a fallback kernel is the
    sequential computation wearing a batch interface.
    """

    fused_cost: float = 1.0 / DEFAULT_FUSED_SPEEDUP
    vector_mask_cost: float = 0.55
    row_mask_cost: float = 0.8
    fallback_cost: float = 1.0

    def batched_cost(self, prediction: KernelPrediction) -> float:
        if prediction.kind != "standard":
            return self.fallback_cost
        if prediction.gaussian and prediction.vectorized_mask:
            return self.fused_cost
        if prediction.vectorized_mask:
            return self.vector_mask_cost
        return self.row_mask_cost

    def predicted_speedup(self, base: PlanFactBase) -> float:
        """Predicted batch-vs-record speedup for a whole plan (>= ~1.0)."""
        predictions = base.predictions
        if not predictions:
            return 1.0
        total = sum(self.batched_cost(p) for p in predictions)
        return len(predictions) / total

    @classmethod
    def from_bench(cls, path: str | Path) -> "CostModel":
        """Calibrate the fused-kernel cost from a ``BENCH_throughput.json``.

        Reads ``batched_speedup.speedup_by_mode["batched[256]"]`` — the
        measured ceiling for a standard-kernel plan at the reference batch
        size. Missing files or keys fall back to the committed defaults so
        analysis never depends on a bench having run.
        """
        try:
            data = json.loads(Path(path).read_text())
            measured = float(data["batched_speedup"]["speedup_by_mode"]["batched[256]"])
        except (OSError, KeyError, TypeError, ValueError):
            return cls()
        if measured <= 1.0:
            return cls()
        return cls(fused_cost=1.0 / measured)


#: The model the rules use; calibration is baked in from the committed bench.
DEFAULT_COST_MODEL = CostModel()


def predicted_batch_speedup(
    base: PlanFactBase, model: CostModel | None = None
) -> float:
    return (model or DEFAULT_COST_MODEL).predicted_speedup(base)
