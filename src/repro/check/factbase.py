"""The plan-fact base: one static analysis, shared by every engine.

Historically each engine re-derived its own slice of plan knowledge:
``repro.batch`` probed method identity to pick kernels, ``repro.check``'s
parallel rules re-ran the picklability sweep, and serve admission re-built
the whole analysis for byte-identical repeat submissions. This module is
the single home for those derivations. It computes a :class:`PlanFactBase`
— the existing abstract-interpretation facts from :mod:`repro.check.facts`
extended with per-polluter *kernel eligibility* (which kernel
:func:`repro.batch.kernels.compile_pipeline` will pick, with a
machine-readable reason), picklability, RNG needs, declarative-form
round-trippability, and plan-level *sort-stability* facts (does the plan
preserve event-time order and tuple multiplicity — the enabler for
watermark-bounded streaming delivery).

Consumers:

* :func:`repro.batch.kernels.compile_pipeline` asks :func:`predict_kernel`
  for its decisions and asserts cached decisions still match the live
  prediction;
* the ICE rule catalogue (:mod:`repro.check.rules`) reads effect /
  picklability / eligibility facts instead of re-probing;
* serve admission caches whole analysis reports keyed by the same
  canonical digest (:func:`plan_digest`).

Every cached fact is a pure function of the plan's *classes and
declarative config* — exactly what :func:`plan_digest` hashes — so equal
digests imply equal fact bases and the cache can never serve stale truth.
Method-identity probing (the ``type(p).apply is StandardPolluter.apply``
style gates) lives **only** in this module.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.check.facts import PlanFacts, plan_facts
from repro.core.composite import CompositePolluter
from repro.core.conditions.random import (
    AlwaysCondition,
    NeverCondition,
    ProbabilityCondition,
)
from repro.core.conditions.temporal import PatternProbabilityCondition
from repro.core.dependencies import TrackedPolluter
from repro.core.errors.static_numeric import GaussianNoise
from repro.core.pipeline import PollutionPipeline, _needs_rng
from repro.core.polluter import Polluter, StandardPolluter
from repro.errors import ConfigError

# ---------------------------------------------------------------------------
# Kernel eligibility: the one place that probes method identity
# ---------------------------------------------------------------------------

#: Mask strategies a standard kernel can compile to.
MASK_KINDS = ("always", "never", "probability", "pattern", "row")


def predict_mask_kind(condition: Any) -> str:
    """Classify a condition's mask strategy (a pure function of its class).

    The vectorized strategies are gated on the *exact* ``evaluate`` method
    being the library implementation: a subclass that overrides ``evaluate``
    must fall back to the per-row loop, which is the sequential computation
    in the sequential order and therefore always correct.
    """
    evaluate = type(condition).evaluate
    if evaluate is AlwaysCondition.evaluate:
        return "always"
    if evaluate is NeverCondition.evaluate:
        return "never"
    if evaluate is ProbabilityCondition.evaluate:
        return "probability"
    if evaluate is PatternProbabilityCondition.evaluate:
        return "pattern"
    return "row"


@dataclass(frozen=True)
class KernelPrediction:
    """Which kernel :func:`compile_pipeline` will build, and why.

    ``reason`` is a stable machine-readable slug; ``detail`` is the human
    sentence ``repro check --explain`` and ICE701 print. For standard
    kernels ``mask_kind`` names the compiled mask strategy and ``gaussian``
    flags the bulk-normal fast path.
    """

    kind: str  # "standard" | "fallback"
    mask_kind: str | None
    gaussian: bool
    reason: str
    detail: str

    @property
    def vectorized_mask(self) -> bool:
        return self.mask_kind in ("always", "never", "probability", "pattern")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "mask_kind": self.mask_kind,
            "gaussian": self.gaussian,
            "reason": self.reason,
            "detail": self.detail,
        }


def _fallback(reason: str, detail: str) -> KernelPrediction:
    return KernelPrediction(
        kind="fallback", mask_kind=None, gaussian=False, reason=reason, detail=detail
    )


def predict_kernel(polluter: Polluter) -> KernelPrediction:
    """Predict :func:`compile_pipeline`'s choice for one top-level polluter.

    This is the authoritative eligibility gate — the batch engine delegates
    to it, so the prediction *is* the decision. Reasons:

    ``composite``
        Composite modes and choice draws are inherently per-row.
    ``tracked``
        A :class:`TrackedPolluter` wrapper records history per record.
    ``custom-polluter``
        An unknown :class:`Polluter` subclass with its own ``apply``.
    ``overrides-apply`` / ``overrides-apply-fired``
        A :class:`StandardPolluter` subclass replaced part of the standard
        application path; the batch kernel can no longer replay it.
    ``standard``
        The exact library path — eligible for a fused mask + fired kernel.
    """
    if isinstance(polluter, CompositePolluter):
        return _fallback(
            "composite",
            f"composite polluter ({polluter.mode.value} mode) chooses and gates "
            "children per record; per-row apply is the exact semantics",
        )
    if isinstance(polluter, TrackedPolluter):
        return _fallback(
            "tracked",
            "tracked wrapper records error history per record; the history "
            "order is the per-row order",
        )
    if not isinstance(polluter, StandardPolluter):
        return _fallback(
            "custom-polluter",
            f"unknown polluter class {type(polluter).__name__!r} supplies its "
            "own apply(); no batch kernel exists for it",
        )
    if type(polluter).apply is not StandardPolluter.apply:
        return _fallback(
            "overrides-apply",
            f"{type(polluter).__name__!r} overrides StandardPolluter.apply; "
            "the kernel cannot assume the standard mask + fired split",
        )
    if type(polluter).apply_fired is not StandardPolluter.apply_fired:
        return _fallback(
            "overrides-apply-fired",
            f"{type(polluter).__name__!r} overrides StandardPolluter.apply_fired; "
            "the kernel cannot replay the fired path in bulk",
        )
    mask_kind = predict_mask_kind(polluter.condition)
    # Exact-type gate: a GaussianNoise subclass could change apply().
    gaussian = type(polluter.error) is GaussianNoise
    if gaussian:
        detail = "standard kernel with one bulk rng.normal draw per slab"
    elif mask_kind == "row":
        detail = (
            "standard kernel; condition "
            f"{type(polluter.condition).__name__!r} needs a per-row mask "
            "(stateful, value-dependent, composed, or custom evaluate)"
        )
    else:
        detail = f"standard kernel with a vectorized {mask_kind!r} mask"
    return KernelPrediction(
        kind="standard",
        mask_kind=mask_kind,
        gaussian=gaussian,
        reason="standard",
        detail=detail,
    )


# ---------------------------------------------------------------------------
# The canonical plan digest (moved here from repro.batch.kernels)
# ---------------------------------------------------------------------------


def _qualified_type(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def plan_digest(pipeline: PollutionPipeline) -> str | None:
    """A SHA-256 over the pipeline's declarative form, or ``None``.

    The digest hashes the canonical ``pipeline_to_config`` JSON *plus* the
    concrete classes of every polluter, condition, and error function.
    Compilation decisions and plan facts are pure functions of those
    classes (method identity and exact-type gates) and the config, so equal
    digests imply equal facts — a user subclass that serializes like a
    library class still changes the class fingerprint and therefore the
    key. Pipelines with no declarative form (custom polluter / condition /
    error classes) return ``None`` and are simply never cached.
    """
    from repro.core.serialize import pipeline_to_config

    try:
        config = pipeline_to_config(pipeline)
    except ConfigError:
        return None
    classes = []
    for polluter in pipeline.polluters:
        entry = _qualified_type(polluter)
        if isinstance(polluter, StandardPolluter):
            entry += (
                f":{_qualified_type(polluter.condition)}"
                f":{_qualified_type(polluter.error)}"
            )
        classes.append(entry)
    text = json.dumps(
        {"config": config, "classes": classes},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Per-polluter and plan-level fact records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolluterFactBase:
    """Facts about one *top-level* pipeline polluter.

    ``kernel`` is the batch-eligibility prediction; ``picklable`` /
    ``pickle_error`` record the worker-dispatch sweep; ``needs_rng`` the
    determinism audit input; ``declarative`` / ``config_error`` whether the
    polluter round-trips to JSON.
    """

    index: int
    name: str
    type_name: str
    kernel: KernelPrediction
    picklable: bool
    pickle_error: str | None
    needs_rng: bool
    declarative: bool
    config_error: str | None

    @property
    def location(self) -> str:
        return f"polluters[{self.index}]"

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "type": self.type_name,
            "kernel": self.kernel.to_dict(),
            "picklable": self.picklable,
            "pickle_error": self.pickle_error,
            "needs_rng": self.needs_rng,
            "declarative": self.declarative,
            "config_error": self.config_error,
        }


@dataclass(frozen=True)
class PlanFactBase:
    """Everything the engines need to know about one plan, computed once.

    ``facts`` is the flattened abstract interpretation
    (:class:`~repro.check.facts.PlanFacts`: per-leaf effect sets, condition
    constraints, statefulness). ``polluters`` adds the runtime-facing
    per-top-level-polluter facts. The remaining fields are plan-level
    aggregates:

    ``sort_stable``
        No leaf rewrites event timestamps or changes tuple multiplicity —
        the plan preserves event-time order and cardinality within every
        key, so streamed delivery below the low watermark is safe
        (ROADMAP item 2).
    ``stateful``
        Some leaf carries per-stream state (condition or error).
    ``stochastic``
        Some component draws from an RNG.
    ``deterministically_mergeable``
        An *unkeyed* parallel run of this plan is byte-identical to the
        sequential run. Only true for fully deterministic, multiplicity-
        and timestamp-preserving, stateless plans: per-shard RNG derivation
        makes any stochastic unkeyed plan reproducible per (seed, N) but
        not sequential-identical.
    """

    facts: PlanFacts
    polluters: tuple[PolluterFactBase, ...]
    digest: str | None
    sort_stable: bool
    stateful: bool
    stochastic: bool
    deterministically_mergeable: bool

    @property
    def name(self) -> str:
        return self.facts.name

    @property
    def predictions(self) -> tuple[KernelPrediction, ...]:
        return tuple(pf.kernel for pf in self.polluters)

    @property
    def fallbacks(self) -> tuple[PolluterFactBase, ...]:
        return tuple(pf for pf in self.polluters if pf.kernel.kind == "fallback")

    def to_dict(self) -> dict[str, Any]:
        return {
            "pipeline": self.name,
            "digest": self.digest,
            "sort_stable": self.sort_stable,
            "stateful": self.stateful,
            "stochastic": self.stochastic,
            "deterministically_mergeable": self.deterministically_mergeable,
            "polluters": [pf.to_dict() for pf in self.polluters],
        }


def _polluter_factbase(index: int, polluter: Polluter) -> PolluterFactBase:
    from repro.core.serialize import polluter_to_config

    pickle_error: str | None = None
    try:
        pickle.dumps(polluter, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - pickling raises anything
        pickle_error = f"{type(exc).__name__}: {exc}"
    config_error: str | None = None
    try:
        polluter_to_config(polluter)
    except ConfigError as exc:
        config_error = str(exc)
    return PolluterFactBase(
        index=index,
        name=polluter.name,
        type_name=type(polluter).__name__,
        kernel=predict_kernel(polluter),
        picklable=pickle_error is None,
        pickle_error=pickle_error,
        needs_rng=_needs_rng(polluter),
        declarative=config_error is None,
        config_error=config_error,
    )


def build_factbase(pipeline: PollutionPipeline) -> PlanFactBase:
    """Compute the full fact base for one pipeline (no caching)."""
    facts = plan_facts(pipeline)
    polluters = tuple(
        _polluter_factbase(i, p) for i, p in enumerate(pipeline.polluters)
    )
    sort_stable = not any(
        leaf.error.multiplicity or leaf.error.rewrites_timestamp
        for leaf in facts.leaves
    )
    stateful = any(
        leaf.condition.stateful or leaf.error.stateful for leaf in facts.leaves
    )
    stochastic = any(
        leaf.condition.stochastic or leaf.error.stochastic for leaf in facts.leaves
    )
    opaque = bool(facts.opaque) or not all(
        leaf.condition.analyzable and leaf.error.analyzable for leaf in facts.leaves
    )
    mergeable = sort_stable and not stateful and not stochastic and not opaque
    return PlanFactBase(
        facts=facts,
        polluters=polluters,
        digest=plan_digest(pipeline),
        sort_stable=sort_stable,
        stateful=stateful,
        stochastic=stochastic,
        deterministically_mergeable=mergeable,
    )


# ---------------------------------------------------------------------------
# The digest-keyed fact-base cache
# ---------------------------------------------------------------------------


class FactBaseCache:
    """An LRU of :class:`PlanFactBase` objects, keyed by :func:`plan_digest`.

    Sound because every stored fact is a pure function of classes +
    declarative config — the digest's exact preimage. The cached
    ``facts.pipeline`` reference may point at a *different but
    digest-equal* pipeline instance; consumers must treat the fact base as
    data about the plan's shape, never as a handle on live objects.

    Thread-safe; serve admission reviews plans from the event loop while
    worker threads compile.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, PlanFactBase] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> PlanFactBase | None:
        with self._lock:
            base = self._entries.get(digest)
            if base is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return base

    def put(self, digest: str, base: PlanFactBase) -> None:
        with self._lock:
            self._entries[digest] = base
            self._entries.move_to_end(digest)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
            }

    def publish(self, metrics: Any) -> None:
        """Surface the counters on a :class:`~repro.obs.metrics.MetricsRegistry`."""
        stats = self.stats()
        metrics.counter("factbase_cache_hits_total").value = stats["hits"]
        metrics.counter("factbase_cache_misses_total").value = stats["misses"]
        metrics.gauge("factbase_cache_entries").set(stats["entries"])


#: The process-wide fact-base cache (same keying as the kernel cache).
FACTBASE_CACHE = FactBaseCache()


def factbase_for(
    pipeline: PollutionPipeline,
    cache: FactBaseCache | None = FACTBASE_CACHE,
) -> PlanFactBase:
    """The fact base for one pipeline, via the digest-keyed cache.

    Pass ``cache=None`` to force a fresh build. Pipelines with no
    declarative form (``digest is None``) are always built fresh — their
    facts can depend on instances the digest cannot see.
    """
    if cache is None:
        return build_factbase(pipeline)
    digest = plan_digest(pipeline)
    if digest is None:
        return build_factbase(pipeline)
    base = cache.get(digest)
    if base is None:
        base = build_factbase(pipeline)
        cache.put(digest, base)
    return base
