"""The rule catalogue of the static plan analyzer.

Rule IDs are stable and grouped in families of one hundred:

* ``ICE0xx`` — config-level failures (the spec cannot even be built);
* ``ICE1xx`` — schema resolution (targets, condition reads, timestamps, keys);
* ``ICE2xx`` — error-function vs. attribute type and domain compatibility;
* ``ICE3xx`` — condition satisfiability (dead, tautological, mistimed);
* ``ICE4xx`` — determinism and analyzability audit;
* ``ICE5xx`` — runtime-safety: parallel execution (picklability, state,
  keyed-merge guarantees) and supervision composition (failure-policy vs.
  plan statefulness);
* ``ICE6xx`` — ordering-sensitive write conflicts between polluters;
* ``ICE7xx`` — performance lints: kernel fallbacks, fallback-dominated
  plans (cost-model predicted speedup), non-mergeable unkeyed parallel
  plans, stateful leaves inside batch slabs.

All facts the rules consume come from the shared
:class:`~repro.check.factbase.PlanFactBase` — the same fact base the batch
compiler and serve admission read — so the rules never re-probe
picklability, RNG needs, or kernel eligibility themselves.

New rules must be appended with fresh IDs; IDs are never reused, so reports
stay comparable across versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.costmodel import SPEEDUP_THRESHOLD, predicted_batch_speedup
from repro.check.factbase import PlanFactBase
from repro.check.facts import (
    Interval,
    LeafFacts,
    conditions_disjoint,
    domain_constraint,
)
from repro.check.options import CheckOptions
from repro.check.report import Diagnostic, Severity
from repro.core.conditions import AlwaysCondition
from repro.core.errors import (
    DelayTuple,
    DuplicateTuple,
    IncorrectCategory,
    SwapAttributes,
    TimestampJitter,
)
from repro.streaming.schema import DataType, Schema


@dataclass(frozen=True)
class Rule:
    """Catalogue entry: stable ID, slug, severity, summary, and fix hint."""

    rule_id: str
    slug: str
    severity: Severity
    family: str
    summary: str
    fix: str


RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule("ICE001", "config-invalid", Severity.ERROR, "config",
             "the declarative spec cannot be built into a plan",
             "fix the config key named in the diagnostic's location"),
        Rule("ICE101", "unknown-target-attribute", Severity.ERROR, "schema",
             "a polluter targets an attribute absent from the schema",
             "target a declared attribute, or add it to the schema"),
        Rule("ICE102", "unknown-condition-attribute", Severity.ERROR, "schema",
             "a condition reads an attribute absent from the schema",
             "read a declared attribute, or add it to the schema"),
        Rule("ICE103", "bad-timestamp-attribute", Severity.ERROR, "schema",
             "a native temporal error cannot resolve a usable timestamp attribute",
             "set timestamp_attribute to a numeric epoch-seconds attribute"),
        Rule("ICE104", "unknown-key-attribute", Severity.ERROR, "schema",
             "the key_by partitioning attribute is absent from the schema",
             "pass a key_by attribute that exists in the schema"),
        Rule("ICE201", "numeric-error-on-non-numeric", Severity.ERROR, "types",
             "a numeric-only error function targets a non-numeric attribute",
             "retarget a numeric attribute, or pick a type-agnostic error"),
        Rule("ICE202", "string-error-on-non-string", Severity.ERROR, "types",
             "a string-only error function targets a non-string attribute",
             "retarget a string/category attribute, or pick another error"),
        Rule("ICE203", "category-domain-mismatch", Severity.WARNING, "types",
             "an IncorrectCategory domain shares no values with the attribute's domain",
             "overlap the error's domain with the attribute's declared domain"),
        Rule("ICE204", "swap-attribute-arity", Severity.ERROR, "types",
             "SwapAttributes needs exactly two target attributes",
             "list exactly two attributes to swap"),
        Rule("ICE301", "dead-condition", Severity.ERROR, "conditions",
             "a condition is structurally unsatisfiable and can never fire",
             "loosen the condition until its constraints are satisfiable"),
        Rule("ICE302", "tautological-condition", Severity.INFO, "conditions",
             "a condition is always true despite looking restrictive",
             "use 'always', or drop the redundant constraint"),
        Rule("ICE303", "window-outside-stream", Severity.WARNING, "conditions",
             "a temporal window lies entirely outside the stream's time range",
             "move the window inside the stream's event-time range"),
        Rule("ICE304", "zero-probability", Severity.WARNING, "conditions",
             "a stochastic component can never fire (probability or intensity 0)",
             "raise the probability or pattern intensity above zero"),
        Rule("ICE305", "disabled-polluter", Severity.INFO, "conditions",
             "a polluter is deliberately disabled with an explicit 'never'",
             "remove the polluter, or drop the 'never' gate to re-enable it"),
        Rule("ICE401", "unseeded-stochastic-plan", Severity.WARNING, "determinism",
             "the plan needs an RNG but no seed is configured",
             "pass seed= (or --seed) to make runs reproducible"),
        Rule("ICE402", "unanalyzable-component", Severity.INFO, "determinism",
             "a component is opaque to static analysis (custom code)",
             "prefer declarative library components where analyzability matters"),
        Rule("ICE403", "non-declarative-plan", Severity.INFO, "determinism",
             "the plan has no declarative config form and cannot round-trip",
             "build the plan from declarative config types to enable round-trip"),
        Rule("ICE501", "unpicklable-component", Severity.ERROR, "parallel",
             "a plan component fails the picklability sweep",
             "remove unpicklable state (lambdas, open handles), or run sequentially"),
        Rule("ICE502", "stateful-under-unkeyed-parallelism", Severity.WARNING, "parallel",
             "a stateful component runs under unkeyed parallelism",
             "partition with key_by for a byte-identical keyed parallel run"),
        Rule("ICE503", "key-attribute-mutated", Severity.WARNING, "parallel",
             "a polluter mutates the key_by partitioning attribute",
             "stop mutating the key attribute, or partition by another key"),
        Rule("ICE504", "cross-record-dependency-under-parallelism", Severity.WARNING,
             "parallel",
             "an error-history dependency cannot cross shard boundaries",
             "run history-linked polluters sequentially, or key the stream"),
        Rule("ICE505", "multiplicity-under-parallelism", Severity.WARNING, "parallel",
             "drop/duplicate/timestamp-rewriting errors interact with parallel merge",
             "use key_by, or accept per-(seed, parallelism) reproducibility"),
        Rule("ICE506", "retry-with-stateful-polluter", Severity.WARNING, "supervision",
             "a RETRY failure policy re-dispatches into stateful or "
             "history-linked polluters",
             "prefer skip/dead-letter policies, or make the polluter stateless"),
        Rule("ICE601", "write-write-overlap", Severity.WARNING, "conflicts",
             "two polluters mutate the same attribute under overlapping conditions",
             "make the conditions disjoint, or link them with track/fired_recently"),
        Rule("ICE602", "condition-reads-polluted-attribute", Severity.WARNING, "conflicts",
             "a condition reads an attribute an earlier polluter may have polluted",
             "document the read-after-write with core.dependencies, or reorder"),
        Rule("ICE701", "kernel-fallback", Severity.INFO, "performance",
             "a polluter falls back to the per-record kernel under batching",
             "rebuild the component from library classes that compile to a "
             "standard kernel"),
        Rule("ICE702", "fallback-dominated-plan", Severity.WARNING, "performance",
             "predicted batch speedup is below threshold; batching buys little",
             "drop batch_size, or replace the fallback polluters it names"),
        Rule("ICE703", "unkeyed-parallel-nondeterministic-merge", Severity.WARNING,
             "performance",
             "an unkeyed plan under parallelism is not deterministically mergeable",
             "partition with key_by to make the parallel merge byte-identical"),
        Rule("ICE704", "stateful-leaf-defeats-slabs", Severity.INFO, "performance",
             "a stateful leaf forces per-row masks inside batch slabs",
             "hoist stateful components out of hot plans, or accept per-row masks"),
    )
}

#: Markers bracketing the generated rule table in ``DESIGN.md``. Exported
#: so ``scripts/update_rules_table.py`` and the parity test share them.
RULES_TABLE_BEGIN = (
    "<!-- rules-table:begin — generated by scripts/update_rules_table.py; "
    "do not edit by hand -->"
)
RULES_TABLE_END = "<!-- rules-table:end -->"


def rules_table_markdown() -> str:
    """The rule catalogue as a GitHub-markdown reference table.

    The single source for the ``DESIGN.md`` table:
    ``scripts/update_rules_table.py`` rewrites the block between
    :data:`RULES_TABLE_BEGIN`/:data:`RULES_TABLE_END`, and
    ``tests/check/test_rules_table.py`` asserts the committed document and
    the ``repro check --list-rules`` output both match this catalogue.
    """
    lines = [
        "| ID | Slug | Severity | What it catches | How to fix |",
        "|----|------|----------|-----------------|------------|",
    ]
    lines.extend(
        f"| {rule.rule_id} | {rule.slug} | {rule.severity.label} "
        f"| {rule.summary} | {rule.fix} |"
        for rule in RULES.values()
    )
    return "\n".join(lines) + "\n"


def run_rules(
    base: PlanFactBase, schema: Schema, options: CheckOptions
) -> list[Diagnostic]:
    """Run every rule against one plan's shared fact base."""
    ctx = _Context(base, schema, options)
    ctx.schema_rules()
    ctx.type_rules()
    ctx.condition_rules()
    ctx.determinism_rules()
    ctx.parallel_rules()
    ctx.supervision_rules()
    ctx.conflict_rules()
    ctx.performance_rules()
    return ctx.diagnostics


class _Context:
    def __init__(
        self, base: PlanFactBase, schema: Schema, options: CheckOptions
    ) -> None:
        self.base = base
        self.plan = base.facts
        self.schema = schema
        self.options = options
        self.diagnostics: list[Diagnostic] = []

    def emit(
        self,
        rule_id: str,
        message: str,
        *,
        location: str = "",
        polluter: str | None = None,
        severity: Severity | None = None,
    ) -> None:
        rule = RULES[rule_id]
        self.diagnostics.append(
            Diagnostic(
                rule=rule_id,
                severity=rule.severity if severity is None else severity,
                message=message,
                location=location,
                polluter=polluter,
                pipeline=self.plan.name,
            )
        )

    # -- ICE1xx: schema resolution ----------------------------------------

    def schema_rules(self) -> None:
        known = ", ".join(sorted(self.schema.names))
        for leaf in self.plan.leaves:
            for attr in leaf.attributes:
                if attr not in self.schema:
                    self.emit(
                        "ICE101",
                        f"polluter targets attribute {attr!r} which is not in the "
                        f"schema (known: {known})",
                        location=leaf.path,
                        polluter=leaf.name,
                    )
            for attr in sorted(leaf.condition.reads):
                if attr not in self.schema:
                    self.emit(
                        "ICE102",
                        f"condition reads attribute {attr!r} which is not in the "
                        f"schema (known: {known})",
                        location=leaf.path,
                        polluter=leaf.name,
                    )
            self._timestamp_rules(leaf)
        key = self.options.key_by
        if key is not None and key not in self.schema:
            self.emit(
                "ICE104",
                f"key_by attribute {key!r} is not in the schema (known: {known})",
            )

    def _timestamp_rules(self, leaf: LeafFacts) -> None:
        error = leaf.error.leaf
        if not leaf.error.native_temporal:
            return
        explicit = leaf.error.timestamp_attribute
        if isinstance(error, DelayTuple) and explicit is None and len(leaf.attributes) != 1:
            self.emit(
                "ICE103",
                f"{type(error).__name__} targets {len(leaf.attributes)} attributes; "
                "it needs an explicit timestamp_attribute or exactly one target",
                location=leaf.path,
                polluter=leaf.name,
            )
            return
        if isinstance(error, TimestampJitter) and explicit is None and not leaf.attributes:
            self.emit(
                "ICE103",
                "TimestampJitter has neither a timestamp_attribute nor target "
                "attributes to jitter",
                location=leaf.path,
                polluter=leaf.name,
            )
            return
        if (
            isinstance(error, DuplicateTuple)
            and error.spacing.seconds > 0
            and explicit is None
        ):
            self.emit(
                "ICE103",
                "DuplicateTuple spacing has no effect without a "
                "timestamp_attribute to shift",
                location=leaf.path,
                polluter=leaf.name,
                severity=Severity.WARNING,
            )
            return
        resolved = explicit
        if resolved is None and isinstance(error, DelayTuple) and len(leaf.attributes) == 1:
            resolved = leaf.attributes[0]
        if resolved is None and isinstance(error, TimestampJitter) and leaf.attributes:
            resolved = leaf.attributes[0]
        if resolved is None:
            return
        if resolved not in self.schema:
            if resolved not in leaf.attributes:  # ICE101 already covers targets
                self.emit(
                    "ICE103",
                    f"timestamp attribute {resolved!r} is not in the schema",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            return
        if not self.schema[resolved].dtype.is_numeric:
            self.emit(
                "ICE103",
                f"timestamp attribute {resolved!r} has non-numeric dtype "
                f"{self.schema[resolved].dtype.value!r}; timestamps must be "
                "numeric epoch seconds",
                location=leaf.path,
                polluter=leaf.name,
            )

    # -- ICE2xx: type/domain compatibility --------------------------------

    def type_rules(self) -> None:
        for leaf in self.plan.leaves:
            error = leaf.error
            described = error.describe()
            in_schema = [a for a in leaf.attributes if a in self.schema]
            if error.requires == "numeric":
                for attr in in_schema:
                    dtype = self.schema[attr].dtype
                    if not dtype.is_numeric:
                        self.emit(
                            "ICE201",
                            f"numeric error {described!r} targets {dtype.value} "
                            f"attribute {attr!r}",
                            location=leaf.path,
                            polluter=leaf.name,
                        )
            elif error.requires == "string":
                for attr in in_schema:
                    dtype = self.schema[attr].dtype
                    if dtype not in (DataType.STRING, DataType.CATEGORY):
                        self.emit(
                            "ICE202",
                            f"string error {described!r} targets {dtype.value} "
                            f"attribute {attr!r}",
                            location=leaf.path,
                            polluter=leaf.name,
                        )
            if isinstance(error.leaf, IncorrectCategory):
                for attr in in_schema:
                    declared = self.schema[attr].domain
                    if self.schema[attr].dtype is DataType.CATEGORY and declared:
                        overlap = set(error.leaf.domain) & set(declared)
                        if not overlap:
                            self.emit(
                                "ICE203",
                                f"IncorrectCategory domain {sorted(error.leaf.domain)} "
                                f"shares no values with the declared domain of "
                                f"{attr!r} ({sorted(declared)}); every substitution "
                                "will violate the schema",
                                location=leaf.path,
                                polluter=leaf.name,
                            )
            if isinstance(error.leaf, SwapAttributes) and len(leaf.attributes) != 2:
                self.emit(
                    "ICE204",
                    f"SwapAttributes needs exactly 2 target attributes, got "
                    f"{len(leaf.attributes)}",
                    location=leaf.path,
                    polluter=leaf.name,
                )

    # -- ICE3xx: condition satisfiability ---------------------------------

    def condition_rules(self) -> None:
        for leaf in self.plan.leaves:
            facts = leaf.condition
            for cause in facts.dead_of_kind("contradiction"):
                self.emit(
                    "ICE301",
                    f"condition can never fire: {cause.message}",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            for cause in facts.dead_of_kind("zero-probability"):
                self.emit(
                    "ICE304",
                    f"polluter can never fire: {cause.message}",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            if facts.dead_of_kind("never"):
                self.emit(
                    "ICE305",
                    "polluter is disabled by an explicit 'never' condition",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            if leaf.error.zero_intensity and not facts.is_dead:
                self.emit(
                    "ICE304",
                    f"error {leaf.error.describe()!r} has zero intensity "
                    "everywhere; it will never change a value",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            self._domain_rules(leaf)
            self._window_rules(leaf)

    def _domain_rules(self, leaf: LeafFacts) -> None:
        facts = leaf.condition
        for attr, constraint in sorted(facts.constraints.items()):
            if attr not in self.schema:
                continue
            declared = domain_constraint(self.schema[attr])
            if declared is None:
                continue
            if constraint.disjoint_from(declared):
                if not facts.dead_of_kind("contradiction"):
                    self.emit(
                        "ICE301",
                        f"condition requires {attr!r} in {constraint.describe()} "
                        f"but its declared domain is {declared.describe()}; the "
                        "ranges cannot overlap",
                        location=leaf.path,
                        polluter=leaf.name,
                    )
            elif declared.interval.unbounded is False and constraint.interval.contains(
                declared.interval
            ) and constraint.allowed is None and not constraint.interval.unbounded:
                self.emit(
                    "ICE302",
                    f"condition range {constraint.interval.describe()} on {attr!r} "
                    f"covers its entire declared domain "
                    f"{declared.interval.describe()}; the condition is always "
                    "true for in-domain values",
                    location=leaf.path,
                    polluter=leaf.name,
                )
        if facts.always_true and not leaf.condition.stochastic:
            if not isinstance(leaf.raw_condition, AlwaysCondition):
                self.emit(
                    "ICE302",
                    "condition is structurally always true; consider 'always' "
                    "or removing the condition",
                    location=leaf.path,
                    polluter=leaf.name,
                )

    def _window_rules(self, leaf: LeafFacts) -> None:
        if self.options.time_range is None:
            return
        start, end = self.options.time_range
        stream = Interval(float(start), float(end))
        facts = leaf.condition
        if facts.is_dead:
            return
        if not facts.time.unbounded and not facts.time.overlaps(stream):
            self.emit(
                "ICE303",
                f"condition's temporal window {facts.time.describe()} lies "
                f"entirely outside the stream's time range {stream.describe()}",
                location=leaf.path,
                polluter=leaf.name,
            )
        support = leaf.error.support
        if not support.unbounded and not support.empty and not support.overlaps(stream):
            self.emit(
                "ICE303",
                f"error's active window {support.describe()} lies entirely "
                f"outside the stream's time range {stream.describe()}; the "
                "pattern intensity is 0 for every record",
                location=leaf.path,
                polluter=leaf.name,
            )

    # -- ICE4xx: determinism and analyzability ----------------------------

    def determinism_rules(self) -> None:
        if self.options.seed is None:
            stochastic = [pf.name for pf in self.base.polluters if pf.needs_rng]
            if stochastic:
                self.emit(
                    "ICE401",
                    f"plan needs an RNG ({', '.join(sorted(stochastic))}) but no "
                    "seed is configured; runs will not be reproducible",
                    location="polluters",
                )
        for leaf in self.plan.leaves:
            if not leaf.condition.analyzable:
                self.emit(
                    "ICE402",
                    f"condition {leaf.raw_condition.describe()!r} is opaque to "
                    "static analysis; satisfiability and conflicts cannot be "
                    "checked",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            if not leaf.error.analyzable:
                self.emit(
                    "ICE402",
                    f"error {leaf.error.describe()!r} is opaque to static "
                    "analysis; type compatibility cannot be checked",
                    location=leaf.path,
                    polluter=leaf.name,
                )
        for path, type_name in self.plan.opaque:
            self.emit(
                "ICE402",
                f"polluter of unknown type {type_name!r} is opaque to static "
                "analysis",
                location=path,
            )
        for pf in self.base.polluters:
            if not pf.declarative:
                self.emit(
                    "ICE403",
                    f"polluter has no declarative config form ({pf.config_error}); "
                    "the plan cannot round-trip to JSON",
                    location=pf.location,
                    polluter=pf.name,
                )

    # -- ICE5xx: parallel safety ------------------------------------------

    def parallel_rules(self) -> None:
        parallel = self.options.parallel
        severity = Severity.ERROR if parallel else Severity.INFO
        for pf in self.base.polluters:
            if not pf.picklable:
                self.emit(
                    "ICE501",
                    f"polluter cannot be pickled for worker dispatch "
                    f"({pf.pickle_error}); parallel execution will "
                    "fail its picklability sweep",
                    location=pf.location,
                    polluter=pf.name,
                    severity=severity,
                )
        if not parallel:
            return
        key = self.options.key_by
        for leaf in self.plan.leaves:
            stateful = leaf.condition.stateful or leaf.error.stateful
            if stateful and key is None:
                self.emit(
                    "ICE502",
                    "stateful component under unkeyed parallelism: per-stream "
                    "state is split across workers, so output differs from the "
                    "sequential run (use key_by for a keyed, byte-identical plan)",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            if key is not None and key in leaf.writes:
                self.emit(
                    "ICE503",
                    f"polluter mutates the key_by attribute {key!r}; records "
                    "are partitioned before pollution, so downstream keyed "
                    "consumers will see keys the partitioner never routed",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            if leaf.condition.depends_on or leaf.tracked_as is not None:
                self.emit(
                    "ICE504",
                    "error-history dependency cannot cross shard boundaries; "
                    "fired-recently links only see events from the same worker",
                    location=leaf.path,
                    polluter=leaf.name,
                )
            if leaf.error.multiplicity or leaf.error.rewrites_timestamp:
                if key is None:
                    self.emit(
                        "ICE505",
                        f"native temporal error {leaf.error.describe()!r} under "
                        "unkeyed parallelism: tuple multiplicity and timestamps "
                        "vary with worker count; results are only reproducible "
                        "per (seed, parallelism)",
                        location=leaf.path,
                        polluter=leaf.name,
                    )
                elif leaf.error.rewrites_timestamp:
                    self.emit(
                        "ICE505",
                        f"error {leaf.error.describe()!r} rewrites event "
                        "timestamps; the keyed merge re-sorts on the new times, "
                        "so late records can interleave differently than a "
                        "sequential run emits them",
                        location=leaf.path,
                        polluter=leaf.name,
                    )

    # -- ICE5xx (cont.): supervision composition ---------------------------

    def supervision_rules(self) -> None:
        """Failure-policy vs. plan-statefulness composition (ICE506).

        A RETRY policy re-dispatches the failed record into the same
        operator instance. For a stateless polluter that is idempotent:
        every attempt draws from the record-seeded stream and sees the same
        world. A *stateful* condition or error (counters, frozen values,
        markov chains) or a *history-linked* one (track/fired_recently) has
        already advanced its state during the failed attempt, so the retry
        — and every record after it — sees different state than an
        unfaulted run. Fires regardless of parallelism: the hazard lives in
        the supervisor, not the coordinator.
        """
        if self.options.failure_policy != "retry":
            return
        for leaf in self.plan.leaves:
            reasons = []
            if leaf.condition.stateful:
                reasons.append("a stateful condition")
            if leaf.error.stateful:
                reasons.append("a stateful error function")
            if leaf.condition.depends_on:
                reasons.append("a fired-recently dependency")
            if leaf.tracked_as is not None:
                reasons.append("tracked error history")
            if not reasons:
                continue
            self.emit(
                "ICE506",
                f"RETRY failure policy with {', '.join(reasons)}: a failed "
                "attempt has already advanced internal state, so the retried "
                "record (and all records after it) diverge from an unfaulted "
                "run; prefer skip/dead-letter, or make the polluter "
                "stateless",
                location=leaf.path,
                polluter=leaf.name,
            )

    # -- ICE6xx: ordering-sensitive conflicts ------------------------------

    def _domain_dead(self, leaf: LeafFacts) -> bool:
        """True when the schema's declared domains prove the condition dead
        (facts-level deadness is structural only; it cannot see the schema)."""
        if leaf.condition.is_dead:
            return True
        for attr, constraint in leaf.condition.constraints.items():
            if attr not in self.schema:
                continue
            declared = domain_constraint(self.schema[attr])
            if declared is not None and constraint.disjoint_from(declared):
                return True
        return False

    def conflict_rules(self) -> None:
        leaves = [leaf for leaf in self.plan.leaves if not self._domain_dead(leaf)]
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                first, second = leaves[i], leaves[j]
                if self.plan.mutually_exclusive(first, second):
                    continue
                if self._dependency_linked(first, second):
                    continue
                shared = sorted(first.writes & second.writes)
                if shared and not conditions_disjoint(first.condition, second.condition):
                    self.emit(
                        "ICE601",
                        f"polluters {first.name!r} ({first.path}) and "
                        f"{second.name!r} ({second.path}) both mutate "
                        f"{shared} under conditions that can overlap; the "
                        "result depends on pipeline order (make the link "
                        "explicit with core.dependencies.track/fired_recently, "
                        "or make the conditions disjoint)",
                        location=second.path,
                        polluter=second.name,
                    )
                reads_polluted = sorted(second.condition.reads & first.writes)
                if reads_polluted and not conditions_disjoint(
                    first.condition, second.condition
                ):
                    self.emit(
                        "ICE602",
                        f"condition of {second.name!r} reads {reads_polluted} "
                        f"which {first.name!r} ({first.path}) may have already "
                        "polluted; the condition sees post-error values (if "
                        "intentional, document it with core.dependencies)",
                        location=second.path,
                        polluter=second.name,
                    )

    @staticmethod
    def _dependency_linked(first: LeafFacts, second: LeafFacts) -> bool:
        first_names = {first.name} | ({first.tracked_as} if first.tracked_as else set())
        second_names = {second.name} | (
            {second.tracked_as} if second.tracked_as else set()
        )
        return bool(
            first_names & set(second.condition.depends_on)
            or second_names & set(first.condition.depends_on)
        )

    # -- ICE7xx: performance lints -----------------------------------------

    def performance_rules(self) -> None:
        """Batch/parallel performance lints over the shared fact base.

        ICE701/702/704 only fire when the run actually intends to batch
        (``options.batch_size > 1``): a fallback kernel costs nothing on
        the per-record path. ICE703 fires for unkeyed parallel intent —
        the one mode where "reproducible" and "byte-identical to
        sequential" silently diverge.
        """
        if self.options.batched:
            for pf in self.base.fallbacks:
                self.emit(
                    "ICE701",
                    f"polluter compiles to the per-record fallback kernel "
                    f"[{pf.kernel.reason}]: {pf.kernel.detail}",
                    location=pf.location,
                    polluter=pf.name,
                )
            speedup = predicted_batch_speedup(self.base)
            if self.base.polluters and speedup < SPEEDUP_THRESHOLD:
                slow = [
                    f"{pf.name} ({pf.kernel.reason})"
                    for pf in self.base.polluters
                    if pf.kernel.kind == "fallback" or not pf.kernel.vectorized_mask
                ]
                self.emit(
                    "ICE702",
                    f"predicted batch speedup is {speedup:.2f}x (threshold "
                    f"{SPEEDUP_THRESHOLD:.1f}x): the plan is dominated by "
                    f"per-record work in {', '.join(slow)}; "
                    f"batch_size={self.options.batch_size} buys little",
                    location="polluters",
                )
            for leaf in self.plan.leaves:
                parts = []
                if leaf.condition.stateful:
                    parts.append("condition")
                if leaf.error.stateful:
                    parts.append(f"error {leaf.error.describe()!r}")
                if parts:
                    self.emit(
                        "ICE704",
                        f"stateful {' and '.join(parts)} must see rows one at "
                        "a time, so the kernel runs per-row inside every slab; "
                        "batching only amortizes the loop overhead here",
                        location=leaf.path,
                        polluter=leaf.name,
                    )
        if (
            self.options.parallel
            and self.options.key_by is None
            and not self.base.deterministically_mergeable
        ):
            why = []
            if self.base.stochastic:
                why.append("stochastic draws are derived per shard")
            if self.base.stateful:
                why.append("per-stream state is split across workers")
            if not self.base.sort_stable:
                why.append("tuple multiplicity/timestamps vary with the merge")
            if not why:
                why.append("opaque components defeat the mergeability proof")
            self.emit(
                "ICE703",
                f"unkeyed plan at parallelism {self.options.parallelism} is not "
                f"deterministically mergeable ({'; '.join(why)}); output is "
                "reproducible per (seed, parallelism) but not byte-identical "
                "to the sequential run",
                location="polluters",
            )
