"""Static analysis of pollution plans (``repro check``).

Inspects a :class:`~repro.core.pipeline.PollutionPipeline` together with a
:class:`~repro.streaming.schema.Schema` and execution options — without
executing the stream — and emits structured diagnostics with stable rule
IDs (``ICE101 unknown-target-attribute``, ``ICE301 dead-condition``, ...).

Three entry points:

* :func:`analyze` / :func:`analyze_config` — the library API;
* :func:`preflight` — the hook ``pollute(check=...)`` runs before execution;
* ``repro check`` — the CLI subcommand (see :mod:`repro.cli`).
"""

from repro.check.analyzer import analyze, analyze_config
from repro.check.facts import plan_facts
from repro.check.options import CheckOptions
from repro.check.preflight import CHECK_MODES, PlanCheckWarning, preflight
from repro.check.report import CheckReport, Diagnostic, Severity
from repro.check.rules import RULES, Rule

__all__ = [
    "CHECK_MODES",
    "CheckOptions",
    "CheckReport",
    "Diagnostic",
    "PlanCheckWarning",
    "RULES",
    "Rule",
    "Severity",
    "analyze",
    "analyze_config",
    "plan_facts",
    "preflight",
]
