"""Static analysis of pollution plans (``repro check``).

Inspects a :class:`~repro.core.pipeline.PollutionPipeline` together with a
:class:`~repro.streaming.schema.Schema` and execution options — without
executing the stream — and emits structured diagnostics with stable rule
IDs (``ICE101 unknown-target-attribute``, ``ICE301 dead-condition``, ...).

Three entry points:

* :func:`analyze` / :func:`analyze_config` — the library API;
* :func:`preflight` — the hook ``pollute(check=...)`` runs before execution;
* ``repro check`` — the CLI subcommand (see :mod:`repro.cli`).
"""

from repro.check.analyzer import analyze, analyze_config
from repro.check.costmodel import CostModel, predicted_batch_speedup
from repro.check.explain import plan_summary, render_explain
from repro.check.factbase import (
    FACTBASE_CACHE,
    FactBaseCache,
    KernelPrediction,
    PlanFactBase,
    PolluterFactBase,
    build_factbase,
    factbase_for,
    plan_digest,
    predict_kernel,
)
from repro.check.facts import plan_facts
from repro.check.options import CheckOptions
from repro.check.preflight import CHECK_MODES, PlanCheckWarning, preflight
from repro.check.report import CheckReport, Diagnostic, Severity
from repro.check.rules import RULES, Rule

__all__ = [
    "CHECK_MODES",
    "CheckOptions",
    "CheckReport",
    "CostModel",
    "Diagnostic",
    "FACTBASE_CACHE",
    "FactBaseCache",
    "KernelPrediction",
    "PlanCheckWarning",
    "PlanFactBase",
    "PolluterFactBase",
    "RULES",
    "Rule",
    "Severity",
    "analyze",
    "analyze_config",
    "build_factbase",
    "factbase_for",
    "plan_digest",
    "plan_facts",
    "plan_summary",
    "predict_kernel",
    "predicted_batch_speedup",
    "preflight",
    "render_explain",
]
