"""Entry points of the static plan analyzer.

:func:`analyze` inspects in-memory :class:`PollutionPipeline` objects;
:func:`analyze_config` builds a pipeline from a declarative spec first and
turns any :class:`ConfigError` into an ``ICE001`` diagnostic (with the
JSON-path location the config builders attach), so a broken config file
still produces a structured report instead of a traceback.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.check.factbase import FACTBASE_CACHE, FactBaseCache, factbase_for
from repro.check.options import CheckOptions
from repro.check.report import CheckReport, Diagnostic, Severity
from repro.check.rules import run_rules
from repro.core.config import pipeline_from_config
from repro.core.pipeline import PollutionPipeline
from repro.errors import ConfigError
from repro.streaming.schema import Schema


def analyze(
    pipelines: PollutionPipeline | Sequence[PollutionPipeline],
    schema: Schema,
    options: CheckOptions | None = None,
    *,
    cache: FactBaseCache | None = FACTBASE_CACHE,
) -> CheckReport:
    """Statically analyze one or more pipelines against a schema.

    Never executes the plan, never consumes RNG state, never mutates the
    pipeline — safe to call as a pre-flight on a bound pipeline. The fact
    base each rule reads is served from the digest-keyed ``cache`` (the
    process-wide :data:`~repro.check.factbase.FACTBASE_CACHE` by default),
    so repeat analyses of the same plan skip the fact build entirely.
    """
    if isinstance(pipelines, PollutionPipeline):
        pipelines = [pipelines]
    opts = options or CheckOptions()
    diagnostics: list[Diagnostic] = []
    for pipeline in pipelines:
        diagnostics.extend(run_rules(factbase_for(pipeline, cache), schema, opts))
    return CheckReport(diagnostics)


def analyze_config(
    spec: Mapping[str, Any],
    schema: Schema,
    options: CheckOptions | None = None,
) -> CheckReport:
    """Build a pipeline from a declarative spec and analyze it.

    A spec that fails to build yields a single ``ICE001`` error diagnostic
    whose location is the JSON path of the offending key.
    """
    try:
        pipeline = pipeline_from_config(spec)
    except ConfigError as exc:
        return CheckReport(
            [
                Diagnostic(
                    rule="ICE001",
                    severity=Severity.ERROR,
                    message=f"config cannot be built: {exc.args[0]}",
                    location=exc.path or "",
                )
            ]
        )
    return analyze(pipeline, schema, options)
