"""Human- and machine-readable dumps of the plan-fact base.

``repro check --explain`` renders :func:`render_explain` — one block per
pipeline: plan-level facts (digest, sort stability, mergeability, the cost
model's predicted batch speedup), then each top-level polluter's kernel
eligibility with its machine-readable reason, then the per-leaf effect
sets and condition/error facts. ``repro check --format json`` embeds
:func:`plan_summary`, the same facts as data.
"""

from __future__ import annotations

from typing import Any

from repro.check.costmodel import (
    SPEEDUP_THRESHOLD,
    CostModel,
    predicted_batch_speedup,
)
from repro.check.factbase import PlanFactBase
from repro.check.facts import LeafFacts


def _yn(flag: bool) -> str:
    return "yes" if flag else "no"


def leaf_to_dict(leaf: LeafFacts) -> dict[str, Any]:
    """Compact JSON form of one leaf's effect and behaviour facts."""
    return {
        "path": leaf.path,
        "name": leaf.name,
        "writes": sorted(leaf.writes),
        "reads": sorted(leaf.condition.reads),
        "tracked_as": leaf.tracked_as,
        "condition": {
            "p_max": leaf.condition.p_max,
            "stochastic": leaf.condition.stochastic,
            "stateful": leaf.condition.stateful,
            "analyzable": leaf.condition.analyzable,
            "dead": [c.kind for c in leaf.condition.dead],
            "time": leaf.condition.time.describe(),
            "depends_on": list(leaf.condition.depends_on),
        },
        "error": {
            "describe": leaf.error.describe(),
            "requires": leaf.error.requires,
            "stochastic": leaf.error.stochastic,
            "stateful": leaf.error.stateful,
            "analyzable": leaf.error.analyzable,
            "multiplicity": leaf.error.multiplicity,
            "rewrites_timestamp": leaf.error.rewrites_timestamp,
        },
    }


def plan_summary(base: PlanFactBase, model: CostModel | None = None) -> dict[str, Any]:
    """The fact base as JSON-able data (the ``facts`` key of ``--format json``)."""
    out = base.to_dict()
    out["predicted_batch_speedup"] = round(predicted_batch_speedup(base, model), 3)
    out["speedup_threshold"] = SPEEDUP_THRESHOLD
    out["leaves"] = [leaf_to_dict(leaf) for leaf in base.facts.leaves]
    return out


def render_explain(base: PlanFactBase, model: CostModel | None = None) -> str:
    """One human-readable fact block per plan, for ``repro check --explain``."""
    lines: list[str] = []
    digest = (base.digest or "<non-declarative>")[:12]
    lines.append(f"pipeline {base.name!r}  digest={digest}")
    lines.append(
        f"  sort_stable={_yn(base.sort_stable)}  stateful={_yn(base.stateful)}  "
        f"stochastic={_yn(base.stochastic)}  "
        f"deterministically_mergeable={_yn(base.deterministically_mergeable)}"
    )
    speedup = predicted_batch_speedup(base, model)
    marker = "" if speedup >= SPEEDUP_THRESHOLD else "  <-- fallback-dominated"
    lines.append(
        f"  predicted batch speedup: {speedup:.2f}x "
        f"(threshold {SPEEDUP_THRESHOLD:.1f}x){marker}"
    )
    lines.append("  kernels:")
    for pf in base.polluters:
        k = pf.kernel
        shape = k.kind if k.kind == "fallback" else (
            "standard/gaussian" if k.gaussian else f"standard/{k.mask_kind}-mask"
        )
        lines.append(
            f"    [{pf.index}] {pf.name!r} ({pf.type_name}): {shape} "
            f"[{k.reason}]"
        )
        lines.append(f"        {k.detail}")
        lines.append(
            f"        picklable={_yn(pf.picklable)}  "
            f"needs_rng={_yn(pf.needs_rng)}  declarative={_yn(pf.declarative)}"
        )
        if pf.pickle_error:
            lines.append(f"        pickle error: {pf.pickle_error}")
    if base.facts.leaves:
        lines.append("  leaves:")
    for leaf in base.facts.leaves:
        lines.append(f"    {leaf.path} {leaf.name!r}")
        writes = ", ".join(sorted(leaf.writes)) or "-"
        reads = ", ".join(sorted(leaf.condition.reads)) or "-"
        lines.append(f"        writes: {writes}    reads: {reads}")
        cond = leaf.condition
        lines.append(
            f"        condition: p_max={cond.p_max:.2f}  "
            f"stochastic={_yn(cond.stochastic)}  stateful={_yn(cond.stateful)}  "
            f"time={cond.time.describe()}"
        )
        err = leaf.error
        flags = []
        if err.requires:
            flags.append(f"requires={err.requires}")
        if err.stateful:
            flags.append("stateful")
        if err.multiplicity:
            flags.append("multiplicity")
        if err.rewrites_timestamp:
            flags.append("rewrites-timestamp")
        suffix = f"  ({', '.join(flags)})" if flags else ""
        lines.append(f"        error: {err.describe()!r}{suffix}")
    for path, type_name in base.facts.opaque:
        lines.append(f"    {path}: opaque polluter of type {type_name!r}")
    return "\n".join(lines)
