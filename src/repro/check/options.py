"""Execution options the static analyzer checks a plan against.

A plan that is fine sequentially may be unsafe at ``parallelism=4``, and a
temporal window is only provably dead if the analyzer knows the stream's
time range — :class:`CheckOptions` carries exactly that context.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckOptions:
    """How the plan is intended to be executed.

    ``seed``
        The RNG seed the run will use; ``None`` means unseeded (triggers the
        determinism audit for stochastic plans).
    ``parallelism``
        Intended worker count; values > 1 enable the parallel-safety rules.
    ``key_by``
        The partitioning attribute for keyed parallel runs (``None`` for
        unkeyed or sequential execution). Only string attribute selectors
        are analyzable; callables are ignored.
    ``time_range``
        Inclusive ``(start, end)`` event-time bounds of the stream, in epoch
        seconds. When set, temporal windows entirely outside this range are
        flagged as dead.
    ``failure_policy``
        The intended failure-policy *action* (``"fail_fast"``, ``"skip"``,
        ``"retry"``, ``"dead_letter"``, or ``None`` for unsupervised
        execution). Enables the supervision-composition rules — e.g. a
        RETRY policy re-dispatching into stateful polluters (ICE506).
    ``batch_size``
        Intended micro-batch slab size; values > 1 enable the ICE7xx
        performance lints (fallback kernels, fallback-dominated plans,
        stateful leaves defeating slabs).
    """

    seed: int | None = None
    parallelism: int | None = None
    key_by: str | None = None
    time_range: tuple[int, int] | None = None
    failure_policy: str | None = None
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.time_range is not None:
            start, end = self.time_range
            if end < start:
                raise ValueError(
                    f"time_range end ({end}) precedes start ({start})"
                )

    @property
    def parallel(self) -> bool:
        return self.parallelism is not None and self.parallelism > 1

    @property
    def batched(self) -> bool:
        return self.batch_size is not None and self.batch_size > 1
