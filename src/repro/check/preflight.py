"""Pre-flight hook wiring the analyzer into ``pollute()`` and the parallel
runtime.

The runner calls :func:`preflight` once per run, before any record flows.
``mode`` is the user-facing ``check=`` argument:

* ``"error"`` — raise :class:`PollutionError` when the report has
  error-severity diagnostics (warnings are still emitted as warnings);
* ``"warn"`` (default) — emit one :class:`PlanCheckWarning` summarizing all
  warning-or-worse diagnostics and carry on;
* ``"off"`` — skip analysis entirely.

The analysis is pure (no RNG draws, no pipeline mutation), so enabling it
cannot change the polluted output.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.check.analyzer import analyze
from repro.check.options import CheckOptions
from repro.check.report import CheckReport, Severity
from repro.core.pipeline import PollutionPipeline
from repro.errors import PollutionError
from repro.streaming.schema import Schema

CHECK_MODES = ("error", "warn", "off")


class PlanCheckWarning(UserWarning):
    """A pre-flight plan check found warning-or-worse diagnostics."""


def preflight(
    pipelines: Sequence[PollutionPipeline],
    schema: Schema | None,
    mode: str,
    *,
    seed: int | None = None,
    parallelism: int | None = None,
    key_by: str | None = None,
    failure_policy: object | None = None,
    batch_size: int | None = None,
) -> CheckReport | None:
    """Run the static analyzer as a pre-flight; returns the report (or
    ``None`` when skipped).

    ``failure_policy`` accepts the runner's
    :class:`~repro.streaming.supervision.FailurePolicy` (or an action-name
    string) and is reduced to its action for the supervision-composition
    rules.
    """
    if mode not in CHECK_MODES:
        raise PollutionError(
            f"check must be one of {CHECK_MODES}, got {mode!r}"
        )
    if mode == "off" or schema is None or not pipelines:
        return None
    action = getattr(failure_policy, "action", failure_policy)
    options = CheckOptions(
        seed=seed,
        parallelism=parallelism,
        key_by=key_by if isinstance(key_by, str) else None,
        failure_policy=getattr(action, "value", action),
        batch_size=batch_size,
    )
    report = analyze(list(pipelines), schema, options)
    if mode == "error" and not report.ok:
        details = "\n".join(f"  {d.render()}" for d in report.errors)
        raise PollutionError(
            f"pre-flight plan check failed with {len(report.errors)} "
            f"error(s):\n{details}\n(run repro.check.analyze() for the full "
            "report, or pass check='off' to skip)"
        )
    flagged = [d for d in report.diagnostics if d.severity >= Severity.WARNING]
    if flagged:
        summary = "; ".join(f"{d.rule} {d.message}" for d in flagged[:5])
        more = f" (+{len(flagged) - 5} more)" if len(flagged) > 5 else ""
        warnings.warn(
            f"plan check found {len(flagged)} issue(s): {summary}{more} — "
            "pass check='off' to silence or check='error' to fail fast",
            PlanCheckWarning,
            stacklevel=3,
        )
    return report
