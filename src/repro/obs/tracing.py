"""Span tracing for the stream runtime.

A :class:`Tracer` records :class:`Span` objects — named, timed, attributed
events — into a bounded in-memory ring buffer and, optionally, straight to a
JSONL sink. The engine emits spans for the structural moments of a run
(node open/close, checkpoint write/restore, supervised retry attempts) and
for *sampled* record dispatches, so a trace stays proportional to topology
size plus the sampling rate, never to stream length.

Timestamps are ``time.perf_counter()`` readings relative to the tracer's
creation: monotonic, high-resolution, and free of wall-clock jumps. Traces
are observational — nothing in the deterministic pollution path reads them.
"""

from __future__ import annotations

import io
import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass(slots=True)
class Span:
    """One traced event: instantaneous (``duration == 0``) or timed."""

    name: str
    kind: str
    start: float  # seconds since tracer creation
    duration: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans into a ring buffer, optionally teeing to JSONL.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest spans are evicted first. The JSONL
        sink, when set, receives *every* span regardless of eviction.
    sink:
        A path or open text stream that gets one JSON line per finished
        span. Call :meth:`close` (or use the tracer as a context manager)
        to flush a path-opened sink.
    """

    def __init__(
        self, capacity: int = 4096, sink: str | Path | io.TextIOBase | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._origin = time.perf_counter()
        self._owns_sink = isinstance(sink, (str, Path))
        self._sink = open(sink, "w") if self._owns_sink else sink
        self.dropped = 0  # spans evicted from the ring buffer

    # -- recording -----------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def _record(self, span: Span) -> None:
        if len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)
        if self._sink is not None:
            self._sink.write(json.dumps(span.as_dict()) + "\n")

    def event(self, name: str, kind: str = "event", **attrs: Any) -> Span:
        """Record an instantaneous span."""
        span = Span(name, kind, self._now(), 0.0, attrs)
        self._record(span)
        return span

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs: Any) -> Iterator[Span]:
        """Time a block; the span is recorded when the block exits.

        The span is recorded even if the block raises, with an ``error``
        attribute naming the exception type — failed checkpoints and
        crashing operators stay visible in the trace.
        """
        span = Span(name, kind, self._now(), 0.0, attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs["error"] = type(exc).__name__
            raise
        finally:
            span.duration = self._now() - span.start
            self._record(span)

    # -- inspection ----------------------------------------------------------

    @property
    def dropped_spans(self) -> int:
        """Spans silently evicted because the ring buffer wrapped.

        A non-zero value means :attr:`spans` is an incomplete record (the
        JSONL sink, if any, still saw everything); the summary exporter
        surfaces it so the loss is never silent.
        """
        return self.dropped

    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self._spans if s.name == name]

    def __len__(self) -> int:
        return len(self._spans)

    def to_jsonl(self, path: str | Path | None = None) -> str:
        """Serialize the buffered spans as JSON lines (returns the text)."""
        text = "".join(json.dumps(s.as_dict()) + "\n" for s in self._spans)
        if path is not None:
            Path(path).write_text(text)
        return text

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
