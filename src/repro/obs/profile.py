"""Opt-in wall-time attribution: where does a pollution run spend its time?

BENCH_parallel.json says parallel runs can be *slower* than sequential, and
the batch fast path silently falls back to :class:`~repro.batch.kernels.FallbackKernel`
for unsupported polluters — but nothing named the cost. The
:class:`Profiler` answers both with a layered attribution model:

* **Phases** — contiguous, non-overlapping segments of the top-level run
  (preflight, prepare, execute, merge, ...) timed with
  :meth:`Profiler.phase`. Because phases tile the call, the attributed
  fraction of wall time is high by construction (the acceptance bar is
  ≥95%) and honest: nothing is counted twice and nothing is estimated.
* **Kernels** — exact per-slab timing of every compiled kernel in batch
  mode, split into mask evaluation (condition cost) and application, and
  labeled ``standard`` or ``fallback`` so the polluters blocking kernel
  coverage are named. Outside batch mode the kernel *classification* is
  still recorded (the same method-identity gate :func:`repro.batch.kernels.compile_pipeline`
  uses), so ``--profile`` names would-be fallbacks in any engine.
* **Nodes** — per-node stream-operator timing folded from the engine's
  sampled ``node_process_seconds`` histograms (forced to sample 1-in-
  ``node_sample_every`` dispatches under profiling). Dispatch is
  depth-first, so raw histograms are *inclusive* of downstream work; the
  engine folds them into *exclusive* (self) time via the topology before
  they land here.
* **Detail** — fine-grained costs inside phases: queue put/get time and
  payload decode in parallel mode, coordinator chunk ingest, merge
  sub-steps. Detail overlaps phases by design and is reported separately.

Worker profiles travel in the terminal payload as plain dicts and fold
into the coordinator's profiler with :meth:`Profiler.merge_shard`. The
result renders as a ``top``-offenders table (:meth:`render_table`), a
``profile`` section in metric exports (:meth:`to_metrics` gauges), and a
plain dict (:meth:`as_dict`).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

#: Version of the ``profile`` dict schema (see :meth:`Profiler.as_dict`).
PROFILE_SCHEMA_VERSION = 1


class Profiler:
    """Collects wall-time attribution for one pollution run.

    Parameters
    ----------
    node_sample_every:
        Sampling stride for per-node dispatch timing (two clock reads per
        timed dispatch). ``1`` times every dispatch exactly; the default
        of 4 keeps profiling overhead well inside the ≤10% budget while
        the fold scales sampled sums by the true arrival count.
    """

    def __init__(self, node_sample_every: int = 4) -> None:
        if node_sample_every < 1:
            raise ValueError(
                f"node_sample_every must be >= 1, got {node_sample_every}"
            )
        self.node_sample_every = node_sample_every
        self._t0 = perf_counter()
        self.wall_seconds: float | None = None
        self.phases: dict[str, float] = {}
        self.detail: dict[str, float] = {}
        self.nodes: dict[str, dict[str, Any]] = {}
        self.kernels: dict[str, dict[str, Any]] = {}
        self.shards: dict[int, dict[str, Any]] = {}

    # -- phases (tile the wall) ----------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one contiguous top-level segment of the run."""
        start = perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + perf_counter() - start

    def finish(self) -> "Profiler":
        """Freeze the wall clock (idempotent) and return self."""
        if self.wall_seconds is None:
            self.wall_seconds = perf_counter() - self._t0
        return self

    @property
    def attributed_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def attributed_fraction(self) -> float:
        wall = self.wall_seconds
        if wall is None:
            wall = perf_counter() - self._t0
        if wall <= 0.0:
            return 1.0
        return min(self.attributed_seconds / wall, 1.0)

    # -- detail (overlaps phases) --------------------------------------------

    def add_detail(self, name: str, seconds: float) -> None:
        self.detail[name] = self.detail.get(name, 0.0) + seconds

    # -- kernels -------------------------------------------------------------

    def register_kernel(self, polluter: str, kind: str) -> None:
        """Record that ``polluter`` compiles to a ``standard``/``fallback`` kernel."""
        entry = self.kernels.get(polluter)
        if entry is None:
            self.kernels[polluter] = {
                "kind": kind,
                "seconds": 0.0,
                "mask_seconds": 0.0,
                "rows": 0,
                "calls": 0,
            }
        else:
            entry["kind"] = kind

    def add_kernel(
        self, polluter: str, seconds: float, rows: int, mask_seconds: float = 0.0
    ) -> None:
        entry = self.kernels.get(polluter)
        if entry is None:
            self.register_kernel(polluter, "unknown")
            entry = self.kernels[polluter]
        entry["seconds"] += seconds
        entry["mask_seconds"] += mask_seconds
        entry["rows"] += rows
        entry["calls"] += 1

    def register_pipeline(self, pipeline: Any) -> None:
        """Classify every polluter in ``pipeline`` without running batch mode.

        Uses the same method-identity gate as
        :func:`repro.batch.kernels.compile_pipeline`, so ``--profile`` names
        would-be fallback polluters even in engines that never compile
        kernels (per-record streaming, keyed). Idempotent per label.
        """
        from repro.batch.kernels import kernel_kind, polluter_label

        for polluter in pipeline.polluters:
            self.register_kernel(polluter_label(polluter), kernel_kind(polluter))

    def fallback_polluters(self) -> list[str]:
        """Names of polluters that (would) run through ``FallbackKernel``."""
        return sorted(
            name for name, k in self.kernels.items() if k["kind"] == "fallback"
        )

    # -- nodes ---------------------------------------------------------------

    def record_node(
        self,
        name: str,
        seconds: float,
        inclusive_seconds: float,
        samples: int,
        records: int,
    ) -> None:
        entry = self.nodes.get(name)
        if entry is None:
            entry = self.nodes[name] = {
                "seconds": 0.0,
                "inclusive_seconds": 0.0,
                "samples": 0,
                "records": 0,
            }
        entry["seconds"] += seconds
        entry["inclusive_seconds"] += inclusive_seconds
        entry["samples"] += samples
        entry["records"] += records

    # -- cross-process folding -----------------------------------------------

    def merge_shard(self, shard: int, payload: dict[str, Any] | None) -> None:
        """Fold a worker's ``as_dict`` profile into this (coordinator) profiler.

        Worker phases/details become per-shard entries plus aggregated
        detail rows (``shard.execute`` sums worker execute time across
        shards — in parallel mode that legitimately exceeds coordinator
        wall time); kernels and nodes fold into the global tables.
        """
        if not payload:
            return
        self.shards[shard] = {
            "phases": dict(payload.get("phases", {})),
            "detail": dict(payload.get("detail", {})),
            "wall_seconds": payload.get("wall_seconds"),
        }
        for name, seconds in payload.get("phases", {}).items():
            self.add_detail(f"shard.{name}", seconds)
        for name, seconds in payload.get("detail", {}).items():
            self.add_detail(name, seconds)
        for name, k in payload.get("kernels", {}).items():
            self.register_kernel(name, k.get("kind", "unknown"))
            entry = self.kernels[name]
            entry["seconds"] += k.get("seconds", 0.0)
            entry["mask_seconds"] += k.get("mask_seconds", 0.0)
            entry["rows"] += k.get("rows", 0)
            entry["calls"] += k.get("calls", 0)
        for name, n in payload.get("nodes", {}).items():
            self.record_node(
                name,
                n.get("seconds", 0.0),
                n.get("inclusive_seconds", 0.0),
                n.get("samples", 0),
                n.get("records", 0),
            )

    # -- output --------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        self.finish()
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "wall_seconds": self.wall_seconds,
            "attributed_seconds": self.attributed_seconds,
            "attributed_fraction": round(self.attributed_fraction, 6),
            "phases": dict(self.phases),
            "detail": dict(self.detail),
            "nodes": {n: dict(v) for n, v in self.nodes.items()},
            "kernels": {n: dict(v) for n, v in self.kernels.items()},
            "fallback_polluters": self.fallback_polluters(),
            "shards": {s: dict(v) for s, v in self.shards.items()},
        }

    def to_metrics(self, registry: Any) -> None:
        """Publish the profile as gauges so every exporter carries it."""
        if registry is None or not getattr(registry, "enabled", False):
            return
        self.finish()
        registry.gauge("profile_wall_seconds").set(self.wall_seconds or 0.0)
        registry.gauge("profile_attributed_fraction").set(
            round(self.attributed_fraction, 6)
        )
        for name, seconds in self.phases.items():
            registry.gauge("profile_phase_seconds", phase=name).set(seconds)
        for name, seconds in self.detail.items():
            registry.gauge("profile_detail_seconds", segment=name).set(seconds)
        for name, k in self.kernels.items():
            registry.gauge(
                "profile_kernel_seconds", polluter=name, kernel=k["kind"]
            ).set(k["seconds"])
            if k["mask_seconds"]:
                registry.gauge("profile_kernel_mask_seconds", polluter=name).set(
                    k["mask_seconds"]
                )
        for name, n in self.nodes.items():
            registry.gauge("profile_node_seconds", node=name).set(n["seconds"])

    def render_table(self, top: int = 15) -> str:
        """The human-readable "top offenders" view."""
        self.finish()
        wall = self.wall_seconds or 0.0

        def pct(seconds: float) -> str:
            return f"{100.0 * seconds / wall:5.1f}%" if wall > 0 else "    -"

        rows: list[tuple[float, str, str]] = []
        for name, seconds in self.phases.items():
            rows.append((seconds, f"phase:{name}", ""))
        for name, seconds in self.detail.items():
            rows.append((seconds, f"detail:{name}", ""))
        for name, k in self.kernels.items():
            note = f"{k['kind']} kernel, {k['rows']:,} rows"
            if k["mask_seconds"]:
                note += f", mask {k['mask_seconds']:.4f}s"
            rows.append((k["seconds"], f"kernel:{name}", note))
        for name, n in self.nodes.items():
            note = f"{n['records']:,} records"
            if n["samples"] and n["samples"] < n["records"]:
                note += f" (sampled {n['samples']:,})"
            rows.append((n["seconds"], f"node:{name}", note))
        rows.sort(key=lambda r: (-r[0], r[1]))

        width = max([len(r[1]) for r in rows[:top]] + [8])
        lines = [f"profile: wall {wall:.4f}s, phases attribute "
                 f"{100.0 * self.attributed_fraction:.1f}% of wall"]
        lines.append(f"  {'segment':<{width}}  {'seconds':>10}  {'% wall':>6}  notes")
        for seconds, label, note in rows[:top]:
            lines.append(
                f"  {label:<{width}}  {seconds:>10.4f}  {pct(seconds):>6}"
                + (f"  {note}" if note else "")
            )
        dropped = len(rows) - top
        if dropped > 0:
            lines.append(f"  ... {dropped} more segments (see profile dict)")
        fallbacks = self.fallback_polluters()
        lines.append(
            "fallback kernels: " + (", ".join(fallbacks) if fallbacks else "(none)")
        )
        return "\n".join(lines)
