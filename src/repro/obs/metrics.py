"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The paper evaluates Icewafl by *measuring* its effect — error rates seen by
the DQ tool (§3.2), forecasting degradation (§3.3), runtime overhead (§3.4)
— so the runtime itself must be measurable without a post-hoc re-derivation
of every number. This module is the zero-dependency core of that layer:

* :class:`Counter` — a monotonically increasing count (records emitted,
  polluter activations, dead letters);
* :class:`Gauge` — a point-in-time value (watermark lag, checkpoint size);
* :class:`Histogram` — a fixed-bucket distribution with approximate
  percentiles (per-node processing latency, checkpoint duration);
* :class:`MetricsRegistry` — the instrument factory and the single source
  of truth the exporters in :mod:`repro.obs.export` render.

Design constraints, in order:

1. **The hot path stays allocation-free.** Instruments are resolved once
   (at bind/attach time) and held by reference; a counter increment is one
   integer add on a slotted object. A *disabled* registry hands out shared
   no-op singletons so instrumented code needs no ``if`` at every call
   site — and the engine additionally skips attaching instruments entirely
   when the registry is off, so the per-record cost of disabled metrics is
   a single attribute check.
2. **Sampling is explicit.** Latency timing costs two clock reads per
   measurement; :attr:`MetricsRegistry.sample_every` lets the engine time
   only every Nth dispatch (Stream DaQ's low-overhead windowed-measurement
   argument, arXiv:2506.06147).
3. **Everything is a plain label set.** ``name`` plus sorted
   ``(label, value)`` pairs identify an instrument, which maps 1:1 onto
   the Prometheus text exposition format.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Mapping

#: Default histogram buckets for second-valued latencies: 1µs .. 10s.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for byte-valued sizes: 64 B .. 256 MiB.
SIZE_BUCKETS: tuple[float, ...] = tuple(64 * 4**i for i in range(13))

LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A point-in-time value that can go up and down."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A fixed-bucket histogram with sum, count, and approximate percentiles.

    ``buckets`` are ascending inclusive upper bounds; an implicit ``+Inf``
    bucket catches the overflow. Percentiles interpolate linearly inside the
    winning bucket, which is exact enough for latency reporting and needs no
    per-observation allocation.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelsKey, buckets: tuple[float, ...]
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be ascending, got {buckets!r}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (``q`` in [0, 100]) from the buckets."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                upper = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                fraction = (rank - cumulative) / n
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += n
        return self.buckets[-1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels: LabelsKey = ()
    value = 0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def as_dict(self) -> dict[str, Any]:
        return {"type": "null", "name": "", "labels": {}, "value": 0}


NULL_INSTRUMENT = _NullInstrument()

Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Creates, memoizes, and enumerates instruments.

    Parameters
    ----------
    enabled:
        When False every factory method returns the shared
        :data:`NULL_INSTRUMENT`, nothing is recorded, and callers that check
        :attr:`enabled` can skip instrumentation wholesale.
    sample_every:
        The sampling knob for expensive measurements (clock reads around a
        dispatch): consumers time one in ``sample_every`` events. ``1``
        times everything.
    """

    def __init__(self, enabled: bool = True, sample_every: int = 16) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.enabled = enabled
        self.sample_every = sample_every
        self._instruments: dict[tuple[str, LabelsKey], Instrument] = {}

    # -- factories -----------------------------------------------------------

    def _get(
        self, cls, name: str, labels: Mapping[str, Any], *args
    ) -> Any:
        key = (name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], *args)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(Histogram, name, labels, buckets)

    # -- cross-shard aggregation ---------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one and return self.

        The cross-shard aggregation path of :mod:`repro.parallel`: every
        worker records into its own registry, and the coordinator merges
        them so exported metrics describe the whole run and reconcile with
        the merged pollution log. Semantics per kind:

        * **counters** — summed (shard counts are disjoint events);
        * **gauges** — the maximum is kept (shard gauges are point-in-time
          high-water marks, e.g. watermark lag; summing them would invent a
          value no shard ever observed);
        * **histograms** — bucket-wise sum plus sum/count (requires matching
          bucket bounds, which same-named engine histograms always have).

        Merging a metric whose kind (or histogram buckets) differs from the
        existing registration raises ``ValueError``. A disabled source
        registry contributes nothing; merging into a disabled registry is a
        no-op.
        """
        if not self.enabled or not other.enabled:
            return self
        for key, theirs in other._instruments.items():
            mine = self._instruments.get(key)
            if mine is None:
                # Create a same-kind instrument, then fall through to fold.
                if theirs.kind == "counter":
                    mine = self._get(Counter, theirs.name, dict(theirs.labels))
                elif theirs.kind == "gauge":
                    mine = self._get(Gauge, theirs.name, dict(theirs.labels))
                else:
                    mine = self._get(
                        Histogram, theirs.name, dict(theirs.labels), theirs.buckets
                    )
            if mine.kind != theirs.kind:
                raise ValueError(
                    f"cannot merge metric {theirs.name!r}: registered as "
                    f"{mine.kind}, incoming is {theirs.kind}"
                )
            if theirs.kind == "counter":
                mine.value += theirs.value
            elif theirs.kind == "gauge":
                mine.value = max(mine.value, theirs.value)
            else:
                if mine.buckets != theirs.buckets:
                    raise ValueError(
                        f"cannot merge histogram {theirs.name!r}: bucket bounds differ"
                    )
                for i, n in enumerate(theirs.counts):
                    mine.counts[i] += n
                mine.sum += theirs.sum
                mine.count += theirs.count
        return self

    # -- enumeration ---------------------------------------------------------

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self, kind: str | None = None) -> list[Instrument]:
        """All instruments (optionally one kind), sorted by name then labels."""
        out = [
            i for i in self._instruments.values() if kind is None or i.kind == kind
        ]
        out.sort(key=lambda i: (i.name, i.labels))
        return out

    def get(self, name: str, **labels: Any) -> Instrument | None:
        """Look up an existing instrument without creating it."""
        return self._instruments.get((name, _labels_key(labels)))

    def total(self, name: str) -> int | float:
        """Sum of ``value`` over every instrument named ``name``."""
        return sum(
            i.value
            for i in self._instruments.values()
            if i.name == name and i.kind in ("counter", "gauge")
        )

    def as_dicts(self) -> list[dict[str, Any]]:
        return [i.as_dict() for i in self.instruments()]
