"""repro.obs — the observability layer: metrics, tracing, exporters.

A zero-dependency subsystem threaded through every layer of the runtime:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms; disabled registries hand out shared
  no-ops so instrumentation costs nothing when off;
* :mod:`repro.obs.tracing` — :class:`Tracer` emitting span records (node
  open/close, checkpoint write/restore, retry attempts, sampled record
  dispatches) to a bounded ring buffer or a JSONL sink;
* :mod:`repro.obs.export` — summary-table, JSONL, and Prometheus text
  renderers (with ``# HELP``/``# TYPE`` conformance);
* :mod:`repro.obs.live` — :class:`LiveAggregator` folding streaming
  per-shard telemetry into live gauges, plus the :class:`ProgressRenderer`
  behind ``--progress``;
* :mod:`repro.obs.ledger` — :class:`RunLedger`, the merged JSONL lifecycle
  event log behind ``--ledger-out`` (schema
  :data:`~repro.obs.ledger.LEDGER_SCHEMA_VERSION`);
* :mod:`repro.obs.profile` — :class:`Profiler`, the opt-in wall-time
  attribution layer behind ``--profile``.

The streaming engine (:mod:`repro.streaming.environment`), the supervisor
(:mod:`repro.streaming.supervision`), and the pollution layer
(:mod:`repro.core.polluter`, :mod:`repro.core.runner`) all record into one
registry per run, so the paper's measured quantities — injection counts per
error type, per-node throughput and latency, runtime overhead — are live
outputs instead of post-hoc reconstructions.
"""

from repro.obs.export import (
    FORMATS,
    METRIC_HELP,
    render_jsonl,
    render_metrics,
    render_prometheus,
    render_summary,
    write_metrics,
)
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, RunLedger, replay, shard_timeline
from repro.obs.live import LiveAggregator, ProgressRenderer, ShardView
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PROFILE_SCHEMA_VERSION, Profiler
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "FORMATS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "LEDGER_SCHEMA_VERSION",
    "LiveAggregator",
    "METRIC_HELP",
    "MetricsRegistry",
    "PROFILE_SCHEMA_VERSION",
    "Profiler",
    "ProgressRenderer",
    "RunLedger",
    "SIZE_BUCKETS",
    "ShardView",
    "Span",
    "Tracer",
    "render_jsonl",
    "render_metrics",
    "render_prometheus",
    "render_summary",
    "replay",
    "shard_timeline",
    "write_metrics",
]
