"""repro.obs — the observability layer: metrics, tracing, exporters.

A zero-dependency subsystem threaded through every layer of the runtime:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms; disabled registries hand out shared
  no-ops so instrumentation costs nothing when off;
* :mod:`repro.obs.tracing` — :class:`Tracer` emitting span records (node
  open/close, checkpoint write/restore, retry attempts, sampled record
  dispatches) to a bounded ring buffer or a JSONL sink;
* :mod:`repro.obs.export` — summary-table, JSONL, and Prometheus text
  renderers.

The streaming engine (:mod:`repro.streaming.environment`), the supervisor
(:mod:`repro.streaming.supervision`), and the pollution layer
(:mod:`repro.core.polluter`, :mod:`repro.core.runner`) all record into one
registry per run, so the paper's measured quantities — injection counts per
error type, per-node throughput and latency, runtime overhead — are live
outputs instead of post-hoc reconstructions.
"""

from repro.obs.export import (
    FORMATS,
    render_jsonl,
    render_metrics,
    render_prometheus,
    render_summary,
    write_metrics,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "FORMATS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
    "render_jsonl",
    "render_metrics",
    "render_prometheus",
    "render_summary",
    "write_metrics",
]
