"""Exporters: render a :class:`~repro.obs.metrics.MetricsRegistry`.

Three formats cover the consumption paths the benchmarks and CLI need:

* :func:`render_summary` — a human-readable table, the default for
  ``--metrics-out -``;
* :func:`render_jsonl` — one JSON object per instrument, for downstream
  tooling and the per-PR ``BENCH_*.json`` trajectory files;
* :func:`render_prometheus` — the Prometheus text exposition format
  (``name{labels} value`` plus ``_bucket``/``_sum``/``_count`` series for
  histograms), so a run can be scraped or diffed with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

FORMATS = ("summary", "jsonl", "prom")


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value: float | int) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.9g}"


def render_summary(registry: MetricsRegistry) -> str:
    """A sectioned, aligned, human-readable dump of every instrument."""
    sections: list[tuple[str, list[tuple[str, str]]]] = []
    counters = [
        (f"{i.name}{_label_str(i.labels)}", _fmt(i.value))
        for i in registry.instruments("counter")
    ]
    gauges = [
        (f"{i.name}{_label_str(i.labels)}", _fmt(i.value))
        for i in registry.instruments("gauge")
    ]
    histograms = []
    for h in registry.instruments("histogram"):
        assert isinstance(h, Histogram)
        histograms.append(
            (
                f"{h.name}{_label_str(h.labels)}",
                f"count={h.count} mean={h.mean:.3g} "
                f"p50={h.percentile(50):.3g} p90={h.percentile(90):.3g} "
                f"p99={h.percentile(99):.3g}",
            )
        )
    sections.append(("counters", counters))
    sections.append(("gauges", gauges))
    sections.append(("histograms", histograms))
    lines: list[str] = []
    for title, rows in sections:
        if not rows:
            continue
        lines.append(f"{title}:")
        width = max(len(name) for name, _ in rows)
        lines.extend(f"  {name:<{width}}  {value}" for name, value in rows)
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per instrument, stable ordering."""
    return "".join(json.dumps(d) + "\n" for d in registry.as_dicts())


def render_prometheus(registry: MetricsRegistry) -> str:
    """The Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            name = instrument.name
            if not name.endswith("_total"):
                name += "_total"
            type_line(name, "counter")
            lines.append(f"{name}{_label_str(instrument.labels)} {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            type_line(instrument.name, "gauge")
            lines.append(
                f"{instrument.name}{_label_str(instrument.labels)} {_fmt(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            type_line(instrument.name, "histogram")
            cumulative = 0
            for bound, count in zip(instrument.buckets, instrument.counts):
                cumulative += count
                labels = instrument.labels + (("le", _fmt(bound)),)
                lines.append(f"{instrument.name}_bucket{_label_str(labels)} {cumulative}")
            labels = instrument.labels + (("le", "+Inf"),)
            lines.append(
                f"{instrument.name}_bucket{_label_str(labels)} {instrument.count}"
            )
            lines.append(
                f"{instrument.name}_sum{_label_str(instrument.labels)} {_fmt(instrument.sum)}"
            )
            lines.append(
                f"{instrument.name}_count{_label_str(instrument.labels)} {instrument.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics(registry: MetricsRegistry, fmt: str) -> str:
    """Dispatch on one of :data:`FORMATS`."""
    if fmt == "summary":
        return render_summary(registry) + "\n"
    if fmt == "jsonl":
        return render_jsonl(registry)
    if fmt == "prom":
        return render_prometheus(registry)
    raise ValueError(f"unknown metrics format {fmt!r}; use one of {FORMATS}")


def write_metrics(registry: MetricsRegistry, out: str | Path, fmt: str) -> str:
    """Render and write to ``out`` (``"-"`` = stdout); returns the text."""
    text = render_metrics(registry, fmt)
    if str(out) == "-":
        print(text, end="")
    else:
        Path(out).write_text(text)
    return text
