"""Exporters: render a :class:`~repro.obs.metrics.MetricsRegistry`.

Three formats cover the consumption paths the benchmarks and CLI need:

* :func:`render_summary` — a human-readable table, the default for
  ``--metrics-out -``;
* :func:`render_jsonl` — one JSON object per instrument, for downstream
  tooling and the per-PR ``BENCH_*.json`` trajectory files;
* :func:`render_prometheus` — the Prometheus text exposition format
  (``name{labels} value`` plus ``_bucket``/``_sum``/``_count`` series for
  histograms), so a run can be scraped or diffed with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

FORMATS = ("summary", "jsonl", "prom")

#: The content type a conforming Prometheus scrape endpoint must declare for
#: the text exposition format. The ``version=0.0.4`` parameter is what tells
#: the scraper which parser to use — ``text/plain`` alone is not conformant.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Curated ``# HELP`` texts for the metric families the runtime emits.
#: Keys use the *exposed* name (counters carry their ``_total`` suffix).
#: Families not listed fall back to a generic text — the conformance test
#: only requires that every family has one.
METRIC_HELP: dict[str, str] = {
    "pollution_injections_total": "Injected errors per polluter, error type, and attribute.",
    "polluter_activations_total": "Times a polluter's condition fired.",
    "condition_hits_total": "Condition evaluations that selected a record.",
    "condition_misses_total": "Condition evaluations that passed a record through.",
    "source_records_total": "Records drained from each source.",
    "node_records_in_total": "Records arriving at each stream node.",
    "node_records_out_total": "Records emitted by each stream node.",
    "node_process_seconds": "Sampled per-dispatch processing latency per node.",
    "records_skipped_total": "Records dropped by the SKIP failure policy.",
    "records_retried_total": "Record dispatches retried under the RETRY policy.",
    "dead_letters_total": "Records routed to the dead-letter sink.",
    "watermark_lag_seconds": "Processing-time lag behind the newest event timestamp.",
    "checkpoints_written_total": "Checkpoints persisted by the engine.",
    "checkpoints_restored_total": "Checkpoint restores performed by the engine.",
    "checkpoint_write_seconds": "Wall time spent writing each checkpoint.",
    "checkpoint_size_bytes": "Serialized size of each checkpoint.",
    "shard_records_out_total": "Records emitted by each parallel shard.",
    "shard_watermark": "Final event-time watermark reached by each shard.",
    "parallel_shards_total": "Worker shards launched for the run.",
    "parallel_shard_restarts_total": "Shard restarts performed by the self-healing runtime.",
    "parallel_degraded_shards_total": "Shards degraded to in-coordinator sequential drains.",
    "merged_watermark": "Low watermark of the coordinator's merged output.",
    "live_shard_records_out": "Live records emitted by the shard's current incarnation.",
    "live_shard_records_per_second": "Live per-shard throughput over the last telemetry interval.",
    "live_shard_queue_depth": "Live input-queue backlog per shard.",
    "live_shard_watermark": "Live event-time watermark per shard.",
    "live_shard_restarts": "Live recovery count per shard.",
    "profile_wall_seconds": "Profiled wall time of the run.",
    "profile_attributed_fraction": "Fraction of wall time attributed to profiled phases.",
    "profile_phase_seconds": "Wall time of each top-level run phase.",
    "profile_detail_seconds": "Wall time of fine-grained profiled segments.",
    "profile_kernel_seconds": "Batch-kernel time per polluter.",
    "profile_kernel_mask_seconds": "Condition-mask evaluation time per polluter.",
    "profile_node_seconds": "Exclusive per-node processing time.",
    "tracer_dropped_spans": "Spans evicted from the tracer ring buffer.",
    "kernel_cache_hits_total": "Batch pipeline compilations served from the plan-hash cache.",
    "kernel_cache_misses_total": "Batch pipeline compilations that ran the full analysis.",
    "kernel_cache_evictions_total": "Plan-hash cache entries evicted by the LRU policy.",
    "kernel_cache_entries": "Plans currently held by the kernel compilation cache.",
    "factbase_cache_hits_total": "Plan-fact bases served from the plan-hash cache.",
    "factbase_cache_misses_total": "Plan-fact bases built from scratch.",
    "factbase_cache_entries": "Fact bases currently held by the plan-hash cache.",
    "analysis_cache_hits_total": "Admission analyses served from the plan-hash cache.",
    "analysis_cache_misses_total": "Admission analyses that ran the full static check.",
    "analysis_cache_evictions_total": "Admission analysis cache entries evicted by the LRU policy.",
    "analysis_cache_entries": "Analyses currently held by the admission cache.",
    "serve_jobs_submitted_total": "Jobs admitted by the serve endpoint, per tenant.",
    "serve_jobs_rejected_total": "Submissions turned away at admission, per reason.",
    "serve_jobs_finished_total": "Jobs reaching a terminal state, per state.",
    "serve_jobs_expired_total": "Terminal jobs forgotten by the TTL sweep.",
    "serve_jobs_queued": "Jobs currently queued and waiting for an execution slot.",
    "serve_jobs_running": "Jobs currently executing.",
    "serve_job_wall_seconds": "End-to-end execution wall time per job.",
    "serve_http_requests_total": "HTTP requests served, per method, route, and status.",
    "serve_streams_open": "WebSocket result streams currently connected.",
    "serve_stream_disconnects_total": "Stream terminations, per reason.",
    "serve_records_streamed_total": "Polluted records delivered over WebSocket streams.",
}


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value: float | int) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.9g}"


def _help_text(name: str, kind: str) -> str:
    return METRIC_HELP.get(name, f"repro {kind} metric.")


def _escape_help(value: str) -> str:
    # HELP text escaping per the exposition format: backslash and newline
    # only (quotes are legal in help text).
    return value.replace("\\", r"\\").replace("\n", r"\n")


def render_summary(registry: MetricsRegistry, tracer: Tracer | None = None) -> str:
    """A sectioned, aligned, human-readable dump of every instrument."""
    sections: list[tuple[str, list[tuple[str, str]]]] = []
    counters = [
        (f"{i.name}{_label_str(i.labels)}", _fmt(i.value))
        for i in registry.instruments("counter")
    ]
    gauges = [
        (f"{i.name}{_label_str(i.labels)}", _fmt(i.value))
        for i in registry.instruments("gauge")
    ]
    histograms = []
    for h in registry.instruments("histogram"):
        assert isinstance(h, Histogram)
        histograms.append(
            (
                f"{h.name}{_label_str(h.labels)}",
                f"count={h.count} mean={h.mean:.3g} "
                f"p50={h.percentile(50):.3g} p90={h.percentile(90):.3g} "
                f"p99={h.percentile(99):.3g}",
            )
        )
    sections.append(("counters", counters))
    sections.append(("gauges", gauges))
    sections.append(("histograms", histograms))
    if tracer is not None:
        sections.append(
            (
                "tracing",
                [
                    ("spans_buffered", str(len(tracer))),
                    ("dropped_spans", str(tracer.dropped_spans)),
                ],
            )
        )
    lines: list[str] = []
    for title, rows in sections:
        if not rows:
            continue
        lines.append(f"{title}:")
        width = max(len(name) for name, _ in rows)
        lines.extend(f"  {name:<{width}}  {value}" for name, value in rows)
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per instrument, stable ordering."""
    return "".join(json.dumps(d) + "\n" for d in registry.as_dicts())


def render_prometheus(registry: MetricsRegistry) -> str:
    """The Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# HELP {name} {_escape_help(_help_text(name, kind))}")
            lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            name = instrument.name
            if not name.endswith("_total"):
                name += "_total"
            type_line(name, "counter")
            lines.append(f"{name}{_label_str(instrument.labels)} {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            type_line(instrument.name, "gauge")
            lines.append(
                f"{instrument.name}{_label_str(instrument.labels)} {_fmt(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            type_line(instrument.name, "histogram")
            cumulative = 0
            for bound, count in zip(instrument.buckets, instrument.counts):
                cumulative += count
                labels = instrument.labels + (("le", _fmt(bound)),)
                lines.append(f"{instrument.name}_bucket{_label_str(labels)} {cumulative}")
            labels = instrument.labels + (("le", "+Inf"),)
            lines.append(
                f"{instrument.name}_bucket{_label_str(labels)} {instrument.count}"
            )
            lines.append(
                f"{instrument.name}_sum{_label_str(instrument.labels)} {_fmt(instrument.sum)}"
            )
            lines.append(
                f"{instrument.name}_count{_label_str(instrument.labels)} {instrument.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics(
    registry: MetricsRegistry, fmt: str, tracer: Tracer | None = None
) -> str:
    """Dispatch on one of :data:`FORMATS`.

    ``tracer``, when given, surfaces ring-buffer health (buffered span
    count and :attr:`Tracer.dropped_spans`) in the summary format, and as
    a ``tracer_dropped_spans`` gauge in the machine formats.
    """
    if fmt == "summary":
        return render_summary(registry, tracer=tracer) + "\n"
    if tracer is not None and registry.enabled:
        registry.gauge("tracer_dropped_spans").set(tracer.dropped_spans)
    if fmt == "jsonl":
        return render_jsonl(registry)
    if fmt == "prom":
        return render_prometheus(registry)
    raise ValueError(f"unknown metrics format {fmt!r}; use one of {FORMATS}")


def write_metrics(
    registry: MetricsRegistry,
    out: str | Path,
    fmt: str,
    tracer: Tracer | None = None,
) -> str:
    """Render and write to ``out`` (``"-"`` = stdout); returns the text."""
    text = render_metrics(registry, fmt, tracer=tracer)
    if str(out) == "-":
        print(text, end="")
    else:
        Path(out).write_text(text)
    return text
