"""The run ledger: a structured, mergeable JSONL log of run lifecycle events.

End-of-run metrics answer "how much"; the ledger answers "what happened,
and when". Every lifecycle event of a pollution run — run start, shard
spawn, heartbeat, crash/hang detection, respawn from checkpoint, policy
decision, degrade, checkpoint write/restore, batch slab boundary,
completion — is recorded as one JSON object with both a wall-clock and a
monotonic timestamp, so a failed or degraded run is forensically
reconstructable from the ledger alone (the acceptance test for the
self-healing runtime literally replays one).

Design points:

* **One writer per process.** The coordinator owns one :class:`RunLedger`;
  every worker owns its own (``source="shard-N"``). Worker events travel to
  the coordinator piggybacked on heartbeats (:meth:`RunLedger.drain` hands
  out the not-yet-shipped tail) with the remainder riding the terminal
  ``done``/``error`` payload, and the coordinator folds them in with
  :meth:`RunLedger.absorb`. No shared file, no locks, no partial lines.
* **Deterministic merge.** Events sort by ``(mono, source, seq)``. On Linux
  ``time.monotonic()`` is ``CLOCK_MONOTONIC`` — system-wide and
  boot-relative — so monotonic stamps are comparable across the coordinator
  and its forked workers, and the tiebreaker makes the merged order a pure
  function of the event set.
* **Versioned schema.** Every event carries ``seq``/``source``/``event``/
  ``wall``/``mono``; the ``run.start`` event additionally records
  ``ledger_schema`` (currently :data:`LEDGER_SCHEMA_VERSION`) and a config
  hash, so a reader can reject ledgers it does not understand. The event
  vocabulary is documented in DESIGN.md §13.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Version of the JSONL event schema written by :meth:`RunLedger.to_jsonl`.
#: Bump when an event's required fields change meaning or disappear;
#: carried by every ``run.start`` event as ``ledger_schema``.
LEDGER_SCHEMA_VERSION = 1

#: Events that mark the end of a shard's life (used by :func:`replay`).
_TERMINAL_EVENTS = frozenset({"shard.done", "shard.degraded", "shard.error"})

#: Events that must precede a respawn of the same shard (used by :func:`replay`).
_DETECTION_EVENTS = frozenset({"shard.crash", "shard.hang"})


class RunLedger:
    """An append-only event log for one process's view of a run.

    Parameters
    ----------
    source:
        Identifies the writing process in merged output — ``"coordinator"``
        for the driver, ``"shard-N"`` for workers.
    defaults:
        Fields stamped onto every event this ledger records (workers set
        ``{"shard": n, "epoch": e}`` so their events need no repetition).
    """

    def __init__(
        self,
        source: str = "coordinator",
        defaults: Mapping[str, Any] | None = None,
    ) -> None:
        self.source = source
        self.defaults = dict(defaults or {})
        self._events: list[dict[str, Any]] = []
        self._seq = 0
        self._drained = 0  # index of the first event not yet handed out

    # -- recording -----------------------------------------------------------

    def record(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one event, stamped with sequence number and timestamps."""
        entry: dict[str, Any] = {
            "seq": self._seq,
            "source": self.source,
            "event": event,
            "mono": time.monotonic(),
            "wall": time.time(),
        }
        if self.defaults:
            entry.update(self.defaults)
        if fields:
            entry.update(fields)
        self._seq += 1
        self._events.append(entry)
        return entry

    def absorb(self, events: Iterable[Mapping[str, Any]]) -> None:
        """Fold already-stamped events from another ledger into this one.

        The coordinator calls this with event batches drained from worker
        heartbeats and terminal payloads; the foreign ``source``/``seq``
        stamps are preserved so :meth:`merged_events` stays deterministic.
        """
        self._events.extend(dict(e) for e in events)

    def drain(self) -> list[dict[str, Any]]:
        """Events recorded since the previous drain (for piggybacking).

        Each event is handed out exactly once, so streaming the drained
        tail on every heartbeat and shipping the final :meth:`drain` in the
        terminal payload never duplicates an event — and events streamed
        before a worker is killed survive the kill.
        """
        tail = self._events[self._drained :]
        self._drained = len(self._events)
        return tail

    # -- reading -------------------------------------------------------------

    @property
    def events(self) -> list[dict[str, Any]]:
        """All events held by this ledger, in arrival order."""
        return list(self._events)

    def merged_events(self) -> list[dict[str, Any]]:
        """Every held event in the canonical merged order.

        Sorted by ``(mono, source, seq)``: monotonic stamps give the true
        cross-process timeline (system-wide ``CLOCK_MONOTONIC``), and the
        ``(source, seq)`` tiebreaker makes the order a deterministic
        function of the event set even for identical timestamps.
        """
        return sorted(
            self._events,
            key=lambda e: (e.get("mono", 0.0), e.get("source", ""), e.get("seq", 0)),
        )

    def find(self, event: str, **fields: Any) -> list[dict[str, Any]]:
        """Held events matching ``event`` and every given field, merged order."""
        return [
            e
            for e in self.merged_events()
            if e.get("event") == event
            and all(e.get(k) == v for k, v in fields.items())
        ]

    def __len__(self) -> int:
        return len(self._events)

    # -- persistence ---------------------------------------------------------

    def to_jsonl(self, path: str | Path | None = None) -> str:
        """Render (and optionally write) the merged ledger as JSONL."""
        text = "\n".join(
            json.dumps(e, sort_keys=True, default=str) for e in self.merged_events()
        )
        if text:
            text += "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @staticmethod
    def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
        """Load a ledger previously written by :meth:`to_jsonl`."""
        events = []
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if line:
                events.append(json.loads(line))
        return events


def shard_timeline(
    events: Iterable[Mapping[str, Any]], shard: int
) -> list[dict[str, Any]]:
    """One shard's lifecycle events in merged order."""
    picked = [dict(e) for e in events if e.get("shard") == shard]
    picked.sort(
        key=lambda e: (e.get("mono", 0.0), e.get("source", ""), e.get("seq", 0))
    )
    return picked


def replay(events: Iterable[Mapping[str, Any]]) -> list[str]:
    """Replay a merged ledger and return structural inconsistencies.

    Walks the events as a per-shard state machine and checks the timeline
    invariants the self-healing runtime guarantees:

    * exactly one ``run.start``, and it precedes every other event;
    * at most one ``run.complete``, after every shard event;
    * each shard's first event is its epoch-0 ``shard.spawn``;
    * shard epochs never decrease;
    * every ``shard.respawn`` is preceded by a crash/hang detection for
      that shard, and bumps the epoch;
    * each shard reaches at most one terminal state
      (``shard.done`` / ``shard.degraded`` / ``shard.error``).

    Returns a list of human-readable problems — empty means the ledger
    reconstructs a coherent timeline.
    """
    ordered = sorted(
        (dict(e) for e in events),
        key=lambda e: (e.get("mono", 0.0), e.get("source", ""), e.get("seq", 0)),
    )
    problems: list[str] = []
    starts = [e for e in ordered if e["event"] == "run.start"]
    if len(starts) != 1:
        problems.append(f"expected exactly one run.start, saw {len(starts)}")
    elif ordered[0]["event"] != "run.start":
        problems.append(f"run.start is not first (first: {ordered[0]['event']})")
    completes = [i for i, e in enumerate(ordered) if e["event"] == "run.complete"]
    if len(completes) > 1:
        problems.append(f"expected at most one run.complete, saw {len(completes)}")

    epochs: dict[int, int] = {}
    spawned: set[int] = set()
    pending_detection: dict[int, bool] = {}
    terminal: dict[int, str] = {}
    for index, e in enumerate(ordered):
        shard = e.get("shard")
        if shard is None:
            continue
        event = e["event"]
        epoch = e.get("epoch")
        if completes and completes[0] < index:
            problems.append(f"shard event {event} (shard {shard}) after run.complete")
        if shard not in spawned:
            if event != "shard.spawn":
                problems.append(
                    f"shard {shard}: first event is {event}, expected shard.spawn"
                )
            elif epoch != 0:
                problems.append(f"shard {shard}: first spawn has epoch {epoch}, not 0")
            spawned.add(shard)
        if shard in terminal and event not in _TERMINAL_EVENTS:
            # Late worker-side events (shipped in the terminal payload) are
            # fine; a *coordinator* lifecycle event after terminal is not.
            if e.get("source") == "coordinator" and event.startswith("shard."):
                problems.append(
                    f"shard {shard}: {event} after terminal {terminal[shard]}"
                )
        if epoch is not None:
            last = epochs.get(shard, 0)
            if epoch < last and e.get("source") == "coordinator":
                problems.append(
                    f"shard {shard}: epoch went backwards ({last} -> {epoch})"
                )
            epochs[shard] = max(last, epoch)
        if event in _DETECTION_EVENTS:
            pending_detection[shard] = True
        elif event == "shard.respawn":
            if not pending_detection.get(shard):
                problems.append(f"shard {shard}: respawn without crash/hang detection")
            pending_detection[shard] = False
        elif event in _TERMINAL_EVENTS:
            if shard in terminal:
                problems.append(
                    f"shard {shard}: second terminal event {event} "
                    f"(already {terminal[shard]})"
                )
            terminal[shard] = event
    return problems
