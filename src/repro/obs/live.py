"""Live run telemetry: per-shard gauges folded from streaming worker deltas.

During a parallel run the coordinator used to learn nothing until a shard
finished. This module is the receiving half of the live telemetry channel:
workers piggyback small cumulative snapshots (records in/out, watermark,
queue depth) on the heartbeats they already send, and the coordinator folds
them into a :class:`LiveAggregator` — a live :class:`~repro.obs.metrics.MetricsRegistry`
view with per-shard gauges:

* ``live_shard_records_out{shard=}`` — records emitted by the current
  incarnation;
* ``live_shard_records_per_second{shard=}`` — throughput over the last
  telemetry interval;
* ``live_shard_queue_depth{shard=}`` — input queue backlog (backpressure);
* ``live_shard_watermark{shard=}`` — event-time progress (lag = max
  watermark across shards minus this shard's);
* ``live_shard_restarts{shard=}`` — recovery count.

**Epoch discipline** (the no-double-count rule): telemetry snapshots are
cumulative *per incarnation* and tagged with the worker's epoch. A respawn
bumps the epoch; the aggregator resets that shard's baselines so the fresh
incarnation restarts from zero, and snapshots from a dead epoch arriving
late are dropped — mirroring how the coordinator discards stale chunks, so
the live view never counts a dead incarnation's work twice.

:class:`ProgressRenderer` turns aggregator snapshots into a ``top``-style
in-place terminal table (ANSI repaint when the stream is a TTY, one plain
line per refresh otherwise), and doubles as a plain record counter for
sequential runs.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, TextIO

from .metrics import MetricsRegistry


class ShardView:
    """The live state of one shard, as last reported."""

    __slots__ = (
        "shard",
        "epoch",
        "state",
        "records_in",
        "records_out",
        "watermark",
        "queue_depth",
        "restarts",
        "rate",
        "_rate_records",
        "_rate_time",
        "_chunk_records",
    )

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.epoch = 0
        self.state = "pending"
        self.records_in = 0
        self.records_out = 0
        self.watermark: int | float | None = None
        self.queue_depth = 0
        self.restarts = 0
        self.rate = 0.0
        self._rate_records = 0
        self._rate_time: float | None = None
        self._chunk_records = 0

    def _reset_incarnation(self) -> None:
        self.records_in = 0
        self.records_out = 0
        self.queue_depth = 0
        self.rate = 0.0
        self._rate_records = 0
        self._rate_time = None
        self._chunk_records = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "state": self.state,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "watermark": self.watermark,
            "queue_depth": self.queue_depth,
            "restarts": self.restarts,
            "records_per_second": round(self.rate, 3),
        }


class LiveAggregator:
    """Folds per-shard telemetry snapshots into a live metrics view.

    Owns its own (enabled) registry — live gauges describe a moment, not
    the run total, so they are kept apart from the end-of-run registry the
    exporters render. ``registry`` is still a real
    :class:`MetricsRegistry`, so every exporter works on it.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._views: dict[int, ShardView] = {}

    # -- lifecycle -----------------------------------------------------------

    def view(self, shard: int) -> ShardView:
        v = self._views.get(shard)
        if v is None:
            v = self._views[shard] = ShardView(shard)
        return v

    def mark_spawn(self, shard: int, epoch: int) -> None:
        v = self.view(shard)
        if epoch != v.epoch:
            v.epoch = epoch
            v._reset_incarnation()
            self._publish(v)
        v.state = "running"

    def mark_restart(self, shard: int, epoch: int) -> None:
        v = self.view(shard)
        v.restarts += 1
        v.epoch = epoch
        v._reset_incarnation()
        v.state = "recovering"
        self.registry.gauge("live_shard_restarts", shard=shard).set(v.restarts)
        self._publish(v)

    def mark_done(self, shard: int) -> None:
        self.view(shard).state = "done"

    def mark_degraded(self, shard: int) -> None:
        self.view(shard).state = "degraded"

    def mark_failed(self, shard: int) -> None:
        self.view(shard).state = "failed"

    # -- telemetry folding ---------------------------------------------------

    def update(self, shard: int, epoch: int, snapshot: dict[str, Any]) -> None:
        """Fold one cumulative telemetry snapshot from a worker.

        ``snapshot`` carries this *incarnation's* cumulative counts. A
        snapshot from an older epoch than the current view is a straggler
        from a dead incarnation and is dropped; a newer epoch resets the
        baselines first (the respawn raced ahead of the mark).
        """
        v = self.view(shard)
        if epoch < v.epoch:
            return
        if epoch > v.epoch:
            v.epoch = epoch
            v._reset_incarnation()
        records_out = snapshot.get("records_out")
        if records_out is not None:
            now = self._clock()
            if v._rate_time is not None and now > v._rate_time:
                delta = records_out - v._rate_records
                if delta >= 0:
                    v.rate = delta / (now - v._rate_time)
            v._rate_records = records_out
            v._rate_time = now
            # Chunk arrivals may run ahead of the last heartbeat snapshot;
            # both are cumulative for this incarnation, so take the max.
            v.records_out = max(records_out, v._chunk_records)
        if snapshot.get("records_in") is not None:
            v.records_in = snapshot["records_in"]
        if snapshot.get("watermark") is not None:
            v.watermark = snapshot["watermark"]
        if snapshot.get("queue_depth") is not None:
            v.queue_depth = snapshot["queue_depth"]
        if v.state == "recovering":
            v.state = "running"
        self._publish(v)

    def observe_chunk(
        self, shard: int, epoch: int, n: int, watermark: int | float | None
    ) -> None:
        """Account a chunk accepted by the coordinator's merger.

        Chunks pass the same epoch gate as telemetry, so a dead
        incarnation's output never inflates the live counts. This keeps the
        view moving even between heartbeats.
        """
        v = self.view(shard)
        if epoch < v.epoch:
            return
        if epoch > v.epoch:
            v.epoch = epoch
            v._reset_incarnation()
        v._chunk_records += n
        v.records_out = max(v.records_out, v._chunk_records)
        if watermark is not None:
            v.watermark = watermark if v.watermark is None else max(v.watermark, watermark)
        self._publish(v)

    def _publish(self, v: ShardView) -> None:
        g = self.registry.gauge
        g("live_shard_records_out", shard=v.shard).set(v.records_out)
        g("live_shard_records_per_second", shard=v.shard).set(round(v.rate, 3))
        g("live_shard_queue_depth", shard=v.shard).set(v.queue_depth)
        g("live_shard_restarts", shard=v.shard).set(v.restarts)
        if v.watermark is not None:
            g("live_shard_watermark", shard=v.shard).set(v.watermark)

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> list[ShardView]:
        """All shard views, ordered by shard id."""
        return [self._views[s] for s in sorted(self._views)]

    def totals(self) -> dict[str, Any]:
        views = self.snapshot()
        return {
            "shards": len(views),
            "running": sum(1 for v in views if v.state in ("running", "recovering")),
            "done": sum(1 for v in views if v.state == "done"),
            "records_out": sum(v.records_out for v in views),
            "records_per_second": sum(v.rate for v in views),
            "restarts": sum(v.restarts for v in views),
        }


class ProgressRenderer:
    """Renders live progress to a terminal, ``top``-style.

    With an aggregator attached, each frame is a per-shard table; without
    one (sequential runs) it is a single records-seen counter fed via
    :meth:`tick`. When ``stream`` is a TTY the frame repaints in place
    using ANSI cursor movement; otherwise each refresh emits one plain
    line, so piped/CI output stays readable.
    """

    def __init__(
        self,
        aggregator: LiveAggregator | None = None,
        stream: TextIO | None = None,
        interval: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.aggregator = aggregator
        self._stream = stream if stream is not None else sys.stderr
        isatty = getattr(self._stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self.interval = interval
        self._clock = clock
        self._next = 0.0  # render immediately on the first opportunity
        self._lines = 0  # lines painted by the previous TTY frame
        self._started = clock()
        self._seq_records = 0
        self._seq_rate = 0.0
        self._seq_mark: tuple[int, float] | None = None

    # -- driving -------------------------------------------------------------

    def tick(self, records_seen: int) -> None:
        """Sequential-mode progress: update the record counter and maybe render."""
        self._seq_records = records_seen
        self.maybe_render()

    def maybe_render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now < self._next:
            return
        self._next = now + self.interval
        self.render()

    def finish(self) -> None:
        """Render the final frame and release the terminal."""
        self.maybe_render(force=True)
        if self._tty:
            try:
                self._stream.flush()
            except Exception:
                pass

    # -- rendering -----------------------------------------------------------

    def render(self) -> None:
        frame = (
            self._shard_frame()
            if self.aggregator is not None
            else self._sequential_frame()
        )
        try:
            if self._tty:
                if self._lines:
                    # Move to the top of the previous frame and clear it.
                    self._stream.write(f"\x1b[{self._lines}F\x1b[J")
                self._stream.write(frame + "\n")
                self._lines = frame.count("\n") + 1
            else:
                self._stream.write(self._plain_line() + "\n")
            self._stream.flush()
        except Exception:
            pass  # progress must never take the run down

    def _elapsed(self) -> float:
        return max(self._clock() - self._started, 1e-9)

    def _sequential_rate(self) -> float:
        now = self._clock()
        if self._seq_mark is not None:
            last_records, last_time = self._seq_mark
            if now > last_time:
                self._seq_rate = (self._seq_records - last_records) / (now - last_time)
        self._seq_mark = (self._seq_records, now)
        return self._seq_rate

    def _sequential_frame(self) -> str:
        rate = self._sequential_rate()
        return (
            f"  records {self._seq_records:>12,}   "
            f"{rate:>12,.0f} rec/s   elapsed {self._elapsed():6.1f}s"
        )

    def _shard_frame(self) -> str:
        assert self.aggregator is not None
        header = (
            f"  {'shard':>5}  {'state':<10}  {'records':>12}  {'rec/s':>10}  "
            f"{'watermark':>12}  {'queue':>5}  {'restarts':>8}"
        )
        rows = [header]
        for v in self.aggregator.snapshot():
            wm = "-" if v.watermark is None else f"{v.watermark:g}"
            rows.append(
                f"  {v.shard:>5}  {v.state:<10}  {v.records_out:>12,}  "
                f"{v.rate:>10,.0f}  {wm:>12}  {v.queue_depth:>5}  {v.restarts:>8}"
            )
        t = self.aggregator.totals()
        rows.append(
            f"  {'total':>5}  {t['done']}/{t['shards']} done   {t['records_out']:>12,}  "
            f"{t['records_per_second']:>10,.0f}  elapsed {self._elapsed():6.1f}s"
            + (f"  restarts {t['restarts']}" if t["restarts"] else "")
        )
        return "\n".join(rows)

    def _plain_line(self) -> str:
        if self.aggregator is None:
            rate = self._sequential_rate()
            return (
                f"progress: {self._seq_records:,} records | {rate:,.0f} rec/s | "
                f"elapsed {self._elapsed():.1f}s"
            )
        t = self.aggregator.totals()
        return (
            f"progress: {t['done']}/{t['shards']} shards done | "
            f"{t['records_out']:,} records | {t['records_per_second']:,.0f} rec/s | "
            f"restarts {t['restarts']} | elapsed {self._elapsed():.1f}s"
        )
