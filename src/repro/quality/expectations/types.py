"""``expect_column_values_to_be_of_type``."""

from __future__ import annotations

from typing import Any

from repro.errors import ExpectationError
from repro.quality.expectations.base import ColumnValueExpectation

_TYPE_MAP: dict[str, tuple[type, ...]] = {
    "float": (float, int),
    "int": (int,),
    "str": (str,),
    "bool": (bool,),
}


class ExpectColumnValuesToBeOfType(ColumnValueExpectation):
    """Every value must be of the declared Python type.

    Catches type-corrupting errors (e.g. a polluter writing a string into a
    numeric field, or precision loss turning an INT reading into a float in
    a loosely-typed pipeline).
    """

    def __init__(self, column: str, type_: str, mostly: float = 1.0) -> None:
        super().__init__(column, mostly)
        if type_ not in _TYPE_MAP:
            raise ExpectationError(
                f"unknown type {type_!r}; known: {sorted(_TYPE_MAP)}"
            )
        self.type_ = type_

    def is_expected(self, value: Any) -> bool:
        if isinstance(value, bool) and self.type_ != "bool":
            return False
        return isinstance(value, _TYPE_MAP[self.type_])
