"""Aggregate expectations over column statistics.

Aggregate expectations report a single pass/fail on a column statistic
rather than per-row hits; the ``unexpected_count`` is 0 or 1 accordingly.
They detect *distributional* pollution — noise that leaves every single
value plausible while shifting the mean or inflating the variance (the
temporally increasing noise of Experiment 2 is invisible to row checks but
obvious to a stdev expectation over a recent window).
"""

from __future__ import annotations

import math

from repro.errors import ExpectationError
from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.expectations.base import Expectation
from repro.quality.result import ExpectationResult


class _ColumnStatExpectation(Expectation):
    def __init__(
        self,
        column: str,
        min_value: float | None = None,
        max_value: float | None = None,
    ) -> None:
        super().__init__(mostly=1.0)
        if min_value is None and max_value is None:
            raise ExpectationError("aggregate expectation needs at least one bound")
        self.column = column
        self.min_value = min_value
        self.max_value = max_value

    def _statistic(self, values: list[float]) -> float:
        raise NotImplementedError

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        dataset.require_column(self.column)
        values = [
            float(v) for v in dataset.column(self.column)
            if not is_missing(v) and isinstance(v, (int, float))
        ]
        if not values:
            return self._result(dataset, self.column, 0, [], {"statistic": None})
        stat = self._statistic(values)
        ok = True
        if self.min_value is not None and stat < self.min_value:
            ok = False
        if self.max_value is not None and stat > self.max_value:
            ok = False
        result = self._result(dataset, self.column, 1, [] if ok else [0],
                              {"statistic": stat})
        # Index 0 is a placeholder for aggregate failures; blank the id list.
        result.unexpected_indices = []
        result.unexpected_record_ids = []
        return result


class ExpectColumnMeanToBeBetween(_ColumnStatExpectation):
    """The column mean must fall within the declared bounds."""

    def _statistic(self, values: list[float]) -> float:
        return sum(values) / len(values)


class ExpectColumnStdevToBeBetween(_ColumnStatExpectation):
    """The column's sample standard deviation must fall within the bounds."""

    def _statistic(self, values: list[float]) -> float:
        n = len(values)
        if n < 2:
            return 0.0
        mean = sum(values) / n
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
