"""Expectation base classes.

An expectation validates one constraint against a
:class:`~repro.quality.dataset.ValidationDataset` and reports an
:class:`~repro.quality.result.ExpectationResult`. Two shapes exist:

* **value expectations** (:class:`ColumnValueExpectation` and the
  multi-column variants) check every row and report the unexpected rows;
* **aggregate expectations** (:class:`ColumnAggregateExpectation`) check a
  statistic of a whole column (mean, stdev) and report pass/fail.

The ``mostly`` parameter matches GX's semantics: the expectation *succeeds*
when at least that fraction of evaluated elements conforms. The unexpected
count is reported either way — experiments consume counts, not the flag.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExpectationError
from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.result import ExpectationResult


class Expectation:
    """Base class for all expectations."""

    def __init__(self, mostly: float = 1.0) -> None:
        if not 0.0 < mostly <= 1.0:
            raise ExpectationError(f"mostly must be in (0, 1], got {mostly}")
        self.mostly = mostly

    @property
    def name(self) -> str:
        """The GX-style snake_case expectation name."""
        return _snake_case(type(self).__name__)

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        raise NotImplementedError

    def _result(
        self,
        dataset: ValidationDataset,
        column: str | None,
        element_count: int,
        unexpected_indices: list[int],
        details: dict[str, Any] | None = None,
    ) -> ExpectationResult:
        unexpected = len(unexpected_indices)
        conforming = element_count - unexpected
        success = element_count == 0 or (conforming / element_count) >= self.mostly
        return ExpectationResult(
            expectation=self.name,
            column=column,
            success=success,
            element_count=element_count,
            unexpected_count=unexpected,
            unexpected_indices=unexpected_indices,
            unexpected_record_ids=dataset.record_ids(unexpected_indices),
            details=details or {},
        )


class ColumnValueExpectation(Expectation):
    """Per-row expectation on one column.

    Subclasses implement :meth:`is_expected` over non-missing values.
    Missing values are skipped (GX's default behaviour — nullity is the
    business of ``expect_column_values_to_not_be_null``) unless the subclass
    sets :attr:`evaluate_missing` to True.
    """

    evaluate_missing = False

    def __init__(self, column: str, mostly: float = 1.0) -> None:
        super().__init__(mostly)
        self.column = column

    def is_expected(self, value: Any) -> bool:
        raise NotImplementedError

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        dataset.require_column(self.column)
        unexpected: list[int] = []
        element_count = 0
        for i, row in enumerate(dataset):
            value = row.get(self.column)
            if is_missing(value) and not self.evaluate_missing:
                continue
            element_count += 1
            if not self.is_expected(value):
                unexpected.append(i)
        return self._result(dataset, self.column, element_count, unexpected)


def _snake_case(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)
