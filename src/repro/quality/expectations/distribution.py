"""Distribution-level expectations.

Beyond per-row checks, GX's core set includes expectations on column
distributions. These matter for temporal pollution: a scale error that
keeps every value individually plausible still drags quantiles; duplicate
storms depress the unique-value proportion; truncation shifts string
lengths. All are aggregate expectations (unexpected count 0/1).
"""

from __future__ import annotations

import statistics
from collections import Counter
from typing import Any, Collection, Sequence

from repro.errors import ExpectationError
from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.expectations.base import ColumnValueExpectation, Expectation
from repro.quality.result import ExpectationResult


class _AggregateExpectation(Expectation):
    """Shared machinery: compute a statistic, check bounds, report 0/1."""

    def __init__(self, column: str) -> None:
        super().__init__(mostly=1.0)
        self.column = column

    def _values(self, dataset: ValidationDataset) -> list[Any]:
        dataset.require_column(self.column)
        return [v for v in dataset.column(self.column) if not is_missing(v)]

    def _verdict(
        self, dataset: ValidationDataset, ok: bool, statistic: Any
    ) -> ExpectationResult:
        result = self._result(
            dataset, self.column, 1, [] if ok else [0], {"statistic": statistic}
        )
        result.unexpected_indices = []
        result.unexpected_record_ids = []
        return result


class ExpectColumnMedianToBeBetween(_AggregateExpectation):
    """The column median must fall within the bounds."""

    def __init__(self, column: str, min_value: float | None = None,
                 max_value: float | None = None) -> None:
        super().__init__(column)
        if min_value is None and max_value is None:
            raise ExpectationError("median expectation needs at least one bound")
        self.min_value = min_value
        self.max_value = max_value

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        values = [v for v in self._values(dataset) if isinstance(v, (int, float))]
        if not values:
            return self._verdict(dataset, True, None)
        med = float(statistics.median(values))
        ok = (self.min_value is None or med >= self.min_value) and (
            self.max_value is None or med <= self.max_value
        )
        return self._verdict(dataset, ok, med)


class ExpectColumnQuantileValuesToBeBetween(_AggregateExpectation):
    """Selected quantiles must fall within per-quantile ranges.

    ``quantile_ranges`` maps quantile (0-1) to ``(low, high)``. The check
    passes only when every listed quantile lands in its range — the
    standard guard against distribution drift.
    """

    def __init__(
        self, column: str, quantile_ranges: dict[float, tuple[float | None, float | None]]
    ) -> None:
        super().__init__(column)
        if not quantile_ranges:
            raise ExpectationError("quantile expectation needs at least one quantile")
        for q in quantile_ranges:
            if not 0.0 <= q <= 1.0:
                raise ExpectationError(f"quantile must be in [0, 1], got {q}")
        self.quantile_ranges = dict(quantile_ranges)

    @staticmethod
    def _quantile(sorted_values: Sequence[float], q: float) -> float:
        if not sorted_values:
            raise ExpectationError("no values")
        idx = q * (len(sorted_values) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(sorted_values) - 1)
        frac = idx - lo
        return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        values = sorted(
            float(v) for v in self._values(dataset) if isinstance(v, (int, float))
        )
        if not values:
            return self._verdict(dataset, True, None)
        observed = {q: self._quantile(values, q) for q in self.quantile_ranges}
        ok = True
        for q, (low, high) in self.quantile_ranges.items():
            v = observed[q]
            if low is not None and v < low:
                ok = False
            if high is not None and v > high:
                ok = False
        return self._verdict(dataset, ok, observed)


class ExpectColumnSumToBeBetween(_AggregateExpectation):
    """The column sum must fall within the bounds."""

    def __init__(self, column: str, min_value: float | None = None,
                 max_value: float | None = None) -> None:
        super().__init__(column)
        if min_value is None and max_value is None:
            raise ExpectationError("sum expectation needs at least one bound")
        self.min_value = min_value
        self.max_value = max_value

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        values = [v for v in self._values(dataset) if isinstance(v, (int, float))]
        total = float(sum(values))
        ok = (self.min_value is None or total >= self.min_value) and (
            self.max_value is None or total <= self.max_value
        )
        return self._verdict(dataset, ok, total)


class ExpectColumnProportionOfUniqueValuesToBeBetween(_AggregateExpectation):
    """distinct/total must fall within the bounds (duplicate-storm detector)."""

    def __init__(self, column: str, min_value: float = 0.0, max_value: float = 1.0) -> None:
        super().__init__(column)
        if not 0.0 <= min_value <= max_value <= 1.0:
            raise ExpectationError(
                f"need 0 <= min <= max <= 1, got [{min_value}, {max_value}]"
            )
        self.min_value = min_value
        self.max_value = max_value

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        values = self._values(dataset)
        if not values:
            return self._verdict(dataset, True, None)
        proportion = len(set(values)) / len(values)
        ok = self.min_value <= proportion <= self.max_value
        return self._verdict(dataset, ok, proportion)


class ExpectColumnMostCommonValueToBeInSet(_AggregateExpectation):
    """The column's mode must belong to a declared set.

    Catches frozen-value runs on categorical-ish columns: a stuck sensor
    makes one (possibly invalid) value dominate.
    """

    def __init__(self, column: str, value_set: Collection[Any]) -> None:
        super().__init__(column)
        if not value_set:
            raise ExpectationError("value_set must be non-empty")
        self.value_set = frozenset(value_set)

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        values = self._values(dataset)
        if not values:
            return self._verdict(dataset, True, None)
        mode, _ = Counter(values).most_common(1)[0]
        return self._verdict(dataset, mode in self.value_set, mode)


class ExpectColumnValueLengthsToBeBetween(ColumnValueExpectation):
    """String lengths must fall within ``[min_length, max_length]``.

    A per-row expectation (reports unexpected rows): catches truncation and
    whitespace-padding errors.
    """

    def __init__(
        self,
        column: str,
        min_length: int | None = None,
        max_length: int | None = None,
        mostly: float = 1.0,
    ) -> None:
        super().__init__(column, mostly)
        if min_length is None and max_length is None:
            raise ExpectationError("length expectation needs at least one bound")
        self.min_length = min_length
        self.max_length = max_length

    def is_expected(self, value: Any) -> bool:
        if not isinstance(value, str):
            return False
        n = len(value)
        if self.min_length is not None and n < self.min_length:
            return False
        if self.max_length is not None and n > self.max_length:
            return False
        return True
