"""``expect_column_values_to_be_unique``."""

from __future__ import annotations

from collections import Counter

from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.expectations.base import Expectation
from repro.quality.result import ExpectationResult


class ExpectColumnValuesToBeUnique(Expectation):
    """No value may occur more than once in the column.

    The detector for duplicate errors (and for the fuzzy duplicates that
    merging overlapping sub-streams produces when applied to the tuple
    identifier or an exactly-copied timestamp). Every row participating in
    a duplicated value is unexpected, matching GX's semantics.
    """

    def __init__(self, column: str, mostly: float = 1.0) -> None:
        super().__init__(mostly)
        self.column = column

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        dataset.require_column(self.column)
        counts: Counter = Counter()
        evaluated: list[tuple[int, object]] = []
        for i, row in enumerate(dataset):
            value = row.get(self.column)
            if is_missing(value):
                continue
            counts[value] += 1
            evaluated.append((i, value))
        unexpected = [i for i, value in evaluated if counts[value] > 1]
        return self._result(dataset, self.column, len(evaluated), unexpected)
