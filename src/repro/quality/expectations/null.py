"""``expect_column_values_to_not_be_null``.

The workhorse of Experiments 3.1.1 (detecting injected Distance nulls) and
3.1.2 (detecting BPM values set to null).
"""

from __future__ import annotations

from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.expectations.base import Expectation
from repro.quality.result import ExpectationResult


class ExpectColumnValuesToNotBeNull(Expectation):
    """Every value of the column must be present (not None/NaN)."""

    def __init__(self, column: str, mostly: float = 1.0) -> None:
        super().__init__(mostly)
        self.column = column

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        dataset.require_column(self.column)
        unexpected = [
            i for i, row in enumerate(dataset) if is_missing(row.get(self.column))
        ]
        return self._result(dataset, self.column, len(dataset), unexpected)
