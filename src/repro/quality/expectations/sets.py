"""``expect_column_values_to_be_in_set``."""

from __future__ import annotations

from typing import Any, Collection

from repro.errors import ExpectationError
from repro.quality.expectations.base import ColumnValueExpectation


class ExpectColumnValuesToBeInSet(ColumnValueExpectation):
    """Every value must belong to a declared value set.

    Detects the *incorrect category* error when the polluter replaced a
    value with one from outside the expected domain — and, dually, its
    complement (a restricted expectation set) can measure category swaps
    within the domain as distribution shifts.
    """

    def __init__(self, column: str, value_set: Collection[Any], mostly: float = 1.0) -> None:
        super().__init__(column, mostly)
        if not value_set:
            raise ExpectationError("value_set must be non-empty")
        self.value_set = frozenset(value_set)

    def is_expected(self, value: Any) -> bool:
        return value in self.value_set
