"""``expect_multicolumn_sum_to_equal``.

Experiment 3.1.2's detector for "BPM set to 0": the expectation *applies*
only to rows whose BPM is 0 and asserts that the sum of ``ActiveMinutes +
Distance + Steps`` is also 0 (the tracker was genuinely not worn). A tuple
whose BPM > 100 was zeroed by the polluter still carries activity, so the
sum is positive and the expectation fires.

This reproduction generalizes GX's expectation with an optional row filter
(``when``) — validating only rows satisfying a predicate — which is how the
experiment scopes the sum check to BPM==0 rows.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ExpectationError
from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.expectations.base import Expectation
from repro.quality.result import ExpectationResult
from repro.streaming.record import Record

RowFilter = Callable[[Record], bool]


class ExpectMulticolumnSumToEqual(Expectation):
    """The sum of several columns must equal ``total`` on every (kept) row."""

    def __init__(
        self,
        columns: Sequence[str],
        total: float,
        when: RowFilter | None = None,
        tolerance: float = 1e-9,
        mostly: float = 1.0,
    ) -> None:
        super().__init__(mostly)
        if not columns:
            raise ExpectationError("multicolumn sum needs at least one column")
        self.columns = tuple(columns)
        self.total = total
        self.when = when
        self.tolerance = tolerance

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        for name in self.columns:
            dataset.require_column(name)
        unexpected: list[int] = []
        element_count = 0
        for i, row in enumerate(dataset):
            if self.when is not None and not self.when(row):
                continue
            values = [row.get(c) for c in self.columns]
            if any(is_missing(v) for v in values):
                continue
            element_count += 1
            if abs(sum(values) - self.total) > self.tolerance:
                unexpected.append(i)
        return self._result(
            dataset, "+".join(self.columns), element_count, unexpected
        )
