"""``expect_column_pair_values_a_to_be_greater_than_b``.

Experiment 3.1.2 detects the km->cm unit error on ``Distance`` with this
expectation: clean data satisfies ``Steps > Distance`` (a step covers less
than a meter, distances are in km), while a cm-valued distance dwarfs the
step count. The *unexpected* rows are exactly the converted tuples.
"""

from __future__ import annotations

from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.expectations.base import Expectation
from repro.quality.result import ExpectationResult


class ExpectColumnPairValuesAToBeGreaterThanB(Expectation):
    """For every row, ``column_a``'s value must exceed ``column_b``'s.

    Rows where either value is missing are skipped; with ``or_equal=True``
    equality also conforms.
    """

    def __init__(
        self,
        column_a: str,
        column_b: str,
        or_equal: bool = False,
        mostly: float = 1.0,
    ) -> None:
        super().__init__(mostly)
        self.column_a = column_a
        self.column_b = column_b
        self.or_equal = or_equal

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        dataset.require_column(self.column_a)
        dataset.require_column(self.column_b)
        unexpected: list[int] = []
        element_count = 0
        for i, row in enumerate(dataset):
            a = row.get(self.column_a)
            b = row.get(self.column_b)
            if is_missing(a) or is_missing(b):
                continue
            element_count += 1
            ok = a >= b if self.or_equal else a > b
            if not ok:
                unexpected.append(i)
        return self._result(
            dataset, f"{self.column_a}>{self.column_b}", element_count, unexpected
        )
