"""The expectation catalogue.

Per-row expectations (not-null, regex, increasing, between, in-set,
unique, type, value-lengths, pair and multicolumn relations) report which
rows violate the constraint; aggregate expectations (mean, stdev, median,
quantiles, sum, unique-proportion, most-common-value) report a single
verdict on a column statistic. Every expectation the paper's Experiment 1
invokes is here, alongside the common remainder of GX's core set.
"""

from repro.quality.expectations.base import Expectation
from repro.quality.expectations.null import ExpectColumnValuesToNotBeNull
from repro.quality.expectations.regex import ExpectColumnValuesToMatchRegex
from repro.quality.expectations.increasing import ExpectColumnValuesToBeIncreasing
from repro.quality.expectations.pair import ExpectColumnPairValuesAToBeGreaterThanB
from repro.quality.expectations.multicolumn import ExpectMulticolumnSumToEqual
from repro.quality.expectations.between import ExpectColumnValuesToBeBetween
from repro.quality.expectations.sets import ExpectColumnValuesToBeInSet
from repro.quality.expectations.unique import ExpectColumnValuesToBeUnique
from repro.quality.expectations.types import ExpectColumnValuesToBeOfType
from repro.quality.expectations.stats import (
    ExpectColumnMeanToBeBetween,
    ExpectColumnStdevToBeBetween,
)
from repro.quality.expectations.distribution import (
    ExpectColumnMedianToBeBetween,
    ExpectColumnMostCommonValueToBeInSet,
    ExpectColumnProportionOfUniqueValuesToBeBetween,
    ExpectColumnQuantileValuesToBeBetween,
    ExpectColumnSumToBeBetween,
    ExpectColumnValueLengthsToBeBetween,
)

__all__ = [
    "Expectation",
    "ExpectColumnMeanToBeBetween",
    "ExpectColumnMedianToBeBetween",
    "ExpectColumnMostCommonValueToBeInSet",
    "ExpectColumnProportionOfUniqueValuesToBeBetween",
    "ExpectColumnQuantileValuesToBeBetween",
    "ExpectColumnSumToBeBetween",
    "ExpectColumnValueLengthsToBeBetween",
    "ExpectColumnPairValuesAToBeGreaterThanB",
    "ExpectColumnStdevToBeBetween",
    "ExpectColumnValuesToBeBetween",
    "ExpectColumnValuesToBeIncreasing",
    "ExpectColumnValuesToBeInSet",
    "ExpectColumnValuesToBeOfType",
    "ExpectColumnValuesToBeUnique",
    "ExpectColumnValuesToMatchRegex",
    "ExpectColumnValuesToNotBeNull",
    "ExpectMulticolumnSumToEqual",
]
