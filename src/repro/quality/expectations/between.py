"""``expect_column_values_to_be_between``."""

from __future__ import annotations

from typing import Any

from repro.errors import ExpectationError
from repro.quality.expectations.base import ColumnValueExpectation


class ExpectColumnValuesToBeBetween(ColumnValueExpectation):
    """Every value must fall in ``[min_value, max_value]`` (bounds optional).

    The standard detector for out-of-range errors: outlier spikes, sign
    flips on non-negative quantities, and unit conversions that blow past
    the physical range of an attribute.
    """

    def __init__(
        self,
        column: str,
        min_value: float | None = None,
        max_value: float | None = None,
        strict_min: bool = False,
        strict_max: bool = False,
        mostly: float = 1.0,
    ) -> None:
        super().__init__(column, mostly)
        if min_value is None and max_value is None:
            raise ExpectationError("between expectation needs at least one bound")
        if min_value is not None and max_value is not None and min_value > max_value:
            raise ExpectationError(f"empty range [{min_value}, {max_value}]")
        self.min_value = min_value
        self.max_value = max_value
        self.strict_min = strict_min
        self.strict_max = strict_max

    def is_expected(self, value: Any) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.min_value is not None:
            if value < self.min_value or (self.strict_min and value == self.min_value):
                return False
        if self.max_value is not None:
            if value > self.max_value or (self.strict_max and value == self.max_value):
                return False
        return True
