"""``expect_column_values_to_match_regex``.

Experiment 3.1.2 detects the reduced precision of ``CaloriesBurned`` with a
regex admitting at most three decimal places: a value rounded *to* precision
2 still matches, so the experiment's regex is applied to the *textual*
rendering of the value and crafted such that the pollution artifact
(exactly-two-decimal rendering where the clean data carried more digits)
falls outside it; see :mod:`repro.experiments.scenarios` for the exact
pattern used in the reproduction.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import ExpectationError
from repro.quality.expectations.base import ColumnValueExpectation


class ExpectColumnValuesToMatchRegex(ColumnValueExpectation):
    """Every value's string form must match the pattern (``re.fullmatch``
    when ``full=True``, the default, else ``re.search``)."""

    def __init__(self, column: str, regex: str, full: bool = True, mostly: float = 1.0) -> None:
        super().__init__(column, mostly)
        try:
            self._pattern = re.compile(regex)
        except re.error as exc:
            raise ExpectationError(f"invalid regex {regex!r}: {exc}") from exc
        self.regex = regex
        self.full = full

    def is_expected(self, value: Any) -> bool:
        text = value if isinstance(value, str) else repr(value)
        if self.full:
            return self._pattern.fullmatch(text) is not None
        return self._pattern.search(text) is not None
