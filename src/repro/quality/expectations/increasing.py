"""``expect_column_values_to_be_increasing``.

§3.1.3 detects delayed tuples with this expectation "on the Time attribute
..., since delayed tuples disturb the strictly increasing order of
timestamps inside the data stream". A row is unexpected when its value does
not exceed (``strictly=True``) or at least equal (``strictly=False``) the
previous non-missing value.

Note the measurement subtlety the paper reports (17.02 detected vs 17.6
expected): when a delayed tuple lands next to another delayed tuple, the
pair can be locally ordered, so order-based detection slightly undercounts.
"""

from __future__ import annotations

from typing import Any

from repro.quality.dataset import ValidationDataset, is_missing
from repro.quality.expectations.base import Expectation
from repro.quality.result import ExpectationResult


class ExpectColumnValuesToBeIncreasing(Expectation):
    """Column values must appear in (strictly) increasing row order."""

    def __init__(self, column: str, strictly: bool = True, mostly: float = 1.0) -> None:
        super().__init__(mostly)
        self.column = column
        self.strictly = strictly

    def _ok(self, previous: Any, current: Any) -> bool:
        if self.strictly:
            return current > previous
        return current >= previous

    def validate(self, dataset: ValidationDataset) -> ExpectationResult:
        dataset.require_column(self.column)
        unexpected: list[int] = []
        element_count = 0
        previous: Any = None
        for i, row in enumerate(dataset):
            value = row.get(self.column)
            if is_missing(value):
                continue
            if previous is not None:
                element_count += 1
                if not self._ok(previous, value):
                    unexpected.append(i)
            previous = value
        return self._result(dataset, self.column, element_count, unexpected)
