"""Detection scoring: precision/recall of a DQ tool against the ground truth.

Experiment 1 compares error *counts*; a polluter's real payoff is per-tuple
scoring — which injected errors did the detector find, which detections
were false alarms? The pollution log carries record ids; expectation
results carry unexpected record ids; joining them yields the classic
confusion metrics.

``score_detection`` treats the set of record ids touched by (a selection
of) polluters as positives, and the union of unexpected record ids across
(a selection of) expectation results as detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.log import PollutionLog
from repro.quality.result import ExpectationResult
from repro.quality.suite import ValidationReport


@dataclass(frozen=True)
class DetectionScore:
    """Confusion metrics of detected vs injected errors (by record id)."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def summary(self) -> str:
        return (
            f"TP={self.true_positives} FP={self.false_positives} "
            f"FN={self.false_negatives}  precision={self.precision:.3f} "
            f"recall={self.recall:.3f} f1={self.f1:.3f}"
        )


def _detected_ids(
    results: ValidationReport | ExpectationResult | Iterable[ExpectationResult],
) -> set[int]:
    if isinstance(results, ValidationReport):
        results = list(results)
    elif isinstance(results, ExpectationResult):
        results = [results]
    detected: set[int] = set()
    for result in results:
        detected.update(
            rid for rid in result.unexpected_record_ids if rid is not None
        )
    return detected


def injected_ids(
    log: PollutionLog,
    polluters: Sequence[str] | None = None,
    changed_only: bool = True,
) -> set[int]:
    """Record ids the pollution actually made dirty.

    ``changed_only`` skips firings that left every value unchanged (e.g. a
    unit conversion of a zero) — those are not errors a detector could or
    should find.
    """
    ids: set[int] = set()
    for event in log:
        if event.record_id is None:
            continue
        if polluters is not None and event.polluter not in polluters:
            continue
        if changed_only and not (
            event.dropped or event.duplicated or event.changed_attributes()
        ):
            continue
        ids.add(event.record_id)
    return ids


def score_detection(
    results: ValidationReport | ExpectationResult | Iterable[ExpectationResult],
    log: PollutionLog,
    polluters: Sequence[str] | None = None,
    known_clean_violations: Iterable[int] = (),
) -> DetectionScore:
    """Score detections against the pollution log.

    ``known_clean_violations`` lists record ids that violate the suite in
    the *clean* data (the wearable twin's two pre-existing violations);
    they are excluded from the false-positive count, since flagging them is
    correct behaviour that the pollution log cannot know about.
    """
    detected = _detected_ids(results)
    injected = injected_ids(log, polluters)
    excluded = set(known_clean_violations)
    tp = len(detected & injected)
    fp = len(detected - injected - excluded)
    fn = len(injected - detected)
    return DetectionScore(true_positives=tp, false_positives=fp, false_negatives=fn)
