"""Expectation validation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExpectationResult:
    """Outcome of validating one expectation against one dataset.

    Mirrors the fields GX reports that the paper's experiments consume:
    ``unexpected_count`` (the measured number of errors — Fig. 4's orange
    series, Table 1's "Measured with GX" column), the unexpected rows
    themselves, and an overall success flag.
    """

    expectation: str
    column: str | None
    success: bool
    element_count: int
    unexpected_count: int
    unexpected_indices: list[int] = field(default_factory=list)
    unexpected_record_ids: list[int | None] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def unexpected_percent(self) -> float:
        """Share of evaluated elements that violated the expectation."""
        if self.element_count == 0:
            return 0.0
        return 100.0 * self.unexpected_count / self.element_count

    def summary(self) -> str:
        status = "PASS" if self.success else "FAIL"
        col = f" on {self.column!r}" if self.column else ""
        return (
            f"[{status}] {self.expectation}{col}: "
            f"{self.unexpected_count}/{self.element_count} unexpected "
            f"({self.unexpected_percent:.2f}%)"
        )
