"""Validation datasets: the tabular view expectations run against.

A :class:`ValidationDataset` snapshots a sequence of stream records. It
keeps row order (order matters for ``expect_column_values_to_be_increasing``
— the expectation that detects delayed tuples) and retains each row's
``record_id`` so detections can be joined against the pollution log.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import ExpectationError
from repro.streaming.record import Record
from repro.streaming.schema import Schema


def is_missing(value: Any) -> bool:
    """Missing = ``None`` or NaN. The tool's single notion of nullity."""
    if value is None:
        return True
    return isinstance(value, float) and value != value


class ValidationDataset:
    """An ordered, column-accessible snapshot of records."""

    def __init__(
        self,
        records: Sequence[Record | Mapping[str, Any]],
        schema: Schema | None = None,
    ) -> None:
        self._rows: list[Record] = [
            r if isinstance(r, Record) else Record(r) for r in records
        ]
        self._schema = schema
        if self._rows:
            self._columns = tuple(self._rows[0].keys())
        elif schema is not None:
            self._columns = schema.names
        else:
            self._columns = ()

    @classmethod
    def from_pollution_output(cls, polluted: Sequence[Record], schema: Schema) -> "ValidationDataset":
        """Snapshot a pollution run's dirty stream in its integrated order."""
        return cls(polluted, schema)

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def schema(self) -> Schema | None:
        return self._schema

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._rows)

    def row(self, index: int) -> Record:
        return self._rows[index]

    def require_column(self, name: str) -> None:
        if not self._rows and self._schema is None:
            return  # empty schemaless snapshot: columns unknown, vacuous pass
        if name not in self._columns:
            raise ExpectationError(
                f"dataset has no column {name!r}; columns: {list(self._columns)}"
            )

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        self.require_column(name)
        return [r.get(name) for r in self._rows]

    def column_nonmissing(self, name: str) -> list[tuple[int, Any]]:
        """(row_index, value) pairs with missing values filtered out."""
        self.require_column(name)
        return [
            (i, r.get(name)) for i, r in enumerate(self._rows)
            if not is_missing(r.get(name))
        ]

    def record_ids(self, indices: Iterable[int]) -> list[int | None]:
        return [self._rows[i].record_id for i in indices]
