"""An expectations-based data-quality tool (Great Expectations stand-in).

Experiment 1 evaluates Icewafl by checking polluted streams with the DQ tool
Great Expectations (GX): users declare *expectations* — constraints clean
data should satisfy — and the tool reports how many elements violate each.
This package implements that model from scratch:

* :class:`~repro.quality.dataset.ValidationDataset` — a tabular snapshot of
  a (polluted) stream;
* :class:`~repro.quality.expectations.base.Expectation` subclasses — the
  constraint catalogue, including every expectation type the paper's
  experiments invoke (``not_be_null``, ``match_regex``, ``increasing``,
  ``pair_a_greater_than_b``, ``multicolumn_sum_to_equal``) plus the
  common remainder of GX's core set;
* :class:`~repro.quality.suite.ExpectationSuite` — a named bundle of
  expectations validated together, yielding a
  :class:`~repro.quality.suite.ValidationReport`.

Results expose per-row unexpected indices and record IDs so experiments can
score detections against the pollution log's ground truth.
"""

from repro.quality.dataset import ValidationDataset
from repro.quality.result import ExpectationResult
from repro.quality.suite import ExpectationSuite, ValidationReport
from repro.quality.expectations import (
    ExpectColumnMeanToBeBetween,
    ExpectColumnMedianToBeBetween,
    ExpectColumnMostCommonValueToBeInSet,
    ExpectColumnProportionOfUniqueValuesToBeBetween,
    ExpectColumnQuantileValuesToBeBetween,
    ExpectColumnSumToBeBetween,
    ExpectColumnValueLengthsToBeBetween,
    ExpectColumnPairValuesAToBeGreaterThanB,
    ExpectColumnStdevToBeBetween,
    ExpectColumnValuesToBeBetween,
    ExpectColumnValuesToBeIncreasing,
    ExpectColumnValuesToBeInSet,
    ExpectColumnValuesToBeOfType,
    ExpectColumnValuesToBeUnique,
    ExpectColumnValuesToMatchRegex,
    ExpectColumnValuesToNotBeNull,
    ExpectMulticolumnSumToEqual,
)

__all__ = [
    "ExpectColumnMeanToBeBetween",
    "ExpectColumnMedianToBeBetween",
    "ExpectColumnMostCommonValueToBeInSet",
    "ExpectColumnProportionOfUniqueValuesToBeBetween",
    "ExpectColumnQuantileValuesToBeBetween",
    "ExpectColumnSumToBeBetween",
    "ExpectColumnValueLengthsToBeBetween",
    "ExpectColumnPairValuesAToBeGreaterThanB",
    "ExpectColumnStdevToBeBetween",
    "ExpectColumnValuesToBeBetween",
    "ExpectColumnValuesToBeIncreasing",
    "ExpectColumnValuesToBeInSet",
    "ExpectColumnValuesToBeOfType",
    "ExpectColumnValuesToBeUnique",
    "ExpectColumnValuesToMatchRegex",
    "ExpectColumnValuesToNotBeNull",
    "ExpectMulticolumnSumToEqual",
    "ExpectationResult",
    "ExpectationSuite",
    "ValidationDataset",
    "ValidationReport",
]
