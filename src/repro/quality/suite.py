"""Expectation suites and validation reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ExpectationError
from repro.quality.dataset import ValidationDataset
from repro.quality.expectations.base import Expectation
from repro.quality.result import ExpectationResult


@dataclass
class ValidationReport:
    """All results of validating a suite against one dataset."""

    suite_name: str
    results: list[ExpectationResult] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return all(r.success for r in self.results)

    @property
    def total_unexpected(self) -> int:
        return sum(r.unexpected_count for r in self.results)

    def result_for(self, expectation_name: str, column: str | None = None) -> ExpectationResult:
        for r in self.results:
            if r.expectation == expectation_name and (column is None or r.column == column):
                return r
        raise ExpectationError(
            f"report has no result for {expectation_name!r}"
            + (f" on {column!r}" if column else "")
        )

    def summary(self) -> str:
        lines = [f"suite {self.suite_name!r}: "
                 f"{'PASS' if self.success else 'FAIL'} "
                 f"({self.total_unexpected} unexpected elements total)"]
        lines.extend("  " + r.summary() for r in self.results)
        return "\n".join(lines)

    def __iter__(self) -> Iterator[ExpectationResult]:
        return iter(self.results)


class ExpectationSuite:
    """A named bundle of expectations validated together.

    Mirrors GX's suite concept: experiments build one suite per pollution
    scenario (see :mod:`repro.experiments.scenarios`) and validate it
    against each polluted output stream.
    """

    def __init__(self, name: str, expectations: Sequence[Expectation] = ()) -> None:
        self.name = name
        self._expectations: list[Expectation] = list(expectations)

    def add(self, expectation: Expectation) -> "ExpectationSuite":
        self._expectations.append(expectation)
        return self

    def __len__(self) -> int:
        return len(self._expectations)

    def __iter__(self) -> Iterator[Expectation]:
        return iter(self._expectations)

    def validate(self, dataset: ValidationDataset) -> ValidationReport:
        if not self._expectations:
            raise ExpectationError(f"suite {self.name!r} has no expectations")
        report = ValidationReport(self.name)
        for expectation in self._expectations:
            report.results.append(expectation.validate(dataset))
        return report
