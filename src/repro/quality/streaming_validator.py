"""Continuous DQ monitoring: expectation suites over event-time windows.

The batch tool (:class:`~repro.quality.suite.ExpectationSuite`) validates a
finished snapshot; a stream consumer wants per-window verdicts as the
stream flows — Fig. 4's "errors per hour" is exactly a suite validated over
tumbling one-hour windows. :class:`StreamingValidator` is a process
function that buffers records per tumbling event-time window, validates the
suite when the watermark closes a window, and emits one
:class:`WindowReport` per window. Late records are validated into a
follow-up report rather than dropped (delayed tuples are, after all, the
error type under study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExpectationError
from repro.quality.dataset import ValidationDataset
from repro.quality.suite import ExpectationSuite, ValidationReport
from repro.streaming.environment import StreamExecutionEnvironment
from repro.streaming.operators import Collector, ProcessContext, ProcessFunction
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.time import Duration
from repro.streaming.watermarks import Watermark
from repro.streaming.windows import TimeWindow, TumblingEventTimeWindows


@dataclass
class WindowReport:
    """One window's validation outcome."""

    window: TimeWindow
    report: ValidationReport
    n_records: int
    is_late_update: bool = False

    def unexpected(self, expectation: str) -> int:
        return self.report.result_for(expectation).unexpected_count


class StreamingValidator(ProcessFunction):
    """Validates an expectation suite per tumbling event-time window."""

    def __init__(
        self,
        suite: ExpectationSuite,
        schema: Schema,
        window_size: Duration,
    ) -> None:
        if len(suite) == 0:
            raise ExpectationError("streaming validator needs a non-empty suite")
        self._suite = suite
        self._schema = schema
        self._assigner = TumblingEventTimeWindows(window_size)
        self._buffers: dict[TimeWindow, list[Record]] = {}
        self._fired: set[TimeWindow] = set()
        self._watermark = Watermark.min().timestamp
        self.reports: list[WindowReport] = []

    def process(self, record: Record, ctx: ProcessContext, out: Collector) -> None:
        if record.event_time is None:
            raise ExpectationError("streaming validation needs event-time records")
        [window] = self._assigner.assign(record.event_time)
        self._buffers.setdefault(window, []).append(record)

    def on_watermark(self, watermark: Watermark, out: Collector) -> None:
        self._watermark = watermark.timestamp
        ready = sorted(
            w for w in self._buffers if w.end - 1 <= watermark.timestamp
        )
        for window in ready:
            records = self._buffers.pop(window)
            dataset = ValidationDataset(records, self._schema)
            report = WindowReport(
                window=window,
                report=self._suite.validate(dataset),
                n_records=len(records),
                is_late_update=window in self._fired,
            )
            self._fired.add(window)
            self.reports.append(report)
            out.collect(_report_record(report))

    def failing_windows(self) -> list[WindowReport]:
        return [r for r in self.reports if not r.report.success]


def _report_record(report: WindowReport) -> Record:
    rec = Record(
        {
            "window_start": report.window.start,
            "window_end": report.window.end,
            "records": report.n_records,
            "unexpected": report.report.total_unexpected,
            "success": report.report.success,
        }
    )
    rec.event_time = report.window.start
    return rec


def validate_stream(
    records: Sequence[Record],
    schema: Schema,
    suite: ExpectationSuite,
    window_size: Duration,
) -> list[WindowReport]:
    """Convenience driver: run a stream through a validator, return reports."""
    validator = StreamingValidator(suite, schema, window_size)
    env = StreamExecutionEnvironment()
    from repro.streaming.sink import NullSink

    env.from_collection(schema, records, validate=False).process(
        validator, name="dq-validate"
    ).add_sink(NullSink())
    env.execute()
    return validator.reports
