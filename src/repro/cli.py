"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``pollute``
    Pollute a CSV stream with a JSON pollution config::

        python -m repro pollute --config scenario.json --schema schema.json \\
            --input clean.csv --output dirty.csv --log log.csv --seed 42

``check``
    Statically analyze a pollution plan against a schema — no records flow::

        python -m repro check --config scenario.json --schema schema.json \\
            --format json --parallel 4 --seed 42

    Exit code is 1 when any diagnostic at or above ``--fail-on`` (default
    ``error``) is found; ``--list-rules`` prints the ``ICE...`` catalogue.

``validate``
    Validate a CSV stream against a JSON expectation-suite spec::

        python -m repro validate --suite suite.json --schema schema.json \\
            --input dirty.csv

``generate``
    Write one of the built-in synthetic datasets to CSV::

        python -m repro generate wearable --output wearable.csv
        python -m repro generate airquality --station Gucheng --hours 8760 \\
            --output gucheng.csv

``serve``
    Run the pollution-as-a-service HTTP/WebSocket server::

        python -m repro serve --port 8742 --jobs 2

    Jobs are submitted as JSON to ``POST /jobs``, validated by ``repro
    check`` at admission, and streamed back over ``/jobs/{id}/stream``;
    see the README "Serving" section for the protocol.

Every command exits 130 on SIGINT/SIGTERM after a clean shutdown —
parallel runs terminate their worker processes, and ``pollute`` flushes
any partial run ledger and metrics before exiting.

Schema files are JSON: ``{"attributes": [{"name": ..., "dtype":
"float|int|string|bool|timestamp|category", "nullable": true}],
"timestamp_attribute": "..."}``. Suite files: ``{"name": ...,
"expectations": [{"type": "not_be_null", "column": ...}, ...]}`` with the
types registered in :data:`EXPECTATION_REGISTRY`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.config import pipeline_from_config
from repro.core.runner import pollute
from repro.datasets.io import load_records, save_records
from repro.errors import ConfigError, IcewaflError
from repro.obs import FORMATS, MetricsRegistry, RunLedger, Tracer, write_metrics
from repro.quality import (
    ExpectColumnMeanToBeBetween,
    ExpectColumnMedianToBeBetween,
    ExpectColumnPairValuesAToBeGreaterThanB,
    ExpectColumnProportionOfUniqueValuesToBeBetween,
    ExpectColumnStdevToBeBetween,
    ExpectColumnSumToBeBetween,
    ExpectColumnValueLengthsToBeBetween,
    ExpectColumnValuesToBeBetween,
    ExpectColumnValuesToBeIncreasing,
    ExpectColumnValuesToBeInSet,
    ExpectColumnValuesToBeUnique,
    ExpectColumnValuesToMatchRegex,
    ExpectColumnValuesToNotBeNull,
    ExpectationSuite,
    ValidationDataset,
)
from repro.streaming.schema import Attribute, DataType, Schema

EXPECTATION_REGISTRY: dict[str, Callable[..., Any]] = {
    "not_be_null": lambda column, **kw: ExpectColumnValuesToNotBeNull(column, **kw),
    "match_regex": lambda column, regex, **kw: ExpectColumnValuesToMatchRegex(column, regex, **kw),
    "be_increasing": lambda column, **kw: ExpectColumnValuesToBeIncreasing(column, **kw),
    "pair_a_greater_than_b": lambda column_a, column_b, **kw: ExpectColumnPairValuesAToBeGreaterThanB(
        column_a, column_b, **kw
    ),
    "be_between": lambda column, **kw: ExpectColumnValuesToBeBetween(column, **kw),
    "be_in_set": lambda column, value_set, **kw: ExpectColumnValuesToBeInSet(
        column, value_set, **kw
    ),
    "be_unique": lambda column, **kw: ExpectColumnValuesToBeUnique(column, **kw),
    "mean_between": lambda column, **kw: ExpectColumnMeanToBeBetween(column, **kw),
    "stdev_between": lambda column, **kw: ExpectColumnStdevToBeBetween(column, **kw),
    "median_between": lambda column, **kw: ExpectColumnMedianToBeBetween(column, **kw),
    "sum_between": lambda column, **kw: ExpectColumnSumToBeBetween(column, **kw),
    "unique_proportion_between": lambda column, **kw: ExpectColumnProportionOfUniqueValuesToBeBetween(
        column, **kw
    ),
    "value_lengths_between": lambda column, **kw: ExpectColumnValueLengthsToBeBetween(
        column, **kw
    ),
}


def schema_from_config(spec: Mapping[str, Any]) -> Schema:
    """Build a :class:`Schema` from its JSON form."""
    attrs_spec = spec.get("attributes")
    if not attrs_spec:
        raise ConfigError("schema spec needs a non-empty 'attributes' list")
    attributes = []
    for a in attrs_spec:
        try:
            dtype = DataType(a.get("dtype", "float"))
        except ValueError as exc:
            raise ConfigError(
                f"unknown dtype {a.get('dtype')!r} for attribute {a.get('name')!r}"
            ) from exc
        attributes.append(
            Attribute(
                a["name"],
                dtype,
                nullable=a.get("nullable", True),
                domain=tuple(a["domain"]) if "domain" in a else None,
            )
        )
    return Schema(attributes, timestamp_attribute=spec.get("timestamp_attribute"))


def suite_from_config(spec: Mapping[str, Any]) -> ExpectationSuite:
    """Build an :class:`ExpectationSuite` from its JSON form."""
    expectations_spec = spec.get("expectations")
    if not expectations_spec:
        raise ConfigError("suite spec needs a non-empty 'expectations' list")
    suite = ExpectationSuite(spec.get("name", "suite"))
    for e in expectations_spec:
        kind = e.get("type")
        if kind not in EXPECTATION_REGISTRY:
            raise ConfigError(
                f"unknown expectation type {kind!r}; known: {sorted(EXPECTATION_REGISTRY)}"
            )
        kwargs = {k: v for k, v in e.items() if k != "type"}
        try:
            suite.add(EXPECTATION_REGISTRY[kind](**kwargs))
        except TypeError as exc:
            raise ConfigError(f"bad arguments for expectation {kind!r}: {exc}") from exc
    return suite


def _load_json(path: str) -> Any:
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _failure_policy_from_args(args: argparse.Namespace):
    from repro.streaming.supervision import (
        DEAD_LETTER,
        FAIL_FAST,
        SKIP,
        FailurePolicy,
    )

    if args.on_error == "fail":
        return FAIL_FAST
    if args.on_error == "skip":
        return SKIP
    if args.on_error == "dead-letter":
        return DEAD_LETTER
    try:
        return FailurePolicy.retry(getattr(args, "retries", 3))
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def _compiled_plan(spec: Mapping[str, Any], schema: Schema, args: argparse.Namespace):
    """Compile the execution plan a run with these CLI options would get.

    Shared by ``repro plan`` (the whole point) and ``repro check`` (the
    ``--explain`` / JSON plan block). Compilation is pure — no records flow.
    """
    from repro.plan import PlanRequest, compile_plan

    pipeline = pipeline_from_config(spec)
    policy = _failure_policy_from_args(args) if args.on_error else None
    request = PlanRequest(
        pipelines=pipeline,
        schema=schema,
        seed=args.seed,
        engine=getattr(args, "engine", None) or "direct",
        failure_policy=policy,
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        parallelism=args.parallel,
        key_by=args.key_by,
        batch_size=args.batch_size,
    )
    return compile_plan(request)


def cmd_plan(args: argparse.Namespace) -> int:
    """``repro plan``: print the compiled execution plan without running it."""
    schema = schema_from_config(_load_json(args.schema))
    blocks = []
    payloads = []
    for config_path in args.config:
        plan = _compiled_plan(_load_json(config_path), schema, args)
        if args.format == "json":
            payloads.append({"config": str(config_path), **plan.to_dict()})
        else:
            blocks.append(f"{config_path}:\n" + "\n".join(
                f"  {line}" for line in plan.render_text().splitlines()
            ))
    rendered = (
        json.dumps(payloads if len(payloads) != 1 else payloads[0], indent=2)
        if args.format == "json"
        else "\n".join(blocks)
    )
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"wrote {len(args.config)} plan(s) to {args.output}")
    else:
        print(rendered)
    return 0


def _check_parallel_args(args: argparse.Namespace) -> None:
    """Reject option combinations the runtimes cannot honour, with the
    explanation up front instead of a deep traceback."""
    if args.parallel is not None and args.parallel < 1:
        raise ConfigError(f"--parallel must be >= 1, got {args.parallel}")
    if args.parallel is not None and args.trace_out is not None:
        raise ConfigError(
            "--trace-out is not supported with --parallel: span context does "
            "not cross the worker process boundary; drop one of the two"
        )
    if args.resume_from is not None:
        resume = Path(args.resume_from)
        if args.parallel is not None and resume.is_file():
            raise ConfigError(
                f"--resume-from {args.resume_from} is a sequential checkpoint "
                "file but --parallel was given; resume it without --parallel, "
                "or point --resume-from at a parallel checkpoint directory"
            )
        if args.parallel is None and resume.is_dir():
            raise ConfigError(
                f"--resume-from {args.resume_from} is a parallel checkpoint "
                "directory; pass --parallel N (matching the original run) to "
                "resume it"
            )
    if args.parallel is None:
        if args.max_shard_restarts is not None:
            raise ConfigError(
                "--max-shard-restarts only applies to --parallel runs"
            )
        if args.heartbeat_timeout is not None:
            raise ConfigError(
                "--heartbeat-timeout only applies to --parallel runs"
            )
    elif args.max_shard_restarts is not None and args.max_shard_restarts < 0:
        raise ConfigError(
            f"--max-shard-restarts must be >= 0, got {args.max_shard_restarts}"
        )


def cmd_pollute(args: argparse.Namespace) -> int:
    _check_parallel_args(args)
    schema = schema_from_config(_load_json(args.schema))
    pipeline = pipeline_from_config(_load_json(args.config))
    records = load_records(schema, args.input)
    metrics = MetricsRegistry() if args.metrics_out else None
    tracer = Tracer() if args.trace_out else None
    ledger = RunLedger() if args.ledger_out else None
    kwargs: dict[str, Any] = {
        "metrics": metrics,
        "tracer": tracer,
        "ledger": ledger,
        "profile": bool(args.profile),
        "progress": bool(args.progress),
    }
    if args.on_error is not None or args.checkpoint_dir is not None:
        kwargs.update(
            failure_policy=_failure_policy_from_args(args) if args.on_error else None,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval,
        )
    if args.parallel is not None:
        kwargs["parallelism"] = args.parallel
        kwargs["checkpoint_interval"] = args.checkpoint_interval
        if args.max_shard_restarts is not None:
            kwargs["max_shard_restarts"] = args.max_shard_restarts
        if args.heartbeat_timeout is not None:
            # 0 is the CLI spelling of "no hang detection".
            kwargs["heartbeat_timeout"] = (
                args.heartbeat_timeout if args.heartbeat_timeout > 0 else None
            )
    if args.key_by is not None:
        kwargs["key_by"] = args.key_by
    if args.resume_from is not None:
        kwargs["resume_from"] = args.resume_from
    if args.batch_size is not None:
        kwargs["batch_size"] = args.batch_size
    kwargs["check"] = args.check
    try:
        result = pollute(records, pipeline, schema=schema, seed=args.seed, **kwargs)
    except KeyboardInterrupt:
        # The engines' cleanup already ran (worker processes terminated by
        # the coordinator's finally); persist whatever observability state
        # the run accumulated so an interrupted run still leaves evidence.
        _flush_interrupted(args, ledger, metrics, tracer)
        raise
    save_records(result.polluted, schema, args.output)
    if args.log:
        result.log.to_csv(args.log)
    print(
        f"polluted {result.n_clean} -> {result.n_polluted} tuples, "
        f"{len(result.log)} errors injected "
        f"({args.output}{', log: ' + args.log if args.log else ''})"
    )
    report = result.report
    if report is not None and report.supervised:
        print(report.summary())
        if report.dead_letters:
            print(report.dead_letters.summary())
    if args.profile and result.profile is not None:
        print(result.profile.render_table())
    if ledger is not None:
        ledger.to_jsonl(args.ledger_out)
        print(f"run ledger: {len(ledger)} events ({args.ledger_out})")
    if metrics is not None:
        write_metrics(metrics, args.metrics_out, args.metrics_format, tracer=tracer)
    if tracer is not None:
        tracer.to_jsonl(args.trace_out)
    return 0


def _flush_interrupted(
    args: argparse.Namespace,
    ledger: RunLedger | None,
    metrics: MetricsRegistry | None,
    tracer: Tracer | None,
) -> None:
    """Best-effort flush of partial observability output after an interrupt."""
    if ledger is not None and args.ledger_out:
        try:
            ledger.to_jsonl(args.ledger_out)
            print(
                f"interrupted: flushed {len(ledger)} ledger events to "
                f"{args.ledger_out}",
                file=sys.stderr,
            )
        except OSError:
            pass
    if metrics is not None and args.metrics_out and str(args.metrics_out) != "-":
        try:
            write_metrics(metrics, args.metrics_out, args.metrics_format, tracer=tracer)
            print(f"interrupted: flushed metrics to {args.metrics_out}", file=sys.stderr)
        except OSError:
            pass


def _parse_time_bound(text: str) -> int:
    """An epoch-seconds integer or a timestamp string like ``2016-03-01``."""
    try:
        return int(text)
    except ValueError:
        from repro.streaming.time import parse_timestamp

        return parse_timestamp(text)


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check import (
        RULES,
        CheckOptions,
        Severity,
        analyze_config,
        factbase_for,
        plan_summary,
        render_explain,
    )
    from repro.core.config import pipeline_from_config

    if args.list_rules:
        for rule in RULES.values():
            print(
                f"{rule.rule_id}  {rule.severity.label:<7} "
                f"{rule.slug:<44} {rule.summary}"
            )
            print(f"{'':21}fix: {rule.fix}")
        return 0
    if not args.config or not args.schema:
        raise ConfigError("repro check needs --config and --schema (or --list-rules)")
    schema = schema_from_config(_load_json(args.schema))
    time_range = None
    if args.time_range:
        start, end = (_parse_time_bound(t) for t in args.time_range)
        time_range = (start, end)
    policy_actions = {
        "fail": "fail_fast",
        "skip": "skip",
        "retry": "retry",
        "dead-letter": "dead_letter",
    }
    options = CheckOptions(
        seed=args.seed,
        parallelism=args.parallel,
        key_by=args.key_by,
        time_range=time_range,
        failure_policy=(
            policy_actions[args.on_error] if args.on_error else None
        ),
        batch_size=args.batch_size,
    )
    fail_on = Severity.from_label(args.fail_on)
    entries = []
    exit_code = 0
    for config_path in args.config:
        spec = _load_json(config_path)
        report = analyze_config(spec, schema, options)
        base = None
        try:
            base = factbase_for(pipeline_from_config(spec))
        except ConfigError:
            pass  # ICE001 already reported; there are no facts to dump
        plan = None
        try:
            plan = _compiled_plan(spec, schema, args)
        except IcewaflError:
            pass  # invalid combination; diagnostics above already explain it
        entries.append((config_path, report, base, plan))
        exit_code = max(exit_code, report.exit_code(fail_on))
    if args.format == "json":
        reports = []
        for path, report, base, plan in entries:
            entry = {"config": str(path), **report.to_dict()}
            if base is not None:
                entry["facts"] = plan_summary(base)
            if plan is not None:
                entry["plan"] = plan.to_dict()
            reports.append(entry)
        payload = {"fail_on": fail_on.label, "reports": reports}
        rendered = json.dumps(payload, indent=2)
    else:
        blocks = []
        for path, report, base, plan in entries:
            body = "\n".join(f"  {line}" for line in report.render_text().splitlines())
            block = f"{path}:\n{body}"
            if args.explain and base is not None:
                facts = "\n".join(
                    f"  {line}" for line in render_explain(base).splitlines()
                )
                block = f"{block}\n{facts}"
            if args.explain and plan is not None:
                plan_text = "\n".join(
                    f"  {line}" for line in plan.render_text().splitlines()
                )
                block = f"{block}\n{plan_text}"
            blocks.append(block)
        rendered = "\n".join(blocks)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        total = sum(len(report) for _, report, _, _ in entries)
        print(f"wrote {total} diagnostic(s) for {len(entries)} config(s) to {args.output}")
    else:
        print(rendered)
    return exit_code


def _validation_metrics(report) -> MetricsRegistry:
    """Fold a :class:`ValidationReport` into counters for export."""
    registry = MetricsRegistry()
    for res in report.results:
        outcome = "pass" if res.success else "fail"
        registry.counter("validation_expectations_total", outcome=outcome).value += 1
        elements = registry.counter(
            "validation_elements_total",
            expectation=res.expectation,
            column=res.column or "",
        )
        elements.value += res.element_count
        unexpected = registry.counter(
            "validation_unexpected_total",
            expectation=res.expectation,
            column=res.column or "",
        )
        unexpected.value += res.unexpected_count
    return registry


def cmd_validate(args: argparse.Namespace) -> int:
    schema = schema_from_config(_load_json(args.schema))
    suite = suite_from_config(_load_json(args.suite))
    records = load_records(schema, args.input)
    tracer = Tracer() if args.trace_out else None
    if tracer is not None:
        with tracer.span("validate", kind="validation", suite=suite.name):
            report = suite.validate(ValidationDataset(records, schema))
        for res in report.results:
            tracer.event(
                "validate." + res.expectation,
                kind="validation",
                column=res.column or "",
                success=res.success,
                unexpected=res.unexpected_count,
            )
        tracer.to_jsonl(args.trace_out)
    else:
        report = suite.validate(ValidationDataset(records, schema))
    print(report.summary())
    if args.metrics_out:
        write_metrics(_validation_metrics(report), args.metrics_out, args.metrics_format)
    return 0 if report.success else 1


CLEANER_REGISTRY: dict[str, Callable[..., Any]] = {
    "hampel": lambda attributes, window=5, n_sigmas=3.0, **_: __import__(
        "repro.cleaning", fromlist=["HampelFilter"]
    ).HampelFilter(attributes, window=int(window), n_sigmas=float(n_sigmas)),
    "speed": lambda attributes, max_speed, **_: __import__(
        "repro.cleaning", fromlist=["SpeedConstraintCleaner"]
    ).SpeedConstraintCleaner(attributes, max_speed=float(max_speed)),
    "interpolate": lambda attributes, max_gap=None, **_: __import__(
        "repro.cleaning", fromlist=["InterpolationImputer"]
    ).InterpolationImputer(
        attributes, max_gap_seconds=int(max_gap) if max_gap else None
    ),
}


def cmd_clean(args: argparse.Namespace) -> int:
    schema = schema_from_config(_load_json(args.schema))
    options = dict(kv.split("=", 1) for kv in (args.option or []))
    try:
        cleaner = CLEANER_REGISTRY[args.cleaner](args.attribute, **options)
    except TypeError as exc:
        raise ConfigError(f"bad options for cleaner {args.cleaner!r}: {exc}") from exc
    records = load_records(schema, args.input)
    result = cleaner.clean(records, schema)
    save_records(result.cleaned, schema, args.output)
    print(
        f"cleaned {len(records)} tuples with {args.cleaner}: "
        f"{len(result.repairs)} values repaired ({args.output})"
    )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "wearable":
        from repro.datasets.wearable import WEARABLE_SCHEMA, generate_wearable

        records = generate_wearable()
        save_records(records, WEARABLE_SCHEMA, args.output)
    else:
        from repro.datasets.airquality import (
            AIR_QUALITY_SCHEMA,
            AirQualityConfig,
            generate_air_quality,
        )

        cfg = AirQualityConfig(stations=(args.station,), n_hours=args.hours)
        records = generate_air_quality(cfg)[args.station]
        save_records(records, AIR_QUALITY_SCHEMA, args.output)
    print(f"wrote {len(records)} tuples to {args.output}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.admission import AdmissionLimits
    from repro.serve.server import ServeConfig, run_server

    if args.jobs < 1:
        raise ConfigError(f"--jobs must be >= 1, got {args.jobs}")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrent_jobs=args.jobs,
        limits=AdmissionLimits(
            max_queued_jobs=args.max_queued,
            max_jobs_per_tenant=args.tenant_quota,
            fail_on=args.fail_on,
        ),
        result_ttl=args.result_ttl,
        send_timeout=args.send_timeout,
    )

    def ready(host: str, port: int) -> None:
        print(f"repro serve listening on http://{host}:{port}", flush=True)

    asyncio.run(run_server(config, ready=ready))
    return 0


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write run metrics to PATH ('-' = stdout); enables metrics collection",
    )
    p.add_argument(
        "--metrics-format", choices=list(FORMATS), default="summary",
        help="metrics output format (default summary)",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write span records as JSONL to PATH; enables tracing",
    )


def _add_live_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--progress", action="store_true",
        help="live progress on stderr: an in-place top-style per-shard table "
        "on a TTY, one plain line per refresh otherwise",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="attribute run time to phases, nodes, and batch kernels "
        "(including FallbackKernel polluters); prints a top-offenders table",
    )
    p.add_argument(
        "--ledger-out", default=None, metavar="PATH",
        help="write the run's structured lifecycle event log (run/shard/"
        "checkpoint events, merged across workers) as JSONL to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Icewafl reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pollute", help="pollute a CSV stream with a JSON config")
    p.add_argument("--config", required=True, help="pollution pipeline JSON")
    p.add_argument("--schema", required=True, help="stream schema JSON")
    p.add_argument("--input", required=True, help="clean input CSV")
    p.add_argument("--output", required=True, help="polluted output CSV")
    p.add_argument("--log", help="optional pollution-log CSV (ground truth)")
    p.add_argument("--seed", type=int, default=None, help="run seed (reproducibility)")
    p.add_argument(
        "--on-error",
        choices=["fail", "skip", "retry", "dead-letter"],
        default=None,
        help="supervise operators with this failure policy (uses the stream engine)",
    )
    p.add_argument(
        "--retries", type=int, default=3,
        help="max attempts for --on-error retry (default 3)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for periodic state checkpoints (uses the stream engine)",
    )
    p.add_argument(
        "--checkpoint-interval", type=int, default=100,
        help="source records between checkpoints (default 100)",
    )
    p.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="shard the run across N worker processes (deterministic merge; "
        "byte-identical to sequential output for --key-by plans)",
    )
    p.add_argument(
        "--key-by", default=None, metavar="ATTR",
        help="partition the stream by this attribute; each key gets a fresh "
        "instance of the configured pipeline",
    )
    p.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="micro-batching fast path: process records in slabs of N with "
        "fused batch kernels (byte-identical output; combines with --parallel)",
    )
    p.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="resume a checkpointed run: a .ckpt file for sequential runs, "
        "a parallel checkpoint directory for --parallel runs",
    )
    p.add_argument(
        "--max-shard-restarts", type=int, default=None, metavar="N",
        help="with --parallel: in-run respawn budget per shard for crashed "
        "or hung workers (default 2); after the budget, --on-error decides "
        "between failing and degrading the shard to a sequential drain",
    )
    p.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="with --parallel: declare a worker hung after this much silence "
        "and recover it (default 30; 0 disables hang detection)",
    )
    p.add_argument(
        "--check", choices=["error", "warn", "off"], default="warn",
        help="pre-flight static plan analysis before running (default warn)",
    )
    _add_observability_args(p)
    _add_live_args(p)
    p.set_defaults(fn=cmd_pollute)

    k = sub.add_parser(
        "check", help="statically analyze a pollution plan without running it"
    )
    k.add_argument(
        "--config", action="append", default=[], metavar="PATH",
        help="pollution pipeline JSON (repeatable)",
    )
    k.add_argument("--schema", default=None, help="stream schema JSON")
    k.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default text)",
    )
    k.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    k.add_argument("--seed", type=int, default=None, help="intended run seed")
    k.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="intended worker count (enables parallel-safety rules)",
    )
    k.add_argument(
        "--key-by", default=None, metavar="ATTR",
        help="intended partitioning attribute",
    )
    k.add_argument(
        "--time-range", nargs=2, default=None, metavar=("START", "END"),
        help="stream event-time bounds (epoch seconds or 'YYYY-MM-DD'); "
        "enables dead-window detection",
    )
    k.add_argument(
        "--on-error",
        choices=["fail", "skip", "retry", "dead-letter"],
        default=None,
        help="intended failure policy (enables supervision-composition rules)",
    )
    k.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="intended micro-batch slab size (enables the ICE7xx "
        "performance lints)",
    )
    k.add_argument(
        "--explain", action="store_true",
        help="append a per-leaf fact dump (kernel eligibility with reasons, "
        "effect sets, sort stability, predicted batch speedup) to the text "
        "report",
    )
    k.add_argument(
        "--fail-on", choices=["error", "warning", "info"], default="error",
        help="exit 1 when a diagnostic at or above this severity exists "
        "(default error)",
    )
    k.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    k.set_defaults(fn=cmd_check)

    pl = sub.add_parser(
        "plan",
        help="compile a run to its execution plan and print the IR "
        "(engine choice, stages, decision reasons) without running it",
    )
    pl.add_argument(
        "--config", action="append", required=True, metavar="PATH",
        help="pollution pipeline JSON (repeatable)",
    )
    pl.add_argument("--schema", required=True, help="stream schema JSON")
    pl.add_argument("--seed", type=int, default=None, help="intended run seed")
    pl.add_argument(
        "--engine", choices=["direct", "stream"], default=None,
        help="requested sequential engine (default direct)",
    )
    pl.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="intended worker count (compiles to the parallel engine)",
    )
    pl.add_argument(
        "--key-by", default=None, metavar="ATTR",
        help="intended partitioning attribute",
    )
    pl.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="intended micro-batch slab size",
    )
    pl.add_argument(
        "--on-error",
        choices=["fail", "skip", "retry", "dead-letter"],
        default=None,
        help="intended failure policy",
    )
    pl.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per record for --on-error retry (default 3)",
    )
    pl.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="intended checkpoint directory",
    )
    pl.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="plan rendering (default text)",
    )
    pl.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the plan to PATH instead of stdout",
    )
    pl.set_defaults(fn=cmd_plan)

    v = sub.add_parser("validate", help="validate a CSV stream with a suite")
    v.add_argument("--suite", required=True, help="expectation suite JSON")
    v.add_argument("--schema", required=True, help="stream schema JSON")
    v.add_argument("--input", required=True, help="input CSV to validate")
    _add_observability_args(v)
    v.set_defaults(fn=cmd_validate)

    c = sub.add_parser("clean", help="repair a CSV stream with a cleaning algorithm")
    c.add_argument("--cleaner", required=True, choices=sorted(CLEANER_REGISTRY))
    c.add_argument("--schema", required=True, help="stream schema JSON")
    c.add_argument("--input", required=True, help="dirty input CSV")
    c.add_argument("--output", required=True, help="repaired output CSV")
    c.add_argument(
        "--attribute", action="append", required=True,
        help="attribute to clean (repeatable)",
    )
    c.add_argument(
        "--option", action="append", metavar="KEY=VALUE",
        help="cleaner option, e.g. window=7, max_speed=0.05 (repeatable)",
    )
    c.set_defaults(fn=cmd_clean)

    g = sub.add_parser("generate", help="write a built-in synthetic dataset")
    g.add_argument("dataset", choices=["wearable", "airquality"])
    g.add_argument("--output", required=True, help="output CSV path")
    g.add_argument("--station", default="Wanshouxigong", help="air-quality station")
    g.add_argument("--hours", type=int, default=24 * 365, help="air-quality stream hours")
    g.set_defaults(fn=cmd_generate)

    s = sub.add_parser("serve", help="run the pollution-as-a-service server")
    s.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    s.add_argument(
        "--port", type=int, default=8742,
        help="bind port (default 8742; 0 picks a free port)",
    )
    s.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="concurrent job execution slots (default 2)",
    )
    s.add_argument(
        "--max-queued", type=int, default=64, metavar="N",
        help="global queued-job bound; submissions beyond it get 429 (default 64)",
    )
    s.add_argument(
        "--tenant-quota", type=int, default=8, metavar="N",
        help="max queued+running jobs per tenant (default 8)",
    )
    s.add_argument(
        "--result-ttl", type=float, default=600.0, metavar="SECONDS",
        help="how long finished jobs keep their results (default 600)",
    )
    s.add_argument(
        "--send-timeout", type=float, default=10.0, metavar="SECONDS",
        help="stream send deadline before a slow consumer is disconnected "
        "(default 10)",
    )
    s.add_argument(
        "--fail-on", choices=["error", "warning", "info"], default="error",
        help="admission severity threshold for the repro-check gate "
        "(default error)",
    )
    s.set_defaults(fn=cmd_serve)
    return parser


def _install_signal_handlers() -> None:
    """Route SIGTERM through the KeyboardInterrupt path.

    One shutdown story for both signals: the exception unwinds through the
    engines' ``finally`` blocks (worker processes terminated, shards
    drained), ``cmd_pollute`` flushes partial ledger/metrics, and
    :func:`main` turns it into exit code 130 with no traceback.
    """
    import signal

    def _terminate(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread (e.g. main() called from a test worker)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _install_signal_handlers()
    try:
        return args.fn(args)
    except (IcewaflError, FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted: shut down cleanly", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
