"""A small single-process stream-processing substrate (mini-Flink).

This package stands in for Apache Flink in the Icewafl reproduction. It
provides everything the pollution model in :mod:`repro.core` needs from a
stream processor:

* a typed record/schema data model (:mod:`repro.streaming.record`,
  :mod:`repro.streaming.schema`),
* event-time handling and watermarks (:mod:`repro.streaming.time`,
  :mod:`repro.streaming.watermarks`),
* sources and sinks (:mod:`repro.streaming.source`, :mod:`repro.streaming.sink`),
* stateless and keyed stateful operators (:mod:`repro.streaming.operators`,
  :mod:`repro.streaming.keyed`),
* event-time windows (:mod:`repro.streaming.windows`),
* stream splitting/union for integration scenarios
  (:mod:`repro.streaming.split`), and
* a fluent execution environment that wires operators into a dataflow graph
  and runs it tuple-at-a-time or in micro-batches
  (:mod:`repro.streaming.environment`).

The engine is push-based: sources emit records into a DAG of operator nodes;
each node transforms records and forwards them downstream. Execution is
deterministic — given the same input order and seeds, the output is
byte-identical, which Icewafl's reproducible pollution logs rely on.
"""

from repro.streaming.chaos import ChaosConfig, FaultingNode, FaultingSource
from repro.streaming.checkpoint import (
    Checkpoint,
    CheckpointStore,
    load_checkpoint,
)
from repro.streaming.environment import DataStream, StreamExecutionEnvironment
from repro.streaming.partition import (
    AttributeKeySelector,
    KeyPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from repro.streaming.record import Record
from repro.streaming.supervision import (
    DEAD_LETTER,
    FAIL_FAST,
    SKIP,
    DeadLetterSink,
    ExecutionReport,
    FailureAction,
    FailureContext,
    FailurePolicy,
)
from repro.streaming.schema import Attribute, DataType, Schema
from repro.streaming.sink import CollectSink, CountingSink, CsvSink, NullSink
from repro.streaming.source import CollectionSource, CsvSource, GeneratorSource
from repro.streaming.time import (
    Duration,
    format_timestamp,
    hour_of_day,
    hours_between,
    parse_timestamp,
)
from repro.streaming.watermarks import BoundedOutOfOrdernessWatermarks, Watermark

__all__ = [
    "Attribute",
    "BoundedOutOfOrdernessWatermarks",
    "ChaosConfig",
    "Checkpoint",
    "CheckpointStore",
    "CollectSink",
    "CollectionSource",
    "CountingSink",
    "CsvSink",
    "CsvSource",
    "DEAD_LETTER",
    "DataStream",
    "DataType",
    "DeadLetterSink",
    "Duration",
    "ExecutionReport",
    "FAIL_FAST",
    "FailureAction",
    "FailureContext",
    "FailurePolicy",
    "FaultingNode",
    "FaultingSource",
    "AttributeKeySelector",
    "GeneratorSource",
    "KeyPartitioner",
    "NullSink",
    "Partitioner",
    "Record",
    "RoundRobinPartitioner",
    "SKIP",
    "Schema",
    "StreamExecutionEnvironment",
    "Watermark",
    "load_checkpoint",
    "format_timestamp",
    "hour_of_day",
    "hours_between",
    "parse_timestamp",
]
