"""The stream execution environment and fluent ``DataStream`` API.

Mirrors the shape of Flink's ``StreamExecutionEnvironment``: build a dataflow
graph with a fluent API, then :meth:`StreamExecutionEnvironment.execute` it.
Execution is synchronous and single-process; sources are drained in
registration order, each record is pushed through the DAG depth-first, and
watermarks (from an optional per-source strategy) interleave with records.
A final ``Watermark.max()`` flushes all event-time state (windows, sorters)
at end of stream.

Example
-------
>>> env = StreamExecutionEnvironment()
>>> stream = env.from_collection(schema, rows)
>>> stream.map(prepare).filter(lambda r: r["BPM"] is not None).add_sink(sink)
>>> env.execute()
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import CheckpointError, NodeFailure, StreamError
from repro.obs.ledger import RunLedger
from repro.obs.live import ProgressRenderer
from repro.obs.metrics import SIZE_BUCKETS, Histogram, MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.tracing import Tracer
from repro.streaming.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointStore,
    load_checkpoint,
)
from repro.streaming.keyed import (
    KeyedProcessFunction,
    KeyedProcessNode,
    KeySelector,
)
from repro.streaming.operators import (
    FilterFunction,
    FilterNode,
    FlatMapFunction,
    FlatMapNode,
    MapFunction,
    MapNode,
    Node,
    ProcessFunction,
    ProcessNode,
    SinkNode,
    UnionNode,
)
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.sink import Sink
from repro.streaming.source import CollectionSource, Source
from repro.streaming.split import SplitNode, SplitStrategy
from repro.streaming.supervision import (
    FAIL_FAST,
    ExecutionReport,
    FailurePolicy,
    Supervisor,
)
from repro.streaming.watermarks import Watermark, WatermarkGenerator
from repro.streaming.windows import WindowAssigner, WindowFunction, WindowNode


class _SourceHead(Node):
    """Entry node of a source; the environment pushes records into it."""

    def on_record(self, record: Record) -> None:
        self.emit(record)

    def on_batch(self, records: list[Record]) -> None:
        self.emit_batch(records)


class _NodeObs:
    """Per-node instruments attached to ``Node._obs`` by a metered run.

    Two samplers implement the registry's sampling knob, both picking one in
    ~``sample_every`` dispatches for timing (two clock reads into
    ``latency``): ``tick()``, a countdown used by the environment's source
    loop for end-to-end head latencies, and ``mask``, which ``Node.emit``
    ANDs against its existing ``_emits`` counter so child sampling costs no
    extra state updates on the hot path (``sample_every`` is rounded up to a
    power of two there). Everything else about a metered node — emit counts,
    records in/out — is folded from the integer ``_emits`` counters after
    the run, so the hot path never touches a registry object.
    """

    __slots__ = ("latency", "sample_every", "mask", "_countdown")

    def __init__(self, latency: Histogram, sample_every: int) -> None:
        self.latency = latency
        self.sample_every = sample_every
        self.mask = (1 << max(sample_every - 1, 0).bit_length()) - 1
        self._countdown = 1  # always sample the first head dispatch

    def tick(self) -> bool:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.sample_every
            return True
        return False


class _UnionInput(Node):
    """Adapter in front of a UnionNode attributing watermarks to one input."""

    def __init__(self, name: str, union: UnionNode) -> None:
        super().__init__(name)
        self._union = union
        union.register_input(self)
        self.add_downstream(union)

    def on_record(self, record: Record) -> None:
        # Forward through emit so supervised runs adjudicate union failures
        # (and count the dispatch) like any other edge of the DAG.
        self.emit(record)

    def on_batch(self, records: list[Record]) -> None:
        self.emit_batch(records)

    def on_watermark(self, watermark: Watermark) -> None:
        self._union.on_watermark_from(self, watermark)


class DataStream:
    """A handle on one node of the dataflow graph under construction."""

    def __init__(self, env: "StreamExecutionEnvironment", node: Node, schema: Schema) -> None:
        self._env = env
        self._node = node
        self._schema = schema

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def node(self) -> Node:
        return self._node

    def _attach(self, node: Node, schema: Schema | None = None) -> "DataStream":
        self._node.add_downstream(node)
        self._env._register(node)
        return DataStream(self._env, node, schema or self._schema)

    def transform(self, node: Node, schema: Schema | None = None) -> "DataStream":
        """Attach an arbitrary :class:`Node` (e.g. a chaos wrapper) downstream."""
        return self._attach(node, schema)

    def with_failure_policy(self, policy: FailurePolicy) -> "DataStream":
        """Set the failure policy of this stream's node (enables supervision)."""
        self._node._policy = policy
        return self

    # -- stateless transformations ------------------------------------------

    def map(
        self, fn: MapFunction | Callable[[Record], Record], name: str = "map"
    ) -> "DataStream":
        return self._attach(MapNode(self._env._unique(name), fn))

    def filter(
        self, fn: FilterFunction | Callable[[Record], bool], name: str = "filter"
    ) -> "DataStream":
        return self._attach(FilterNode(self._env._unique(name), fn))

    def flat_map(
        self,
        fn: FlatMapFunction | Callable[[Record], Iterable[Record]],
        name: str = "flat_map",
    ) -> "DataStream":
        return self._attach(FlatMapNode(self._env._unique(name), fn))

    def process(self, fn: ProcessFunction, name: str = "process") -> "DataStream":
        return self._attach(ProcessNode(self._env._unique(name), fn))

    # -- keyed / windowed -----------------------------------------------------

    def key_by(self, key_selector: KeySelector) -> "KeyedStream":
        return KeyedStream(self._env, self._node, self._schema, key_selector)

    # -- splitting & union ------------------------------------------------------

    def split(self, strategy: SplitStrategy, name: str = "split") -> list["DataStream"]:
        """Fan out into ``strategy.m`` sub-streams (Algorithm 1, line 4)."""
        node = SplitNode(self._env._unique(name), strategy)
        self._node.add_downstream(node)
        self._env._register(node)
        out = []
        for branch in node.branches:
            self._env._register(branch)
            out.append(DataStream(self._env, branch, self._schema))
        return out

    def union(self, *others: "DataStream", name: str = "union") -> "DataStream":
        """Merge this stream with others (Algorithm 1, line 10)."""
        streams = [self, *others]
        union = UnionNode(self._env._unique(name), n_inputs=len(streams))
        self._env._register(union)
        for s in streams:
            adapter = _UnionInput(self._env._unique(f"{name}.in"), union)
            s._node.add_downstream(adapter)
            self._env._register(adapter)
        return DataStream(self._env, union, self._schema)

    # -- termination ---------------------------------------------------------

    def add_sink(self, sink: Sink, name: str = "sink") -> Sink:
        node = SinkNode(self._env._unique(name), sink)
        self._node.add_downstream(node)
        self._env._register(node)
        return sink


class KeyedStream:
    """A stream partitioned by key; supports stateful process and windows."""

    def __init__(
        self,
        env: "StreamExecutionEnvironment",
        upstream: Node,
        schema: Schema,
        key_selector: KeySelector,
    ) -> None:
        self._env = env
        self._upstream = upstream
        self._schema = schema
        self._key_selector = key_selector

    def process(
        self, fn: KeyedProcessFunction, name: str = "keyed_process"
    ) -> DataStream:
        node = KeyedProcessNode(self._env._unique(name), self._key_selector, fn)
        self._upstream.add_downstream(node)
        self._env._register(node)
        return DataStream(self._env, node, self._schema)

    def window(
        self, assigner: WindowAssigner, fn: WindowFunction, name: str = "window"
    ) -> DataStream:
        node = WindowNode(self._env._unique(name), self._key_selector, assigner, fn)
        self._upstream.add_downstream(node)
        self._env._register(node)
        return DataStream(self._env, node, self._schema)


class StreamExecutionEnvironment:
    """Builds and executes a dataflow graph.

    Parameters
    ----------
    auto_watermarks:
        When True (default), each record whose ``event_time`` is set advances
        a per-source monotonous watermark automatically, so event-time
        operators work without an explicit strategy.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`. When enabled, the run
        records per-node records-in/out counters, sampled processing-latency
        histograms, watermark-lag gauges, and checkpoint size/duration; a
        disabled (or absent) registry leaves the fast path untouched.
    tracer:
        A :class:`~repro.obs.tracing.Tracer` receiving span records for node
        open/close, checkpoint write/restore, and supervision decisions.
    batch_size:
        When > 1, the source drain cuts the stream into slabs of this many
        records and dispatches them through the nodes' batch path
        (``on_batch``); operators without a batch implementation iterate
        transparently. Batch cuts are aligned to the checkpoint interval and
        watermarks are coalesced per slab, so checkpoint/restore semantics
        and per-node counters are preserved. Supervised runs (a failure
        policy anywhere in the DAG) keep batching: slabs execute whole
        against a pre-slab state snapshot, and a failed slab rolls back and
        replays per-record, preserving the one-record failure blast radius.
    """

    def __init__(
        self,
        auto_watermarks: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        batch_size: int | None = None,
        ledger: RunLedger | None = None,
        profiler: Profiler | None = None,
        progress: ProgressRenderer | None = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise StreamError(f"batch_size must be >= 1, got {batch_size}")
        self._sources: list[tuple[_SourceHead, Source, WatermarkGenerator | None]] = []
        self._nodes: list[Node] = []
        self._names: set[str] = set()
        self._auto_watermarks = auto_watermarks
        self._batch_size = batch_size
        self._executed = False
        self._default_policy: FailurePolicy | None = None
        self._checkpoint_cfg: CheckpointConfig | None = None
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        self._tracer = tracer
        self._ledger = ledger
        self._profiler = profiler
        self._progress = progress
        # Seam for tests/harnesses that need a custom supervisor (fake sleep).
        self._supervisor_factory = Supervisor
        self.last_checkpoint: Checkpoint | None = None
        self.last_report: ExecutionReport | None = None

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The enabled metrics registry of this environment, if any."""
        return self._metrics

    @property
    def tracer(self) -> Tracer | None:
        return self._tracer

    # -- fault tolerance -------------------------------------------------------

    def set_failure_policy(self, policy: FailurePolicy) -> "StreamExecutionEnvironment":
        """Set the environment-wide failure policy and enable supervision.

        Per-node policies (:meth:`DataStream.with_failure_policy`) override
        this default for their node.
        """
        self._default_policy = policy
        return self

    def enable_checkpointing(
        self,
        interval: int,
        store: CheckpointStore | str | Path | None = None,
    ) -> "StreamExecutionEnvironment":
        """Take a consistent snapshot every ``interval`` source records.

        With a ``store`` (or directory path), snapshots are persisted; the
        latest snapshot is always kept on :attr:`last_checkpoint`.
        """
        if isinstance(store, (str, Path)):
            store = CheckpointStore(store)
        self._checkpoint_cfg = CheckpointConfig(interval, store)
        return self

    @property
    def dead_letters(self):
        """The dead-letter sink of the last execution (queryable after run)."""
        if self.last_report is None:
            raise StreamError("environment has not executed yet; no dead letters")
        return self.last_report.dead_letters

    # -- construction ----------------------------------------------------------

    def _unique(self, base: str) -> str:
        if base not in self._names:
            self._names.add(base)
            return base
        i = 1
        while f"{base}#{i}" in self._names:
            i += 1
        name = f"{base}#{i}"
        self._names.add(name)
        return name

    def _register(self, node: Node) -> None:
        self._nodes.append(node)

    def from_source(
        self,
        source: Source,
        watermarks: WatermarkGenerator | None = None,
        name: str = "source",
    ) -> DataStream:
        head = _SourceHead(self._unique(name))
        self._register(head)
        self._sources.append((head, source, watermarks))
        return DataStream(self, head, source.schema)

    def from_collection(
        self,
        schema: Schema,
        rows: Iterable[Mapping[str, Any] | Record],
        validate: bool = True,
        name: str = "collection",
    ) -> DataStream:
        return self.from_source(CollectionSource(schema, rows, validate), name=name)

    # -- execution ----------------------------------------------------------------

    def execute(
        self, resume_from: Checkpoint | str | Path | None = None
    ) -> ExecutionReport:
        """Run the dataflow to completion and report what happened.

        Drains each source in registration order, interleaving watermarks,
        then sends the end-of-stream watermark through every source head so
        buffered event-time state flushes. An environment can only execute
        once; build a fresh one per run (they are cheap).

        When any failure policy is set (environment-wide or per-node), every
        record dispatch runs supervised: exceptions are captured with a
        :class:`~repro.streaming.supervision.FailureContext` and resolved by
        the owning node's policy. Without policies the original fast path
        runs and exceptions propagate unchanged.

        ``resume_from`` accepts a :class:`Checkpoint` (or a path to a stored
        one) from a run over the *same topology*: node state is restored by
        name, fully drained sources are skipped, and the interrupted source
        is replayed from its checkpointed offset.
        """
        # A failed run must not leave a previous run's report visible.
        self.last_report = None
        if self._executed:
            raise StreamError("environment already executed; build a new one")
        if not self._sources:
            raise StreamError("no sources registered")
        self._executed = True

        resume_path: str | None = None
        if isinstance(resume_from, (str, Path)):
            resume_path = str(resume_from)
            resume_from = load_checkpoint(resume_from)

        supervised = self._default_policy is not None or any(
            node._policy is not None for node in self._nodes
        )
        metrics = self._metrics
        if metrics is not None:
            # Fold supervision stats and engine metrics into one registry.
            report = ExecutionReport(supervised=supervised, metrics=metrics)
        else:
            report = ExecutionReport(supervised=supervised)
        supervisor: Supervisor | None = None
        if supervised:
            supervisor = self._supervisor_factory(
                self._default_policy or FAIL_FAST, report
            )
            supervisor.tracer = self._tracer
            for node in self._nodes:
                supervisor.attach(node)
        # Profiling needs per-node latency histograms even without a user
        # registry; a private one is created on demand. In batch mode the
        # profiler times every slab dispatch exactly (cheap — two clock
        # reads per slab); per-record it samples 1-in-node_sample_every
        # dispatches and the fold scales by the true arrival count.
        profiler = self._profiler
        batched = self._batch_size is not None and self._batch_size > 1
        obs_registry = metrics
        if obs_registry is None and profiler is not None:
            obs_registry = MetricsRegistry(sample_every=1)
        if obs_registry is not None:
            if profiler is not None:
                sample_every = 1 if batched else profiler.node_sample_every
            else:
                sample_every = obs_registry.sample_every
            for node in self._nodes:
                node._obs = _NodeObs(
                    obs_registry.histogram("node_process_seconds", node=node.name),
                    sample_every,
                )
        self.last_report = report

        start_source, start_offset = 0, 0
        if resume_from is not None:
            start_source = resume_from.source_index
            start_offset = resume_from.offset
            report.resumed_from_offset = resume_from.records_seen
            if start_source >= len(self._sources):
                raise CheckpointError(
                    f"checkpoint references source {start_source} but only "
                    f"{len(self._sources)} source(s) are registered"
                )

        tracer = self._tracer
        opened: list[Node] = []
        try:
            for node in self._nodes:
                if tracer is not None:
                    with tracer.span("node.open", kind="lifecycle", node=node.name):
                        node.open()
                else:
                    node.open()
                opened.append(node)
            if resume_from is not None:
                self._restore(resume_from, path=resume_path)
            self._drain_sources(
                report, supervisor, resume_from, start_source, start_offset
            )
            report.completed = True
        except BaseException:
            self._finalize_stats(report, supervised)
            self._close_nodes(opened, suppress_errors=True)
            raise
        self._finalize_stats(report, supervised)
        if profiler is not None:
            self._fold_profile(profiler, obs_registry, batched)
        self._close_nodes(opened, suppress_errors=False)
        return report

    def _arrivals(self) -> dict[str, int]:
        """Per-node arrival counts derived from the DAG's emit counters.

        A record *arrived* at a node once per parent emit (source heads
        arrive straight from the source, which equals their own emit count
        since heads only forward).
        """
        arrived: dict[str, int] = {node.name: 0 for node in self._nodes}
        linked: set[int] = set()
        for node in self._nodes:
            for child in node.downstream:
                arrived[child.name] += node._emits
                linked.add(id(child))
        # Nodes with no inbound edge (source heads, split branches) are
        # pass-through forwarders fed outside emit(); their own emit count
        # is their arrival count.
        for node in self._nodes:
            if id(node) not in linked:
                arrived[node.name] = node._emits
        return arrived

    def _finalize_stats(self, report: ExecutionReport, supervised: bool) -> None:
        """Fold the DAG's emit counters into the report and the registry.

        Every arrival was processed unless the supervisor adjudicated it
        away, so ``processed = arrived - skipped - dead_lettered``. Metered
        runs additionally publish per-node records-in/out counters.
        """
        metrics = self._metrics
        if not supervised and metrics is None:
            return
        arrived = self._arrivals()
        if supervised:
            for node in self._nodes:
                stats = report.stats_for(node.name)
                stats.processed = (
                    arrived[node.name] - stats.skipped - stats.dead_lettered
                )
        if metrics is not None:
            for node in self._nodes:
                metrics.counter("node_records_in_total", node=node.name).value = (
                    arrived[node.name]
                )
                metrics.counter("node_records_out_total", node=node.name).value = (
                    node._emits
                )

    def _drain_sources(
        self,
        report: ExecutionReport,
        supervisor: Supervisor | None,
        resume_from: Checkpoint | None,
        start_source: int,
        start_offset: int,
    ) -> None:
        if self._batch_size is not None and self._batch_size > 1:
            # Supervised runs take the batched path too: a clean slab runs
            # the batch kernels, a failed slab is rolled back and replayed
            # per-record under the supervisor so adjudication keeps its
            # one-record blast radius (see _dispatch_batch).
            self._drain_sources_batched(
                report, supervisor, resume_from, start_source, start_offset
            )
            return
        cfg = self._checkpoint_cfg
        metrics = self._metrics
        progress = self._progress
        records_seen = resume_from.records_seen if resume_from is not None else 0
        for src_idx in range(start_source, len(self._sources)):
            head, source, wm_gen = self._sources[src_idx]
            if metrics is not None:
                src_counter = metrics.counter("source_records_total", source=head.name)
                wm_lag = metrics.gauge("watermark_lag_seconds", source=head.name)
            else:
                src_counter = None
                wm_lag = None
            head_obs = head._obs
            resuming_here = resume_from is not None and src_idx == start_source
            offset = start_offset if resuming_here else 0
            last_auto_wm: int | None = None
            if resuming_here:
                last_auto_wm = resume_from.auto_watermark
                if wm_gen is not None and resume_from.generator_state is not None:
                    wm_gen.restore_state(resume_from.generator_state)
            # The source counter is folded from report.source_records after
            # the loop (a per-record registry increment is measurable here);
            # the finally keeps it truthful when a FAIL_FAST failure aborts
            # the drain mid-stream.
            records_before = report.source_records
            try:
                for record in source.iter_from(offset):
                    if record.event_time is None:
                        ts_attr = source.schema.timestamp_attribute
                        ts = record.get(ts_attr)
                        if isinstance(ts, int):
                            record.event_time = ts
                    # Dispatching into the head runs the whole synchronous
                    # DAG, so a sampled head latency is the record's
                    # end-to-end pipeline latency. The countdown is inlined —
                    # a method call per source record is measurable at this
                    # loop's frequency.
                    timed = False
                    if head_obs is not None:
                        head_obs._countdown -= 1
                        if head_obs._countdown <= 0:
                            head_obs._countdown = head_obs.sample_every
                            timed = True
                    start = perf_counter() if timed else 0.0
                    if supervisor is not None:
                        supervisor.offset = records_seen
                        supervisor.dispatch(head, record)
                    else:
                        head.on_record(record)
                    if timed:
                        head_obs.latency.observe(perf_counter() - start)
                    wm = None
                    if wm_gen is not None and record.event_time is not None:
                        wm = wm_gen.on_event(record.event_time)
                    elif (
                        self._auto_watermarks
                        and wm_gen is None
                        and record.event_time is not None
                    ):
                        if last_auto_wm is None or record.event_time > last_auto_wm:
                            last_auto_wm = record.event_time
                            wm = Watermark(record.event_time)
                    if wm is not None:
                        head.on_watermark(wm)
                        if wm_lag is not None and record.event_time is not None:
                            wm_lag.value = record.event_time - wm.timestamp
                    offset += 1
                    records_seen += 1
                    report.source_records += 1
                    if progress is not None and (records_seen & 1023) == 0:
                        progress.tick(records_seen)
                    if cfg is not None and records_seen % cfg.interval == 0:
                        self.last_checkpoint = self._take_checkpoint(
                            src_idx, offset, records_seen, last_auto_wm, wm_gen
                        )
                        report.checkpoints_taken += 1
            finally:
                if src_counter is not None:
                    src_counter.value += report.source_records - records_before
            head.on_watermark(Watermark.max())
        if progress is not None:
            progress.tick(records_seen)

    def _drain_sources_batched(
        self,
        report: ExecutionReport,
        supervisor: Supervisor | None,
        resume_from: Checkpoint | None,
        start_source: int,
        start_offset: int,
    ) -> None:
        """Batch-mode source drain: slabs of ``batch_size`` through the DAG.

        Cuts are aligned to the checkpoint interval — a slab never straddles
        a checkpoint boundary, so at every checkpoint the nodes have seen
        exactly the records the per-record drain would have fed them, in the
        same order, and snapshots are interchangeable between the two modes.
        Watermarks are coalesced to one emission per slab; the emitted value
        equals the last watermark the per-record path would have emitted at
        the cut, so downstream event-time state agrees at every boundary.

        Supervised runs add slab atomicity: operator state (via the
        checkpoint snapshot protocol) and emit counters are captured before
        each slab, and a slab that raises anywhere in the DAG is rolled back
        and replayed per-record under the supervisor. Because the batch and
        per-record paths draw identical RNG streams, the replayed slab is
        byte-identical to a run that had dispatched per-record throughout —
        only the poison record is adjudicated away.
        """
        cfg = self._checkpoint_cfg
        metrics = self._metrics
        ledger = self._ledger
        progress = self._progress
        batch_size = self._batch_size
        records_seen = resume_from.records_seen if resume_from is not None else 0
        for src_idx in range(start_source, len(self._sources)):
            head, source, wm_gen = self._sources[src_idx]
            if metrics is not None:
                src_counter = metrics.counter("source_records_total", source=head.name)
                wm_lag = metrics.gauge("watermark_lag_seconds", source=head.name)
            else:
                src_counter = None
                wm_lag = None
            head_obs = head._obs
            resuming_here = resume_from is not None and src_idx == start_source
            offset = start_offset if resuming_here else 0
            last_auto_wm: int | None = None
            if resuming_here:
                last_auto_wm = resume_from.auto_watermark
                if wm_gen is not None and resume_from.generator_state is not None:
                    wm_gen.restore_state(resume_from.generator_state)
            records_before = report.source_records
            ts_attr = source.schema.timestamp_attribute
            buffer: list[Record] = []
            try:
                for record in source.iter_from(offset):
                    if record.event_time is None:
                        ts = record.get(ts_attr)
                        if isinstance(ts, int):
                            record.event_time = ts
                    buffer.append(record)
                    offset += 1
                    records_seen += 1
                    report.source_records += 1
                    boundary = cfg is not None and records_seen % cfg.interval == 0
                    if boundary or len(buffer) >= batch_size:
                        slab_records = len(buffer)
                        last_auto_wm = self._dispatch_batch(
                            head, buffer, wm_gen, last_auto_wm, head_obs, wm_lag,
                            supervisor, records_seen - len(buffer),
                        )
                        buffer = []
                        if ledger is not None:
                            ledger.record(
                                "batch.slab",
                                records=slab_records,
                                records_seen=records_seen,
                                boundary=boundary,
                            )
                        if progress is not None:
                            progress.tick(records_seen)
                    if boundary:
                        self.last_checkpoint = self._take_checkpoint(
                            src_idx, offset, records_seen, last_auto_wm, wm_gen
                        )
                        report.checkpoints_taken += 1
                if buffer:
                    slab_records = len(buffer)
                    last_auto_wm = self._dispatch_batch(
                        head, buffer, wm_gen, last_auto_wm, head_obs, wm_lag,
                        supervisor, records_seen - len(buffer),
                    )
                    if ledger is not None:
                        ledger.record(
                            "batch.slab",
                            records=slab_records,
                            records_seen=records_seen,
                            boundary=False,
                        )
                    if progress is not None:
                        progress.tick(records_seen)
            finally:
                if src_counter is not None:
                    src_counter.value += report.source_records - records_before
            head.on_watermark(Watermark.max())

    def _dispatch_batch(
        self,
        head: Node,
        batch: list[Record],
        wm_gen: WatermarkGenerator | None,
        last_auto_wm: int | None,
        head_obs,
        wm_lag,
        supervisor: Supervisor | None = None,
        base_offset: int = 0,
    ) -> int | None:
        """Push one slab into a source head and emit its coalesced watermark.

        ``base_offset`` is the stream offset of the slab's first record;
        supervised replay uses it so dead-letter entries carry the same
        offsets a per-record run would record.
        """
        timed = False
        if head_obs is not None:
            head_obs._countdown -= len(batch)
            if head_obs._countdown <= 0:
                head_obs._countdown = head_obs.sample_every
                timed = True
        start = perf_counter() if timed else 0.0
        if supervisor is None:
            head.on_batch(batch)
        else:
            # Slab atomicity: snapshot → attempt whole → on failure restore
            # and replay per-record. Records are copied up front because
            # operators mutate them in place and a torn slab would otherwise
            # replay half-polluted inputs.
            snapshot = self._slab_snapshot()
            replay = [record.copy() for record in batch]
            try:
                head.on_batch(batch)
            except NodeFailure:
                raise  # adjudicated fail-fast below us; state is moot
            except Exception:  # noqa: BLE001 - slab supervision boundary
                self._slab_restore(snapshot)
                for i, record in enumerate(replay):
                    supervisor.offset = base_offset + i
                    supervisor.dispatch(head, record)
                batch[:] = replay  # watermark bookkeeping reads the survivors
        if timed:
            head_obs.latency.observe(perf_counter() - start)
        wm: Watermark | None = None
        trigger_et: int | None = None
        if wm_gen is not None:
            # Feed the generator every event in order (identical generator
            # state to per-record mode); emit only the last produced mark.
            for record in batch:
                et = record.event_time
                if et is not None:
                    out = wm_gen.on_event(et)
                    if out is not None:
                        wm = out
                        trigger_et = et
        elif self._auto_watermarks:
            advanced = False
            for record in batch:
                et = record.event_time
                if et is not None and (last_auto_wm is None or et > last_auto_wm):
                    last_auto_wm = et
                    advanced = True
            if advanced:
                wm = Watermark(last_auto_wm)
                trigger_et = last_auto_wm
        if wm is not None:
            head.on_watermark(wm)
            if wm_lag is not None and trigger_et is not None:
                wm_lag.value = trigger_et - wm.timestamp
        return last_auto_wm

    def _slab_snapshot(self) -> list[tuple[Node, Any, int, Any]]:
        """Capture every node's state and emit counter before a slab.

        Reuses the checkpoint snapshot protocol (already required to be a
        faithful, isolated copy for resume), plus the ``_emits`` counters the
        stats finalization reads and each node's volatile slab token (e.g.
        the pollution-log high-water mark) — a rolled-back slab must not
        leave ghost emits or ghost log entries behind.
        """
        return [
            (node, node.snapshot_state(), node._emits, node.slab_token())
            for node in self._nodes
        ]

    def _slab_restore(self, snapshot: list[tuple[Node, Any, int, Any]]) -> None:
        for node, state, emits, token in snapshot:
            if state is not None:
                node.restore_state(state)
            node._emits = emits
            if token is not None:
                node.slab_rollback(token)

    def _take_checkpoint(
        self,
        source_index: int,
        offset: int,
        records_seen: int,
        auto_watermark: int | None,
        wm_gen: WatermarkGenerator | None,
    ) -> Checkpoint:
        start = perf_counter()
        node_state = {}
        for node in self._nodes:
            state = node.snapshot_state()
            if state is not None:
                node_state[node.name] = state
        checkpoint = Checkpoint(
            source_index=source_index,
            offset=offset,
            records_seen=records_seen,
            auto_watermark=auto_watermark,
            generator_state=wm_gen.snapshot_state() if wm_gen is not None else None,
            node_state=node_state,
        )
        cfg = self._checkpoint_cfg
        saved_path: Path | None = None
        if cfg is not None and cfg.store is not None:
            saved_path = cfg.store.save(checkpoint)
        metrics, tracer, ledger = self._metrics, self._tracer, self._ledger
        if metrics is not None or tracer is not None or ledger is not None:
            duration = perf_counter() - start
            payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
            size = len(payload)
            if metrics is not None:
                metrics.counter("checkpoints_written_total").inc()
                metrics.histogram("checkpoint_write_seconds").observe(duration)
                metrics.histogram(
                    "checkpoint_size_bytes", buckets=SIZE_BUCKETS
                ).observe(size)
            if tracer is not None:
                span = tracer.event(
                    "checkpoint.write",
                    kind="checkpoint",
                    records_seen=records_seen,
                    offset=offset,
                    size_bytes=size,
                )
                span.duration = duration
            if ledger is not None:
                # The store frames its file with the sha256 of these same
                # pickle bytes, so this digest matches the file header.
                ledger.record(
                    "checkpoint.write",
                    records_seen=records_seen,
                    offset=offset,
                    bytes=size,
                    digest=hashlib.sha256(payload).hexdigest(),
                    path=str(saved_path) if saved_path is not None else None,
                    duration_seconds=round(duration, 6),
                )
        return checkpoint

    def _fold_profile(
        self,
        profiler: Profiler,
        registry: MetricsRegistry | None,
        batched: bool,
    ) -> None:
        """Fold per-node latency histograms into the profiler.

        Dispatch is depth-first, so a node's histogram is *inclusive* of
        its downstream subtree; exclusive (self) time is inclusive minus
        the children's inclusive time, clamped at zero. In per-record mode
        the histograms are sampled and the sums are scaled by the true
        arrival counts; in batch mode every slab dispatch was timed, so
        the sums are exact.
        """
        if registry is None:
            return
        arrived = self._arrivals()
        inclusive: dict[str, float] = {}
        samples: dict[str, int] = {}
        for node in self._nodes:
            hist = registry.get("node_process_seconds", node=node.name)
            count = getattr(hist, "count", 0) if hist is not None else 0
            samples[node.name] = count
            if count == 0:
                inclusive[node.name] = 0.0
            elif batched:
                inclusive[node.name] = hist.sum  # type: ignore[union-attr]
            else:
                n = arrived.get(node.name, 0)
                scale = max(n / count, 1.0) if n else 1.0
                inclusive[node.name] = hist.sum * scale  # type: ignore[union-attr]
        for node in self._nodes:
            child_sum = sum(inclusive.get(c.name, 0.0) for c in node.downstream)
            exclusive = max(inclusive[node.name] - child_sum, 0.0)
            profiler.record_node(
                node.name,
                exclusive,
                inclusive[node.name],
                samples[node.name],
                arrived.get(node.name, 0),
            )

    def _restore(self, checkpoint: Checkpoint, path: str | None = None) -> None:
        start = perf_counter()
        by_name = {node.name: node for node in self._nodes}
        for name, state in checkpoint.node_state.items():
            node = by_name.get(name)
            if node is None:
                raise CheckpointError(
                    f"checkpoint references unknown node {name!r}; rebuild the "
                    "same topology before resuming"
                )
            node.restore_state(state)
        if self._metrics is not None:
            self._metrics.counter("checkpoints_restored_total").inc()
        if self._tracer is not None:
            span = self._tracer.event(
                "checkpoint.restore",
                kind="checkpoint",
                records_seen=checkpoint.records_seen,
                stateful_nodes=len(checkpoint.node_state),
            )
            span.duration = perf_counter() - start
        if self._ledger is not None:
            self._ledger.record(
                "checkpoint.restore",
                path=path,
                records_seen=checkpoint.records_seen,
                offset=checkpoint.offset,
                stateful_nodes=len(checkpoint.node_state),
            )

    def _close_nodes(self, opened: list[Node], suppress_errors: bool) -> None:
        """Close every opened node; raise the first close error unless unwinding."""
        tracer = self._tracer
        first_error: BaseException | None = None
        for node in opened:
            try:
                if tracer is not None:
                    with tracer.span("node.close", kind="lifecycle", node=node.name):
                        node.close()
                else:
                    node.close()
            except BaseException as exc:  # noqa: BLE001 - must close the rest
                if first_error is None:
                    first_error = exc
        if first_error is not None and not suppress_errors:
            raise first_error

    # -- convenience ----------------------------------------------------------

    @staticmethod
    def run_pass_through(
        schema: Schema, rows: Sequence[Mapping[str, Any] | Record], sink: Sink
    ) -> Sink:
        """Load ``rows`` and write them straight to ``sink`` (Exp. 3 baseline)."""
        env = StreamExecutionEnvironment()
        env.from_collection(schema, rows, validate=False).add_sink(sink)
        env.execute()
        return sink
