"""The stream execution environment and fluent ``DataStream`` API.

Mirrors the shape of Flink's ``StreamExecutionEnvironment``: build a dataflow
graph with a fluent API, then :meth:`StreamExecutionEnvironment.execute` it.
Execution is synchronous and single-process; sources are drained in
registration order, each record is pushed through the DAG depth-first, and
watermarks (from an optional per-source strategy) interleave with records.
A final ``Watermark.max()`` flushes all event-time state (windows, sorters)
at end of stream.

Example
-------
>>> env = StreamExecutionEnvironment()
>>> stream = env.from_collection(schema, rows)
>>> stream.map(prepare).filter(lambda r: r["BPM"] is not None).add_sink(sink)
>>> env.execute()
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import StreamError
from repro.streaming.keyed import (
    KeyedProcessFunction,
    KeyedProcessNode,
    KeySelector,
)
from repro.streaming.operators import (
    FilterFunction,
    FilterNode,
    FlatMapFunction,
    FlatMapNode,
    MapFunction,
    MapNode,
    Node,
    ProcessFunction,
    ProcessNode,
    SinkNode,
    UnionNode,
)
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.sink import Sink
from repro.streaming.source import CollectionSource, Source
from repro.streaming.split import SplitNode, SplitStrategy
from repro.streaming.watermarks import Watermark, WatermarkGenerator
from repro.streaming.windows import WindowAssigner, WindowFunction, WindowNode


class _SourceHead(Node):
    """Entry node of a source; the environment pushes records into it."""

    def on_record(self, record: Record) -> None:
        self.emit(record)


class _UnionInput(Node):
    """Adapter in front of a UnionNode attributing watermarks to one input."""

    def __init__(self, name: str, union: UnionNode) -> None:
        super().__init__(name)
        self._union = union
        union.register_input(self)

    def on_record(self, record: Record) -> None:
        self._union.on_record(record)

    def on_watermark(self, watermark: Watermark) -> None:
        self._union.on_watermark_from(self, watermark)


class DataStream:
    """A handle on one node of the dataflow graph under construction."""

    def __init__(self, env: "StreamExecutionEnvironment", node: Node, schema: Schema) -> None:
        self._env = env
        self._node = node
        self._schema = schema

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def node(self) -> Node:
        return self._node

    def _attach(self, node: Node, schema: Schema | None = None) -> "DataStream":
        self._node.add_downstream(node)
        self._env._register(node)
        return DataStream(self._env, node, schema or self._schema)

    # -- stateless transformations ------------------------------------------

    def map(
        self, fn: MapFunction | Callable[[Record], Record], name: str = "map"
    ) -> "DataStream":
        return self._attach(MapNode(self._env._unique(name), fn))

    def filter(
        self, fn: FilterFunction | Callable[[Record], bool], name: str = "filter"
    ) -> "DataStream":
        return self._attach(FilterNode(self._env._unique(name), fn))

    def flat_map(
        self,
        fn: FlatMapFunction | Callable[[Record], Iterable[Record]],
        name: str = "flat_map",
    ) -> "DataStream":
        return self._attach(FlatMapNode(self._env._unique(name), fn))

    def process(self, fn: ProcessFunction, name: str = "process") -> "DataStream":
        return self._attach(ProcessNode(self._env._unique(name), fn))

    # -- keyed / windowed -----------------------------------------------------

    def key_by(self, key_selector: KeySelector) -> "KeyedStream":
        return KeyedStream(self._env, self._node, self._schema, key_selector)

    # -- splitting & union ------------------------------------------------------

    def split(self, strategy: SplitStrategy, name: str = "split") -> list["DataStream"]:
        """Fan out into ``strategy.m`` sub-streams (Algorithm 1, line 4)."""
        node = SplitNode(self._env._unique(name), strategy)
        self._node.add_downstream(node)
        self._env._register(node)
        out = []
        for branch in node.branches:
            self._env._register(branch)
            out.append(DataStream(self._env, branch, self._schema))
        return out

    def union(self, *others: "DataStream", name: str = "union") -> "DataStream":
        """Merge this stream with others (Algorithm 1, line 10)."""
        streams = [self, *others]
        union = UnionNode(self._env._unique(name), n_inputs=len(streams))
        self._env._register(union)
        for s in streams:
            adapter = _UnionInput(self._env._unique(f"{name}.in"), union)
            s._node.add_downstream(adapter)
            self._env._register(adapter)
        return DataStream(self._env, union, self._schema)

    # -- termination ---------------------------------------------------------

    def add_sink(self, sink: Sink, name: str = "sink") -> Sink:
        node = SinkNode(self._env._unique(name), sink)
        self._node.add_downstream(node)
        self._env._register(node)
        return sink


class KeyedStream:
    """A stream partitioned by key; supports stateful process and windows."""

    def __init__(
        self,
        env: "StreamExecutionEnvironment",
        upstream: Node,
        schema: Schema,
        key_selector: KeySelector,
    ) -> None:
        self._env = env
        self._upstream = upstream
        self._schema = schema
        self._key_selector = key_selector

    def process(
        self, fn: KeyedProcessFunction, name: str = "keyed_process"
    ) -> DataStream:
        node = KeyedProcessNode(self._env._unique(name), self._key_selector, fn)
        self._upstream.add_downstream(node)
        self._env._register(node)
        return DataStream(self._env, node, self._schema)

    def window(
        self, assigner: WindowAssigner, fn: WindowFunction, name: str = "window"
    ) -> DataStream:
        node = WindowNode(self._env._unique(name), self._key_selector, assigner, fn)
        self._upstream.add_downstream(node)
        self._env._register(node)
        return DataStream(self._env, node, self._schema)


class StreamExecutionEnvironment:
    """Builds and executes a dataflow graph.

    Parameters
    ----------
    auto_watermarks:
        When True (default), each record whose ``event_time`` is set advances
        a per-source monotonous watermark automatically, so event-time
        operators work without an explicit strategy.
    """

    def __init__(self, auto_watermarks: bool = True) -> None:
        self._sources: list[tuple[_SourceHead, Source, WatermarkGenerator | None]] = []
        self._nodes: list[Node] = []
        self._names: set[str] = set()
        self._auto_watermarks = auto_watermarks
        self._executed = False

    # -- construction ----------------------------------------------------------

    def _unique(self, base: str) -> str:
        if base not in self._names:
            self._names.add(base)
            return base
        i = 1
        while f"{base}#{i}" in self._names:
            i += 1
        name = f"{base}#{i}"
        self._names.add(name)
        return name

    def _register(self, node: Node) -> None:
        self._nodes.append(node)

    def from_source(
        self,
        source: Source,
        watermarks: WatermarkGenerator | None = None,
        name: str = "source",
    ) -> DataStream:
        head = _SourceHead(self._unique(name))
        self._register(head)
        self._sources.append((head, source, watermarks))
        return DataStream(self, head, source.schema)

    def from_collection(
        self,
        schema: Schema,
        rows: Iterable[Mapping[str, Any] | Record],
        validate: bool = True,
        name: str = "collection",
    ) -> DataStream:
        return self.from_source(CollectionSource(schema, rows, validate), name=name)

    # -- execution ----------------------------------------------------------------

    def execute(self) -> None:
        """Run the dataflow to completion.

        Drains each source in registration order, interleaving watermarks,
        then sends the end-of-stream watermark through every source head so
        buffered event-time state flushes. An environment can only execute
        once; build a fresh one per run (they are cheap).
        """
        if self._executed:
            raise StreamError("environment already executed; build a new one")
        if not self._sources:
            raise StreamError("no sources registered")
        self._executed = True
        for node in self._nodes:
            node.open()
        try:
            for head, source, wm_gen in self._sources:
                last_auto_wm: int | None = None
                for record in source:
                    if record.event_time is None:
                        ts_attr = source.schema.timestamp_attribute
                        ts = record.get(ts_attr)
                        if isinstance(ts, int):
                            record.event_time = ts
                    head.on_record(record)
                    wm = None
                    if wm_gen is not None and record.event_time is not None:
                        wm = wm_gen.on_event(record.event_time)
                    elif (
                        self._auto_watermarks
                        and wm_gen is None
                        and record.event_time is not None
                    ):
                        if last_auto_wm is None or record.event_time > last_auto_wm:
                            last_auto_wm = record.event_time
                            wm = Watermark(record.event_time)
                    if wm is not None:
                        head.on_watermark(wm)
                head.on_watermark(Watermark.max())
        finally:
            for node in self._nodes:
                node.close()

    # -- convenience ----------------------------------------------------------

    @staticmethod
    def run_pass_through(
        schema: Schema, rows: Sequence[Mapping[str, Any] | Record], sink: Sink
    ) -> Sink:
        """Load ``rows`` and write them straight to ``sink`` (Exp. 3 baseline)."""
        env = StreamExecutionEnvironment()
        env.from_collection(schema, rows, validate=False).add_sink(sink)
        env.execute()
        return sink
