"""Typed schemas for stream records.

The paper's pollution process (Fig. 2) takes the stream *schema* as an input:
it drives attribute targeting (the ``A_p`` component of a polluter), domain
checks, and value parsing in sources. A :class:`Schema` is an ordered list of
:class:`Attribute` definitions; exactly one attribute is designated as the
stream's timestamp attribute (§2.1: "we expect the schema to also contain a
timestamp attribute").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Attribute data types supported by the stream data model."""

    FLOAT = "float"
    INT = "int"
    STRING = "string"
    BOOL = "bool"
    TIMESTAMP = "timestamp"  # integer epoch seconds
    CATEGORY = "category"  # string drawn from a finite domain

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.FLOAT, DataType.INT, DataType.TIMESTAMP)


_PYTHON_TYPES: dict[DataType, tuple[type, ...]] = {
    DataType.FLOAT: (float, int),
    DataType.INT: (int,),
    DataType.STRING: (str,),
    DataType.BOOL: (bool,),
    DataType.TIMESTAMP: (int,),
    DataType.CATEGORY: (str,),
}


@dataclass(frozen=True)
class Attribute:
    """One attribute of a stream schema.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    dtype:
        Declared :class:`DataType`.
    nullable:
        Whether ``None`` is a legal value. Polluters injecting missing
        values do *not* consult this flag — injecting an illegal null is
        precisely the point of a missing-value error.
    domain:
        Optional finite domain for :attr:`DataType.CATEGORY` attributes, or
        an inclusive ``(low, high)`` range for numeric attributes. ``None``
        means unconstrained.
    """

    name: str
    dtype: DataType = DataType.FLOAT
    nullable: bool = True
    domain: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.dtype is DataType.CATEGORY and self.domain is not None:
            if not all(isinstance(v, str) for v in self.domain):
                raise SchemaError(
                    f"category attribute {self.name!r} requires string domain values"
                )
        if self.dtype.is_numeric and self.domain is not None:
            if len(self.domain) != 2:
                raise SchemaError(
                    f"numeric attribute {self.name!r} domain must be (low, high)"
                )

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` is illegal for this attribute."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"attribute {self.name!r} is not nullable")
            return
        expected = _PYTHON_TYPES[self.dtype]
        # bool is a subclass of int; reject bools for numeric dtypes explicitly.
        if isinstance(value, bool) and self.dtype is not DataType.BOOL:
            raise SchemaError(
                f"attribute {self.name!r} expects {self.dtype.value}, got bool"
            )
        if not isinstance(value, expected):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.dtype.value}, "
                f"got {type(value).__name__}: {value!r}"
            )
        if self.dtype is DataType.CATEGORY and self.domain is not None:
            if value not in self.domain:
                raise SchemaError(
                    f"value {value!r} not in domain of category attribute {self.name!r}"
                )
        if self.dtype.is_numeric and self.domain is not None:
            low, high = self.domain
            if isinstance(value, float) and math.isnan(value):
                return  # NaN encodes a dirty numeric value; always admissible
            if not (low <= value <= high):
                raise SchemaError(
                    f"value {value!r} outside domain [{low}, {high}] of {self.name!r}"
                )

    def parse(self, text: str) -> Any:
        """Parse a CSV cell into this attribute's Python representation.

        Empty strings and the literals ``NA``/``NaN``/``null`` parse to ``None``.
        """
        if text == "" or text in ("NA", "NaN", "nan", "null", "None"):
            return None
        if self.dtype is DataType.FLOAT:
            return float(text)
        if self.dtype in (DataType.INT, DataType.TIMESTAMP):
            return int(float(text))
        if self.dtype is DataType.BOOL:
            return text.strip().lower() in ("1", "true", "yes")
        return text


class Schema:
    """An ordered collection of attributes with one designated timestamp.

    Parameters
    ----------
    attributes:
        Attribute definitions (or bare names, which become nullable FLOATs).
    timestamp_attribute:
        Name of the attribute carrying the tuple's timestamp. Defaults to an
        attribute named ``"timestamp"`` if present, else the first
        ``TIMESTAMP``-typed attribute.
    """

    def __init__(
        self,
        attributes: Iterable[Attribute | str],
        timestamp_attribute: str | None = None,
    ) -> None:
        attrs: list[Attribute] = []
        for a in attributes:
            attrs.append(Attribute(a) if isinstance(a, str) else a)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")
        if not attrs:
            raise SchemaError("schema must have at least one attribute")
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._by_name: dict[str, Attribute] = {a.name: a for a in attrs}
        self._timestamp_attribute = self._resolve_timestamp(timestamp_attribute)

    def _resolve_timestamp(self, requested: str | None) -> str:
        if requested is not None:
            if requested not in self._by_name:
                raise SchemaError(f"timestamp attribute {requested!r} not in schema")
            return requested
        if "timestamp" in self._by_name:
            return "timestamp"
        for a in self._attributes:
            if a.dtype is DataType.TIMESTAMP:
                return a.name
        raise SchemaError(
            "schema needs a timestamp attribute: none named 'timestamp' and "
            "none typed TIMESTAMP"
        )

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def timestamp_attribute(self) -> str:
        return self._timestamp_attribute

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._timestamp_attribute == other._timestamp_attribute
        )

    def __hash__(self) -> int:
        return hash((self._attributes, self._timestamp_attribute))

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.dtype.value}" for a in self._attributes)
        return f"Schema({cols}; ts={self._timestamp_attribute})"

    def numeric_attributes(self, include_timestamp: bool = False) -> tuple[str, ...]:
        """Names of numeric attributes; experiment 2 pollutes "all numerical attributes"."""
        out = []
        for a in self._attributes:
            if a.name == self._timestamp_attribute:
                if include_timestamp:
                    out.append(a.name)
                continue
            if a.dtype in (DataType.FLOAT, DataType.INT):
                out.append(a.name)
        return tuple(out)

    def validate_values(self, values: Mapping[str, Any]) -> None:
        """Validate a full value mapping against this schema.

        Raises :class:`SchemaError` on missing attributes, unknown attributes,
        or type/domain violations.
        """
        missing = [n for n in self.names if n not in values]
        if missing:
            raise SchemaError(f"record missing attributes: {missing}")
        unknown = [n for n in values if n not in self._by_name]
        if unknown:
            raise SchemaError(f"record has unknown attributes: {unknown}")
        for attr in self._attributes:
            attr.validate(values[attr.name])

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema restricted to ``names`` (timestamp always retained)."""
        keep = set(names) | {self._timestamp_attribute}
        return Schema(
            [a for a in self._attributes if a.name in keep],
            timestamp_attribute=self._timestamp_attribute,
        )
