"""Stream operators and the push-based dataflow node model.

The engine executes a DAG of :class:`Node` objects. A node receives records
(and watermarks) from its upstream and forwards transformed output to its
downstream nodes. User logic is supplied as plain callables or as rich
function objects (:class:`MapFunction`, :class:`ProcessFunction`, ...) that
mirror Flink's operator interfaces closely enough that the pollution
operators of :mod:`repro.core` read like their PyFlink counterparts.
"""

from __future__ import annotations

import copy
from time import perf_counter
from typing import Any, Callable, Iterable

from repro.errors import NodeFailure
from repro.streaming.record import Record
from repro.streaming.watermarks import Watermark

# ---------------------------------------------------------------------------
# User-function interfaces
# ---------------------------------------------------------------------------


class MapFunction:
    """One-in one-out transformation."""

    def map(self, record: Record) -> Record:
        raise NotImplementedError

    def open(self) -> None:
        """Called once before processing starts (resource setup)."""

    def close(self) -> None:
        """Called once after the stream is exhausted."""

    def snapshot_state(self) -> Any | None:
        """Serializable state for checkpointing; ``None`` if stateless."""
        return None

    def restore_state(self, state: Any) -> None:
        """Restore state produced by :meth:`snapshot_state`."""


class FilterFunction:
    """Keeps records for which :meth:`filter` returns True."""

    def filter(self, record: Record) -> bool:
        raise NotImplementedError

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass

    def snapshot_state(self) -> Any | None:
        return None

    def restore_state(self, state: Any) -> None:
        pass


class FlatMapFunction:
    """One-in many-out transformation (zero or more output records)."""

    def flat_map(self, record: Record) -> Iterable[Record]:
        raise NotImplementedError

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass

    def snapshot_state(self) -> Any | None:
        return None

    def restore_state(self, state: Any) -> None:
        pass


class Collector:
    """Receives output records from a :class:`ProcessFunction`."""

    def __init__(
        self,
        emit: Callable[[Record], None],
        emit_batch: Callable[[list[Record]], None] | None = None,
    ) -> None:
        self._emit = emit
        self._emit_batch = emit_batch
        self.emitted = 0

    def collect(self, record: Record) -> None:
        self.emitted += 1
        self._emit(record)

    def collect_batch(self, records: list[Record]) -> None:
        """Emit a whole slab downstream (batch-mode process functions)."""
        self.emitted += len(records)
        if self._emit_batch is not None:
            self._emit_batch(records)
        else:
            for record in records:
                self._emit(record)


class ProcessContext:
    """Per-record context handed to a :class:`ProcessFunction`.

    Exposes the record's event time (the replicated timestamp ``tau``) and
    the operator's current watermark — the two temporal signals Icewafl's
    temporal conditions and native temporal errors consume.
    """

    def __init__(self) -> None:
        self.event_time: int | None = None
        self.current_watermark: int = Watermark.min().timestamp


class ProcessFunction:
    """The most general stateless operator: full control over emission."""

    def process(self, record: Record, ctx: ProcessContext, out: Collector) -> None:
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark, out: Collector) -> None:
        """Hook invoked when a watermark passes through the operator."""

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass

    def snapshot_state(self) -> Any | None:
        return None

    def restore_state(self, state: Any) -> None:
        pass


# ---------------------------------------------------------------------------
# Dataflow nodes
# ---------------------------------------------------------------------------


class Node:
    """A vertex of the dataflow DAG.

    When the environment runs supervised, :attr:`_supervisor` is set and
    every downstream dispatch in :meth:`emit` is wrapped: a success costs one
    ``try`` block plus a single per-emit counter, a failure is handed to the
    supervisor which applies the node's failure policy. Per-node processed
    counts are derived from the emit counters after the run (see the
    environment's stats finalization) so the hot path never touches a stats
    object. Unsupervised execution keeps the original bare loop.
    """

    # Supervision/observability hooks (instance attrs once attached;
    # class-level defaults keep the plain fast path to two falsy checks).
    _supervisor = None
    _stats = None
    _policy = None
    _obs = None  # per-node instruments attached by an instrumented environment
    _emits = 0  # instrumented mode: how many records this node emitted

    def __init__(self, name: str) -> None:
        self.name = name
        self.downstream: list[Node] = []

    def add_downstream(self, node: "Node") -> None:
        self.downstream.append(node)

    # -- record / watermark propagation ------------------------------------

    def emit(self, record: Record) -> None:
        # Plain execution: two falsy class-attribute checks and the bare
        # loop. Supervised and/or metered dispatch shares this function so
        # the common instrumented case stays one frame deep: emit counts are
        # folded into per-node counters after the run (see the environment's
        # stats finalization), so a metered emit pays one integer add plus
        # one AND against the sampling mask; only one in ~``sample_every``
        # emits clocks its children's latencies. An instrumented environment
        # attaches ``_obs`` to every node, so ``_obs is None`` with a
        # supervisor means supervised-but-unmetered — the bare supervised
        # loop with no timing bookkeeping.
        supervisor = self._supervisor
        obs = self._obs
        if supervisor is None and obs is None:
            for child in self.downstream:
                child.on_record(record)
            return
        self._emits = emits = self._emits + 1
        if obs is None or emits & obs.mask:
            if supervisor is None:
                for child in self.downstream:
                    child.on_record(record)
            else:
                for child in self.downstream:
                    try:
                        child.on_record(record)
                    except NodeFailure:
                        raise  # already adjudicated downstream
                    except Exception as exc:  # noqa: BLE001 - supervision boundary
                        supervisor.handle_failure(child, record, exc)
            return
        for child in self.downstream:
            child_obs = child._obs
            start = perf_counter()
            if supervisor is None:
                child.on_record(record)
            else:
                try:
                    child.on_record(record)
                except NodeFailure:
                    raise  # already adjudicated by a downstream supervisor call
                except Exception as exc:  # noqa: BLE001 - supervision boundary
                    supervisor.handle_failure(child, record, exc)
            if child_obs is not None:
                child_obs.latency.observe(perf_counter() - start)

    def emit_batch(self, records: list[Record]) -> None:
        """Batch counterpart of :meth:`emit`.

        Per-node counters stay exact (``_emits`` grows by the batch length);
        latency is sampled once per batch against the same mask. Supervised
        execution dispatches the slab whole and lets any failure propagate
        raw: the environment's slab boundary rolls operator state (including
        these counters) back to the slab start and replays per-record under
        the supervisor, isolating the poison record without abandoning the
        batch fast path on the overwhelmingly common clean slab.
        """
        if not records:
            return
        obs = self._obs
        if obs is None:
            if self._supervisor is not None:
                self._emits += len(records)
            for child in self.downstream:
                child.on_batch(records)
            return
        self._emits = emits = self._emits + len(records)
        if emits & obs.mask:
            for child in self.downstream:
                child.on_batch(records)
            return
        for child in self.downstream:
            child_obs = child._obs
            start = perf_counter()
            child.on_batch(records)
            if child_obs is not None:
                child_obs.latency.observe(perf_counter() - start)

    def emit_watermark(self, watermark: Watermark) -> None:
        for child in self.downstream:
            child.on_watermark(watermark)

    def on_record(self, record: Record) -> None:
        raise NotImplementedError

    def on_batch(self, records: list[Record]) -> None:
        """Receive a slab; the default transparently falls back per-record."""
        for record in records:
            self.on_record(record)

    def on_watermark(self, watermark: Watermark) -> None:
        self.emit_watermark(watermark)

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> Any | None:
        """Serializable operator state for a checkpoint (``None`` = stateless)."""
        return None

    def restore_state(self, state: Any) -> None:
        """Restore operator state from a checkpoint snapshot."""

    # -- slab supervision ------------------------------------------------------

    def slab_token(self) -> Any | None:
        """Opaque marker of this node's *volatile* side effects at a slab cut.

        Checkpoint state covers what resume needs; some operators also push
        into process-local structures that never travel through a checkpoint
        (the pollution log is the canonical case). A rolled-back slab must
        undo those too, or the per-record replay double-records them. Tokens
        never leave the process and are never serialized.
        """
        return None

    def slab_rollback(self, token: Any) -> None:
        """Undo volatile side effects back to a :meth:`slab_token` cut."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MapNode(Node):
    def __init__(self, name: str, fn: MapFunction | Callable[[Record], Record]) -> None:
        super().__init__(name)
        self._fn = fn if isinstance(fn, MapFunction) else _CallableMap(fn)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        self.emit(self._fn.map(record))

    def on_batch(self, records: list[Record]) -> None:
        fn_map = self._fn.map
        self.emit_batch([fn_map(record) for record in records])

    def snapshot_state(self) -> Any | None:
        return self._fn.snapshot_state()

    def restore_state(self, state: Any) -> None:
        self._fn.restore_state(state)


class FilterNode(Node):
    def __init__(self, name: str, fn: FilterFunction | Callable[[Record], bool]) -> None:
        super().__init__(name)
        self._fn = fn if isinstance(fn, FilterFunction) else _CallableFilter(fn)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        if self._fn.filter(record):
            self.emit(record)

    def on_batch(self, records: list[Record]) -> None:
        fn_filter = self._fn.filter
        self.emit_batch([record for record in records if fn_filter(record)])

    def snapshot_state(self) -> Any | None:
        return self._fn.snapshot_state()

    def restore_state(self, state: Any) -> None:
        self._fn.restore_state(state)


class FlatMapNode(Node):
    def __init__(
        self, name: str, fn: FlatMapFunction | Callable[[Record], Iterable[Record]]
    ) -> None:
        super().__init__(name)
        self._fn = fn if isinstance(fn, FlatMapFunction) else _CallableFlatMap(fn)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        for out in self._fn.flat_map(record):
            self.emit(out)

    def on_batch(self, records: list[Record]) -> None:
        flat_map = self._fn.flat_map
        out: list[Record] = []
        for record in records:
            out.extend(flat_map(record))
        self.emit_batch(out)

    def snapshot_state(self) -> Any | None:
        return self._fn.snapshot_state()

    def restore_state(self, state: Any) -> None:
        self._fn.restore_state(state)


class ProcessNode(Node):
    def __init__(self, name: str, fn: ProcessFunction) -> None:
        super().__init__(name)
        self._fn = fn
        self._ctx = ProcessContext()
        self._collector = Collector(self.emit, self.emit_batch)
        # Batch-capable process functions expose process_batch; everything
        # else transparently iterates (the per-node fallback rule).
        self._fn_process_batch = getattr(fn, "process_batch", None)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        self._ctx.event_time = record.event_time
        self._fn.process(record, self._ctx, self._collector)

    def on_batch(self, records: list[Record]) -> None:
        if self._fn_process_batch is not None:
            self._fn_process_batch(records, self._ctx, self._collector)
            return
        ctx = self._ctx
        process = self._fn.process
        collector = self._collector
        for record in records:
            ctx.event_time = record.event_time
            process(record, ctx, collector)

    def on_watermark(self, watermark: Watermark) -> None:
        self._ctx.current_watermark = watermark.timestamp
        self._fn.on_watermark(watermark, self._collector)
        self.emit_watermark(watermark)

    def snapshot_state(self) -> Any | None:
        fn_state = self._fn.snapshot_state()
        if fn_state is None and self._ctx.current_watermark == Watermark.min().timestamp:
            return None
        return {
            "fn": copy.deepcopy(fn_state),
            "watermark": self._ctx.current_watermark,
        }

    def restore_state(self, state: Any) -> None:
        self._ctx.current_watermark = state["watermark"]
        if state["fn"] is not None:
            self._fn.restore_state(state["fn"])

    def slab_token(self) -> Any | None:
        fn_token = getattr(self._fn, "slab_token", None)
        return fn_token() if fn_token is not None else None

    def slab_rollback(self, token: Any) -> None:
        self._fn.slab_rollback(token)


class UnionNode(Node):
    """Merges several upstreams; forwards records in arrival order.

    Watermarks are forwarded as the *minimum* over the upstreams' latest
    watermarks, the standard multi-input watermark rule: event time has only
    progressed as far as the slowest input.
    """

    def __init__(self, name: str, n_inputs: int) -> None:
        super().__init__(name)
        self._latest: list[int] = [Watermark.min().timestamp] * n_inputs
        self._emitted: int = Watermark.min().timestamp
        self._input_index: dict[int, int] = {}
        self._next_slot = 0

    def register_input(self, upstream: Node) -> None:
        self._input_index[id(upstream)] = self._next_slot
        self._next_slot += 1

    def on_record(self, record: Record) -> None:
        self.emit(record)

    def on_batch(self, records: list[Record]) -> None:
        self.emit_batch(records)

    def on_watermark_from(self, upstream: Node, watermark: Watermark) -> None:
        slot = self._input_index.get(id(upstream), 0)
        self._latest[slot] = max(self._latest[slot], watermark.timestamp)
        combined = min(self._latest[: self._next_slot] or [watermark.timestamp])
        if combined > self._emitted:
            self._emitted = combined
            self.emit_watermark(Watermark(combined))

    def on_watermark(self, watermark: Watermark) -> None:
        # Direct watermark without upstream attribution: degrade gracefully.
        self.on_watermark_from(self, watermark)


class SinkNode(Node):
    def __init__(self, name: str, sink: Any) -> None:
        super().__init__(name)
        self.sink = sink

    def open(self) -> None:
        self.sink.open()

    def close(self) -> None:
        self.sink.close()

    def on_record(self, record: Record) -> None:
        self.sink.invoke(record)

    def on_batch(self, records: list[Record]) -> None:
        invoke = self.sink.invoke
        for record in records:
            invoke(record)

    def on_watermark(self, watermark: Watermark) -> None:
        pass

    def snapshot_state(self) -> Any | None:
        return self.sink.snapshot_state()

    def restore_state(self, state: Any) -> None:
        self.sink.restore_state(state)


# ---------------------------------------------------------------------------
# Callable adapters
# ---------------------------------------------------------------------------


class _CallableMap(MapFunction):
    def __init__(self, fn: Callable[[Record], Record]) -> None:
        self._fn = fn

    def map(self, record: Record) -> Record:
        return self._fn(record)


class _CallableFilter(FilterFunction):
    def __init__(self, fn: Callable[[Record], bool]) -> None:
        self._fn = fn

    def filter(self, record: Record) -> bool:
        return bool(self._fn(record))


class _CallableFlatMap(FlatMapFunction):
    def __init__(self, fn: Callable[[Record], Iterable[Record]]) -> None:
        self._fn = fn

    def flat_map(self, record: Record) -> Iterable[Record]:
        return self._fn(record)
