"""Stream operators and the push-based dataflow node model.

The engine executes a DAG of :class:`Node` objects. A node receives records
(and watermarks) from its upstream and forwards transformed output to its
downstream nodes. User logic is supplied as plain callables or as rich
function objects (:class:`MapFunction`, :class:`ProcessFunction`, ...) that
mirror Flink's operator interfaces closely enough that the pollution
operators of :mod:`repro.core` read like their PyFlink counterparts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.streaming.record import Record
from repro.streaming.watermarks import Watermark

# ---------------------------------------------------------------------------
# User-function interfaces
# ---------------------------------------------------------------------------


class MapFunction:
    """One-in one-out transformation."""

    def map(self, record: Record) -> Record:
        raise NotImplementedError

    def open(self) -> None:
        """Called once before processing starts (resource setup)."""

    def close(self) -> None:
        """Called once after the stream is exhausted."""


class FilterFunction:
    """Keeps records for which :meth:`filter` returns True."""

    def filter(self, record: Record) -> bool:
        raise NotImplementedError

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass


class FlatMapFunction:
    """One-in many-out transformation (zero or more output records)."""

    def flat_map(self, record: Record) -> Iterable[Record]:
        raise NotImplementedError

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass


class Collector:
    """Receives output records from a :class:`ProcessFunction`."""

    def __init__(self, emit: Callable[[Record], None]) -> None:
        self._emit = emit
        self.emitted = 0

    def collect(self, record: Record) -> None:
        self.emitted += 1
        self._emit(record)


class ProcessContext:
    """Per-record context handed to a :class:`ProcessFunction`.

    Exposes the record's event time (the replicated timestamp ``tau``) and
    the operator's current watermark — the two temporal signals Icewafl's
    temporal conditions and native temporal errors consume.
    """

    def __init__(self) -> None:
        self.event_time: int | None = None
        self.current_watermark: int = Watermark.min().timestamp


class ProcessFunction:
    """The most general stateless operator: full control over emission."""

    def process(self, record: Record, ctx: ProcessContext, out: Collector) -> None:
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark, out: Collector) -> None:
        """Hook invoked when a watermark passes through the operator."""

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Dataflow nodes
# ---------------------------------------------------------------------------


class Node:
    """A vertex of the dataflow DAG."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.downstream: list[Node] = []

    def add_downstream(self, node: "Node") -> None:
        self.downstream.append(node)

    # -- record / watermark propagation ------------------------------------

    def emit(self, record: Record) -> None:
        for child in self.downstream:
            child.on_record(record)

    def emit_watermark(self, watermark: Watermark) -> None:
        for child in self.downstream:
            child.on_watermark(watermark)

    def on_record(self, record: Record) -> None:
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark) -> None:
        self.emit_watermark(watermark)

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MapNode(Node):
    def __init__(self, name: str, fn: MapFunction | Callable[[Record], Record]) -> None:
        super().__init__(name)
        self._fn = fn if isinstance(fn, MapFunction) else _CallableMap(fn)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        self.emit(self._fn.map(record))


class FilterNode(Node):
    def __init__(self, name: str, fn: FilterFunction | Callable[[Record], bool]) -> None:
        super().__init__(name)
        self._fn = fn if isinstance(fn, FilterFunction) else _CallableFilter(fn)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        if self._fn.filter(record):
            self.emit(record)


class FlatMapNode(Node):
    def __init__(
        self, name: str, fn: FlatMapFunction | Callable[[Record], Iterable[Record]]
    ) -> None:
        super().__init__(name)
        self._fn = fn if isinstance(fn, FlatMapFunction) else _CallableFlatMap(fn)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        for out in self._fn.flat_map(record):
            self.emit(out)


class ProcessNode(Node):
    def __init__(self, name: str, fn: ProcessFunction) -> None:
        super().__init__(name)
        self._fn = fn
        self._ctx = ProcessContext()
        self._collector = Collector(self.emit)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        self._ctx.event_time = record.event_time
        self._fn.process(record, self._ctx, self._collector)

    def on_watermark(self, watermark: Watermark) -> None:
        self._ctx.current_watermark = watermark.timestamp
        self._fn.on_watermark(watermark, self._collector)
        self.emit_watermark(watermark)


class UnionNode(Node):
    """Merges several upstreams; forwards records in arrival order.

    Watermarks are forwarded as the *minimum* over the upstreams' latest
    watermarks, the standard multi-input watermark rule: event time has only
    progressed as far as the slowest input.
    """

    def __init__(self, name: str, n_inputs: int) -> None:
        super().__init__(name)
        self._latest: list[int] = [Watermark.min().timestamp] * n_inputs
        self._emitted: int = Watermark.min().timestamp
        self._input_index: dict[int, int] = {}
        self._next_slot = 0

    def register_input(self, upstream: Node) -> None:
        self._input_index[id(upstream)] = self._next_slot
        self._next_slot += 1

    def on_record(self, record: Record) -> None:
        self.emit(record)

    def on_watermark_from(self, upstream: Node, watermark: Watermark) -> None:
        slot = self._input_index.get(id(upstream), 0)
        self._latest[slot] = max(self._latest[slot], watermark.timestamp)
        combined = min(self._latest[: self._next_slot] or [watermark.timestamp])
        if combined > self._emitted:
            self._emitted = combined
            self.emit_watermark(Watermark(combined))

    def on_watermark(self, watermark: Watermark) -> None:
        # Direct watermark without upstream attribution: degrade gracefully.
        self.on_watermark_from(self, watermark)


class SinkNode(Node):
    def __init__(self, name: str, sink: Any) -> None:
        super().__init__(name)
        self.sink = sink

    def open(self) -> None:
        self.sink.open()

    def close(self) -> None:
        self.sink.close()

    def on_record(self, record: Record) -> None:
        self.sink.invoke(record)

    def on_watermark(self, watermark: Watermark) -> None:
        pass


# ---------------------------------------------------------------------------
# Callable adapters
# ---------------------------------------------------------------------------


class _CallableMap(MapFunction):
    def __init__(self, fn: Callable[[Record], Record]) -> None:
        self._fn = fn

    def map(self, record: Record) -> Record:
        return self._fn(record)


class _CallableFilter(FilterFunction):
    def __init__(self, fn: Callable[[Record], bool]) -> None:
        self._fn = fn

    def filter(self, record: Record) -> bool:
        return bool(self._fn(record))


class _CallableFlatMap(FlatMapFunction):
    def __init__(self, fn: Callable[[Record], Iterable[Record]]) -> None:
        self._fn = fn

    def flat_map(self, record: Record) -> Iterable[Record]:
        return self._fn(record)
