"""Chaos-injection harness: dogfooding Icewafl's pollution philosophy.

Icewafl pollutes *data*; this module pollutes the *runtime* that processes
it. Seeded :class:`FaultingSource` and :class:`FaultingNode` wrappers inject
the failure modes of the paper's §3.1.3 "bad network" scenario at the
execution layer — thrown exceptions, stalls, and duplicate deliveries — at
configurable rates, deterministically per seed. That determinism is the
point: a chaos test that kills a pipeline at record 57, resumes from the
last checkpoint, and compares byte-identical output must replay the exact
same faults (or none) on demand.

Faults are driven by a :class:`ChaosConfig` and decided per *delivery
index*, never per record content, so the same seed produces the same fault
schedule on any stream of equal length.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ChaosError
from repro.streaming.operators import Node
from repro.streaming.record import Record
from repro.streaming.source import Source


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault plan for one wrapper.

    Rates are independent per-delivery probabilities in ``[0, 1]``.
    ``fail_at`` additionally forces an exception at exact delivery indexes
    (0-based), which is how tests kill a pipeline at a known position.
    ``max_failures`` bounds the number of *raised* exceptions; once spent,
    the wrapper stops throwing (stalls and duplicates keep going), so a
    retry policy can eventually win against a flaky operator.
    """

    seed: int
    fail_rate: float = 0.0
    stall_rate: float = 0.0
    duplicate_rate: float = 0.0
    stall_seconds: float = 0.0
    fail_at: frozenset[int] = field(default_factory=frozenset)
    max_failures: int | None = None

    def __post_init__(self) -> None:
        for name in ("fail_rate", "stall_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ChaosError(f"{name} must be in [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ChaosError(f"stall_seconds must be >= 0, got {self.stall_seconds}")
        # Allow any iterable of ints for convenience.
        object.__setattr__(self, "fail_at", frozenset(self.fail_at))


class _FaultPlan:
    """Shared seeded decision engine for both wrappers."""

    __slots__ = ("config", "_rng", "index", "failures_injected", "stalls_injected",
                 "duplicates_injected", "_sleep")

    def __init__(self, config: ChaosConfig, sleep=time.sleep) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.index = 0
        self.failures_injected = 0
        self.stalls_injected = 0
        self.duplicates_injected = 0
        self._sleep = sleep

    def _may_fail(self) -> bool:
        limit = self.config.max_failures
        return limit is None or self.failures_injected < limit

    def next_delivery(self) -> tuple[bool, bool]:
        """Advance one delivery; returns ``(stall, duplicate)`` or raises.

        Exactly three random draws happen per delivery regardless of the
        outcome, so the fault schedule at index ``i`` never depends on
        whether earlier faults actually fired (deterministic replays).
        """
        cfg = self.config
        index = self.index
        self.index += 1
        fail = self._rng.random() < cfg.fail_rate or index in cfg.fail_at
        stall = self._rng.random() < cfg.stall_rate
        duplicate = self._rng.random() < cfg.duplicate_rate
        if fail and self._may_fail():
            self.failures_injected += 1
            raise ChaosError(
                f"injected fault at delivery {index} (seed {cfg.seed})"
            )
        if stall:
            self.stalls_injected += 1
            if cfg.stall_seconds:
                self._sleep(cfg.stall_seconds)
        if duplicate:
            self.duplicates_injected += 1
        return stall, duplicate

    def stats(self) -> dict[str, int]:
        return {
            "deliveries": self.index,
            "failures": self.failures_injected,
            "stalls": self.stalls_injected,
            "duplicates": self.duplicates_injected,
        }


class FaultingNode(Node):
    """A pass-through operator that injects faults ahead of its downstream.

    Insert it anywhere in a topology via ``stream.transform(FaultingNode(...))``.
    Exceptions are raised *before* the record is forwarded, so a retried or
    resumed dispatch delivers the record downstream exactly once; duplicate
    faults forward the same record twice (at-least-once delivery, the thing
    checkpoint consumers must deduplicate or tolerate).
    """

    def __init__(self, name: str, config: ChaosConfig, sleep=time.sleep) -> None:
        super().__init__(name)
        self._plan = _FaultPlan(config, sleep)
        self._armed = True

    def disarm(self) -> None:
        """Stop injecting faults (resumed runs that should stay healthy)."""
        self._armed = False

    @property
    def injected(self) -> dict[str, int]:
        return self._plan.stats()

    def on_record(self, record: Record) -> None:
        if not self._armed:
            self.emit(record)
            return
        _, duplicate = self._plan.next_delivery()
        self.emit(record)
        if duplicate:
            self.emit(record.copy())


class FaultingSource(Source):
    """Wraps a source and injects faults into the *delivery* of its records.

    Mirrors a flaky upstream system: reads can raise (a broken connection),
    stall (backpressure), or deliver the same record twice (retransmission).
    Source faults are *not* subject to failure policies — a dead upstream
    kills the job, which is exactly what checkpoint resume is for.

    Caveat: checkpoint offsets count *delivered* records, so combining a
    non-zero ``duplicate_rate`` with checkpoint resume shifts the replay
    position; inject duplicates with a :class:`FaultingNode` instead when
    checkpointing.
    """

    def __init__(self, inner: Source, config: ChaosConfig, sleep=time.sleep) -> None:
        super().__init__(inner.schema)
        self._inner = inner
        self._config = config
        self._sleep = sleep
        self.last_plan: _FaultPlan | None = None

    @property
    def injected(self) -> dict[str, int]:
        return self.last_plan.stats() if self.last_plan is not None else {}

    def __iter__(self) -> Iterator[Record]:
        return self.iter_from(0)

    def iter_from(self, offset: int) -> Iterator[Record]:
        plan = _FaultPlan(self._config, self._sleep)
        self.last_plan = plan
        # Replay the plan for skipped deliveries so a resumed run sees the
        # same schedule for the remainder of the stream.
        plan.index = offset
        plan._rng = random.Random(self._config.seed)
        for _ in range(offset * 3):
            plan._rng.random()
        for record in self._inner.iter_from(offset):
            _, duplicate = plan.next_delivery()
            yield record
            if duplicate:
                yield record.copy()
