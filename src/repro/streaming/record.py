"""Stream records.

A :class:`Record` is one tuple of a multivariate data stream ``D = t1, t2,
..., tn`` (paper Eq. 1). Besides its attribute values, a record carries the
bookkeeping metadata Algorithm 1's preparation step attaches:

* ``record_id`` — the unique identifier assigned in step 1 (line 2), which
  survives pollution unchanged and links a dirty tuple back to its clean
  ground-truth counterpart;
* ``event_time`` — the replicated timestamp ``tau`` (line 3). The original
  timestamp attribute may be polluted (e.g. by a delay error); ``tau`` is the
  untouched copy used as event time *during* pollution and is dropped from
  the final output;
* ``substream`` — the sub-stream index attached in the integration step
  (line 10) when multiple pipelines are merged.

Records behave like lightweight mutable mappings over their values. Copies
are cheap (a dict copy); the pollution runner copies each record once before
the pipeline so the clean stream is never aliased by the dirty one.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import SchemaError


class Record:
    """One stream tuple: attribute values plus pollution metadata."""

    __slots__ = ("_values", "record_id", "event_time", "substream")

    def __init__(
        self,
        values: Mapping[str, Any],
        record_id: int | None = None,
        event_time: int | None = None,
        substream: int | None = None,
    ) -> None:
        self._values: dict[str, Any] = dict(values)
        self.record_id = record_id
        self.event_time = event_time
        self.substream = substream

    # -- mapping interface over attribute values ---------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise SchemaError(f"record has no attribute {name!r}") from None

    def __setitem__(self, name: str, value: Any) -> None:
        if name not in self._values:
            raise SchemaError(
                f"cannot set unknown attribute {name!r}; records are fixed-schema"
            )
        self._values[name] = value

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def keys(self):
        return self._values.keys()

    def values(self):
        return self._values.values()

    def items(self):
        return self._values.items()

    def as_dict(self) -> dict[str, Any]:
        """A plain-dict snapshot of the attribute values (no metadata)."""
        return dict(self._values)

    # -- identity & comparison ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self._values == other._values
            and self.record_id == other.record_id
            and self.event_time == other.event_time
            and self.substream == other.substream
        )

    def __repr__(self) -> str:
        meta = []
        if self.record_id is not None:
            meta.append(f"id={self.record_id}")
        if self.event_time is not None:
            meta.append(f"tau={self.event_time}")
        if self.substream is not None:
            meta.append(f"sub={self.substream}")
        meta_s = (" " + " ".join(meta)) if meta else ""
        return f"Record({self._values!r}{meta_s})"

    # -- copying -------------------------------------------------------------

    def copy(self) -> "Record":
        """An independent copy (values dict is copied; metadata preserved)."""
        return Record(
            self._values,
            record_id=self.record_id,
            event_time=self.event_time,
            substream=self.substream,
        )

    def with_values(self, **updates: Any) -> "Record":
        """A copy with some attribute values replaced."""
        out = self.copy()
        for name, value in updates.items():
            out[name] = value
        return out

    def diff(self, other: "Record") -> dict[str, tuple[Any, Any]]:
        """Attribute-wise differences ``{name: (self_value, other_value)}``.

        Used to derive ground-truth error annotations by comparing a clean
        record with its polluted counterpart (matched by ``record_id``).
        """
        out: dict[str, tuple[Any, Any]] = {}
        for name, mine in self._values.items():
            theirs = other.get(name)
            if _values_differ(mine, theirs):
                out[name] = (mine, theirs)
        return out


def _values_differ(a: Any, b: Any) -> bool:
    """True if two attribute values differ, treating NaN as equal to NaN."""
    if a is b:
        return False
    if isinstance(a, float) and isinstance(b, float):
        if a != a and b != b:  # both NaN
            return False
    return a != b
