"""Stream splitting for integration scenarios.

Algorithm 1 (line 4) extracts *m possibly overlapping sub-streams* from the
prepared stream, pollutes each with its own pipeline, and merges them back
(§2.2.2). "Overlapping" means one input tuple may flow into several
sub-streams — that is how merging creates fuzzy duplicates: the same logical
tuple, polluted differently per sub-stream, appears multiple times in the
integrated output.

A :class:`SplitNode` routes each record to sub-stream branches according to a
:class:`SplitStrategy`; every routed copy is tagged with its sub-stream index
so the integration step can attach the sub-stream identifier (line 10).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import StreamError
from repro.streaming.operators import Node
from repro.streaming.record import Record

Router = Callable[[Record], Sequence[int]]


class SplitStrategy:
    """Decides which sub-streams each record is routed to."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise StreamError("number of sub-streams must be >= 1")
        self.m = m

    def route(self, record: Record) -> Sequence[int]:
        raise NotImplementedError


class Broadcast(SplitStrategy):
    """Every record goes to all ``m`` sub-streams (maximal overlap).

    This is the strategy behind fuzzy-duplicate generation: each sub-stream
    pollutes its own copy, and the union contains ``m`` near-duplicates of
    every input tuple.
    """

    def route(self, record: Record) -> Sequence[int]:
        return range(self.m)


class RoundRobin(SplitStrategy):
    """Record ``i`` goes to sub-stream ``i mod m`` (a partition, no overlap)."""

    def __init__(self, m: int) -> None:
        super().__init__(m)
        self._counter = 0

    def route(self, record: Record) -> Sequence[int]:
        idx = self._counter % self.m
        self._counter += 1
        return (idx,)


class ProbabilisticOverlap(SplitStrategy):
    """Each sub-stream independently includes each record with probability ``p``.

    Records selected by no sub-stream are sent to sub-stream 0 so the union
    loses no tuples (losing tuples is the job of the drop error, not of
    routing).
    """

    def __init__(self, m: int, p: float, seed: int | None = None) -> None:
        super().__init__(m)
        if not 0.0 <= p <= 1.0:
            raise StreamError(f"overlap probability must be in [0, 1], got {p}")
        self._p = p
        self._rng = np.random.default_rng(seed)

    def route(self, record: Record) -> Sequence[int]:
        chosen = [i for i in range(self.m) if self._rng.random() < self._p]
        return chosen or (0,)


class KeyRouting(SplitStrategy):
    """Routes by a user function of the record (e.g. by sensor/site id)."""

    def __init__(self, m: int, router: Router) -> None:
        super().__init__(m)
        self._router = router

    def route(self, record: Record) -> Sequence[int]:
        targets = list(self._router(record))
        bad = [i for i in targets if not 0 <= i < self.m]
        if bad:
            raise StreamError(f"router returned out-of-range sub-streams: {bad}")
        return targets


class SplitNode(Node):
    """Fans a stream out into ``m`` branch nodes per a :class:`SplitStrategy`.

    Branches are plain pass-through nodes exposed via :attr:`branches`; the
    environment attaches each sub-pipeline to one branch. Records are copied
    per branch (pollution must diverge independently) and tagged with the
    branch's sub-stream index.
    """

    def __init__(self, name: str, strategy: SplitStrategy) -> None:
        super().__init__(name)
        self._strategy = strategy
        self.branches: list[_BranchNode] = [
            _BranchNode(f"{name}.branch[{i}]", i) for i in range(strategy.m)
        ]

    @property
    def m(self) -> int:
        return self._strategy.m

    def on_record(self, record: Record) -> None:
        for idx in self._strategy.route(record):
            copy = record.copy()
            copy.substream = idx
            self.branches[idx].on_record(copy)

    def on_batch(self, records: list[Record]) -> None:
        # Route record by record in arrival order — stateful strategies
        # (round-robin counters, overlap draws) must consume state exactly
        # as the per-record path does — then hand each branch its slice of
        # the arrival window as one slab, in branch index order.
        routed: list[list[Record]] = [[] for _ in self.branches]
        route = self._strategy.route
        for record in records:
            for idx in route(record):
                copy = record.copy()
                copy.substream = idx
                routed[idx].append(copy)
        for branch, batch in zip(self.branches, routed):
            if batch:
                branch.on_batch(batch)

    def on_watermark(self, watermark) -> None:
        for branch in self.branches:
            branch.on_watermark(watermark)


class _BranchNode(Node):
    """Pass-through head of one sub-stream branch."""

    def __init__(self, name: str, index: int) -> None:
        super().__init__(name)
        self.index = index

    def on_record(self, record: Record) -> None:
        self.emit(record)

    def on_batch(self, records: list[Record]) -> None:
        self.emit_batch(records)
