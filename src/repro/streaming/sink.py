"""Stream sinks.

Sinks terminate a dataflow. The pollution process writes two outputs
(Fig. 2): the polluted stream and, optionally, a log of the pollution for
reproducibility. Experiments additionally need a pass-through pipeline that
only loads and writes data (the Experiment 3 baseline), which
:class:`CsvSink` and :class:`NullSink` provide.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any

from repro.streaming.record import Record
from repro.streaming.schema import Schema


class Sink:
    """Base class for sinks. Subclasses implement :meth:`invoke`."""

    def open(self) -> None:
        """Called once before the first record."""

    def invoke(self, record: Record) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Called once after the last record."""

    def snapshot_state(self) -> Any | None:
        """Serializable sink state for a checkpoint (``None`` = not restorable).

        Sinks that cannot rewind their output (e.g. a CSV file already
        written) return ``None``; resuming from a checkpoint then replays
        into a fresh sink and the caller is responsible for splicing output.
        In-memory sinks snapshot their contents so a resumed run continues
        exactly where the checkpoint left off.
        """
        return None

    def restore_state(self, state: Any) -> None:
        """Restore sink state produced by :meth:`snapshot_state`."""


class CollectSink(Sink):
    """Accumulates records in memory; the default sink for experiments."""

    def __init__(self) -> None:
        self.records: list[Record] = []

    def invoke(self, record: Record) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def snapshot_state(self) -> list[Record]:
        return [r.copy() for r in self.records]

    def restore_state(self, state: list[Record]) -> None:
        self.records = [r.copy() for r in state]


class CountingSink(Sink):
    """Counts records without retaining them (cheap throughput measurements)."""

    def __init__(self) -> None:
        self.count = 0

    def invoke(self, record: Record) -> None:
        self.count += 1

    def snapshot_state(self) -> int:
        return self.count

    def restore_state(self, state: int) -> None:
        self.count = state


class NullSink(Sink):
    """Discards all records."""

    def invoke(self, record: Record) -> None:
        pass


class CsvSink(Sink):
    """Writes records to a CSV file (or any text buffer).

    ``None`` values are written as empty cells; floats keep full repr
    precision so round-tripping through :class:`CsvSource` is lossless for
    representable values.
    """

    def __init__(
        self,
        schema: Schema,
        path: str | Path | io.TextIOBase,
        include_metadata: bool = False,
    ) -> None:
        self._schema = schema
        self._path = path
        self._include_metadata = include_metadata
        self._file: Any = None
        self._writer: Any = None
        self._owns_file = not isinstance(path, io.TextIOBase)

    def open(self) -> None:
        if self._owns_file:
            self._file = open(self._path, "w", newline="")  # noqa: SIM115
        else:
            self._file = self._path
        header = list(self._schema.names)
        if self._include_metadata:
            header = ["record_id", "substream", *header]
        self._writer = csv.writer(self._file)
        self._writer.writerow(header)

    def invoke(self, record: Record) -> None:
        if self._writer is None:
            self.open()
        row = [_render(record.get(n)) for n in self._schema.names]
        if self._include_metadata:
            row = [_render(record.record_id), _render(record.substream), *row]
        self._writer.writerow(row)

    def close(self) -> None:
        if self._file is not None and self._owns_file:
            self._file.close()
        self._file = None
        self._writer = None

    def __getstate__(self) -> dict[str, Any]:
        # The open file handle and csv writer cannot cross a process
        # boundary; a pickled sink arrives closed and re-opens on first use.
        # Only a path-backed sink can be shipped at all — an injected text
        # buffer lives in the sending process.
        if not self._owns_file:
            raise TypeError(
                "CsvSink wrapping an in-memory buffer cannot be pickled; "
                "construct it with a file path to use it in a worker process"
            )
        state = dict(self.__dict__)
        state["_file"] = None
        state["_writer"] = None
        return state


def _render(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    return str(value)
