"""Keyed streams and per-key state.

The paper's future-work section motivates keyed process functions for
history-dependent pollution across distributed nodes (§5, item 2). This
module implements the single-process equivalent: records are partitioned by
a key selector and a :class:`KeyedProcessFunction` gets isolated state and
event-time timers per key. Icewafl's *frozen value* error uses per-key state
(the last clean value per attribute), and the extension polluters in
:mod:`repro.core.errors.stateful` build on it too.
"""

from __future__ import annotations

import copy
import heapq
from typing import Any, Callable, Generic, Hashable, TypeVar

from repro.streaming.operators import Collector, Node
from repro.streaming.record import Record
from repro.streaming.watermarks import Watermark

T = TypeVar("T")

KeySelector = Callable[[Record], Hashable]


class ValueState(Generic[T]):
    """A single mutable value scoped to the current key."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: T | None = None

    def value(self) -> T | None:
        return self._value

    def update(self, value: T | None) -> None:
        self._value = value

    def clear(self) -> None:
        self._value = None


class ListState(Generic[T]):
    """An appendable list scoped to the current key."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[T] = []

    def add(self, item: T) -> None:
        self._items.append(item)

    def get(self) -> list[T]:
        return self._items

    def clear(self) -> None:
        self._items = []


class MapState(Generic[T]):
    """A mapping scoped to the current key."""

    __slots__ = ("_map",)

    def __init__(self) -> None:
        self._map: dict[Hashable, T] = {}

    def put(self, k: Hashable, v: T) -> None:
        self._map[k] = v

    def get(self, k: Hashable, default: T | None = None) -> T | None:
        return self._map.get(k, default)

    def contains(self, k: Hashable) -> bool:
        return k in self._map

    def keys(self):
        return self._map.keys()

    def clear(self) -> None:
        self._map = {}


class StateStore:
    """Per-key registry of named state objects.

    State handles are created lazily on first access with a factory, so a
    ``KeyedProcessFunction`` can call ``ctx.state("last", ValueState)`` on
    every record and always receive the state bound to the current key.
    """

    def __init__(self) -> None:
        self._per_key: dict[Hashable, dict[str, Any]] = {}

    def for_key(self, key: Hashable, name: str, factory: Callable[[], T]) -> T:
        bucket = self._per_key.setdefault(key, {})
        if name not in bucket:
            bucket[name] = factory()
        return bucket[name]

    def keys(self) -> list[Hashable]:
        return list(self._per_key.keys())

    def drop_key(self, key: Hashable) -> None:
        self._per_key.pop(key, None)

    def snapshot(self) -> dict[Hashable, dict[str, Any]]:
        """A deep copy of all per-key state (checkpointing)."""
        return copy.deepcopy(self._per_key)

    def restore(self, snapshot: dict[Hashable, dict[str, Any]]) -> None:
        self._per_key = copy.deepcopy(snapshot)


class TimerService:
    """Event-time timers: callbacks fired when the watermark passes them."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Hashable]] = []
        self._seq = 0
        self._registered: set[tuple[int, Hashable]] = set()

    def register_event_time_timer(self, timestamp: int, key: Hashable) -> None:
        if (timestamp, key) in self._registered:
            return
        self._registered.add((timestamp, key))
        heapq.heappush(self._heap, (timestamp, self._seq, key))
        self._seq += 1

    def pop_due(self, watermark_ts: int) -> list[tuple[int, Hashable]]:
        due: list[tuple[int, Hashable]] = []
        while self._heap and self._heap[0][0] <= watermark_ts:
            ts, _, key = heapq.heappop(self._heap)
            self._registered.discard((ts, key))
            due.append((ts, key))
        return due

    def snapshot(self) -> dict[str, Any]:
        return {
            "heap": list(self._heap),
            "seq": self._seq,
            "registered": set(self._registered),
        }

    def restore(self, snapshot: dict[str, Any]) -> None:
        self._heap = list(snapshot["heap"])
        heapq.heapify(self._heap)
        self._seq = snapshot["seq"]
        self._registered = set(snapshot["registered"])


class KeyedContext:
    """Context for :class:`KeyedProcessFunction`: key, state, timers."""

    def __init__(self, store: StateStore, timers: TimerService) -> None:
        self._store = store
        self._timers = timers
        self.current_key: Hashable = None
        self.event_time: int | None = None
        self.current_watermark: int = Watermark.min().timestamp

    def state(self, name: str, factory: Callable[[], T]) -> T:
        """The state object ``name`` scoped to the current key."""
        return self._store.for_key(self.current_key, name, factory)

    def register_event_time_timer(self, timestamp: int) -> None:
        self._timers.register_event_time_timer(timestamp, self.current_key)


class KeyedProcessFunction:
    """Stateful per-key operator, mirroring Flink's interface."""

    def process(self, record: Record, ctx: KeyedContext, out: Collector) -> None:
        raise NotImplementedError

    def on_timer(self, timestamp: int, ctx: KeyedContext, out: Collector) -> None:
        """Invoked when a registered event-time timer fires for a key."""

    def open(self) -> None:
        pass

    def close(self) -> None:
        pass

    def snapshot_state(self) -> Any | None:
        """Extra function-level state beyond the keyed store (``None`` = none)."""
        return None

    def restore_state(self, state: Any) -> None:
        pass


class KeyedProcessNode(Node):
    """Dataflow node executing a :class:`KeyedProcessFunction`."""

    def __init__(
        self, name: str, key_selector: KeySelector, fn: KeyedProcessFunction
    ) -> None:
        super().__init__(name)
        self._key_selector = key_selector
        self._fn = fn
        self._store = StateStore()
        self._timers = TimerService()
        self._ctx = KeyedContext(self._store, self._timers)
        self._collector = Collector(self.emit)

    def open(self) -> None:
        self._fn.open()

    def close(self) -> None:
        self._fn.close()

    def on_record(self, record: Record) -> None:
        self._ctx.current_key = self._key_selector(record)
        self._ctx.event_time = record.event_time
        self._fn.process(record, self._ctx, self._collector)

    def on_watermark(self, watermark: Watermark) -> None:
        self._ctx.current_watermark = watermark.timestamp
        for ts, key in self._timers.pop_due(watermark.timestamp):
            self._ctx.current_key = key
            self._fn.on_timer(ts, self._ctx, self._collector)
        self.emit_watermark(watermark)

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "store": self._store.snapshot(),
            "timers": self._timers.snapshot(),
            "watermark": self._ctx.current_watermark,
            "fn": copy.deepcopy(self._fn.snapshot_state()),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._store.restore(state["store"])
        self._timers.restore(state["timers"])
        self._ctx.current_watermark = state["watermark"]
        if state["fn"] is not None:
            self._fn.restore_state(state["fn"])
