"""Stream sources.

A source yields :class:`~repro.streaming.record.Record` objects in stream
order. Sources validate records against the stream schema eagerly, so that
pollution operates on well-typed clean data (Fig. 2's "Prepare Data" step
assumes a parseable input). Micro-batched input (§2.1: "a data stream split
into small batches") is flattened back to tuple-wise order by
:class:`MicroBatchSource`.
"""

from __future__ import annotations

import csv
import itertools
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import StreamError
from repro.streaming.record import Record
from repro.streaming.schema import Schema


class Source:
    """Base class for stream sources."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def __iter__(self) -> Iterator[Record]:
        raise NotImplementedError

    def iter_from(self, offset: int) -> Iterator[Record]:
        """Iterate the stream starting at record index ``offset``.

        Used by checkpoint resume: sources must be re-iterable and
        deterministic, so skipping the first ``offset`` records replays the
        exact remainder of the original stream. Subclasses with cheap random
        access may override; the default skips via iteration.
        """
        return itertools.islice(iter(self), offset, None)

    def _to_record(self, values: Mapping[str, Any], validate: bool) -> Record:
        if validate:
            self._schema.validate_values(values)
        return Record(values)


class CollectionSource(Source):
    """Source over an in-memory sequence of value mappings or records.

    The common entry point for tests and experiments: build rows as dicts,
    wrap them in a source, pollute, inspect.
    """

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Mapping[str, Any] | Record],
        validate: bool = True,
    ) -> None:
        super().__init__(schema)
        self._rows = list(rows)
        self._validate = validate

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Record]:
        return self.iter_from(0)

    def iter_from(self, offset: int) -> Iterator[Record]:
        for row in self._rows[offset:]:
            if isinstance(row, Record):
                if self._validate:
                    self._schema.validate_values(row.as_dict())
                yield row.copy()
            else:
                yield self._to_record(row, self._validate)


class GeneratorSource(Source):
    """Source driven by a factory of row iterators.

    The factory is invoked per iteration, so the source is re-iterable —
    important because the pollution runner reads the input twice conceptually
    (clean + dirty); in practice it reads once and copies, but benchmarks
    re-run sources many times.
    """

    def __init__(
        self,
        schema: Schema,
        factory: Callable[[], Iterable[Mapping[str, Any]]],
        validate: bool = False,
    ) -> None:
        super().__init__(schema)
        self._factory = factory
        self._validate = validate

    def __iter__(self) -> Iterator[Record]:
        for row in self._factory():
            yield self._to_record(row, self._validate)


class MicroBatchSource(Source):
    """Flattens a sequence of micro-batches into a tuple-wise stream.

    §2.1: "The pollution process can either take a real data stream or a data
    stream split into small batches (i.e., micro-batching) as input. Within
    our framework, each input is treated tuple-wise as a data stream."
    """

    def __init__(
        self,
        schema: Schema,
        batches: Iterable[Sequence[Mapping[str, Any] | Record]],
        validate: bool = True,
    ) -> None:
        super().__init__(schema)
        self._batches = [list(b) for b in batches]
        self._validate = validate

    @property
    def batch_sizes(self) -> list[int]:
        return [len(b) for b in self._batches]

    def __iter__(self) -> Iterator[Record]:
        for batch in self._batches:
            for row in batch:
                if isinstance(row, Record):
                    yield row.copy()
                else:
                    yield self._to_record(row, self._validate)


class CsvSource(Source):
    """Reads records from a CSV file, parsing cells via the schema.

    The header row must name every schema attribute (extra columns are
    ignored). Cell parsing follows :meth:`Attribute.parse`: empty cells and
    NA literals become ``None``.
    """

    def __init__(self, schema: Schema, path: str | Path, validate: bool = False) -> None:
        super().__init__(schema)
        self._path = Path(path)
        self._validate = validate

    def __iter__(self) -> Iterator[Record]:
        with open(self._path, newline="") as f:
            reader = csv.DictReader(f)
            if reader.fieldnames is None:
                raise StreamError(f"CSV file {self._path} has no header row")
            missing = [n for n in self._schema.names if n not in reader.fieldnames]
            if missing:
                raise StreamError(
                    f"CSV file {self._path} is missing schema columns: {missing}"
                )
            for row in reader:
                values = {
                    attr.name: attr.parse(row[attr.name]) for attr in self._schema
                }
                yield self._to_record(values, self._validate)
