"""Event-time utilities.

Following the paper (§2.1), every stream tuple carries an integer timestamp.
Throughout the library timestamps are **Unix epoch seconds** (UTC). These
helpers convert between epoch seconds and human-readable forms, and compute
the time arithmetic the pollution conditions need (hour of day, hours between
two timestamps, interval membership).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400

_TS_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
)


@dataclass(frozen=True, slots=True)
class Duration:
    """A span of time, stored in seconds.

    Used for watermark out-of-orderness bounds, window sizes, and the
    delay magnitudes of temporal error functions.
    """

    seconds: int

    @classmethod
    def of_seconds(cls, n: int) -> "Duration":
        return cls(int(n))

    @classmethod
    def of_minutes(cls, n: float) -> "Duration":
        return cls(int(n * SECONDS_PER_MINUTE))

    @classmethod
    def of_hours(cls, n: float) -> "Duration":
        return cls(int(n * SECONDS_PER_HOUR))

    @classmethod
    def of_days(cls, n: float) -> "Duration":
        return cls(int(n * SECONDS_PER_DAY))

    def __add__(self, other: "Duration") -> "Duration":
        return Duration(self.seconds + other.seconds)

    def __mul__(self, factor: float) -> "Duration":
        return Duration(int(self.seconds * factor))


def parse_timestamp(text: str) -> int:
    """Parse a timestamp string (e.g. ``"2016-02-27 13:00:00"``) to epoch seconds.

    Accepts several common formats; the date-only form maps to midnight UTC.
    Raises ``ValueError`` for unparseable input.
    """
    for fmt in _TS_FORMATS:
        try:
            dt = datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
        except ValueError:
            continue
        return int(dt.timestamp())
    raise ValueError(f"unrecognized timestamp format: {text!r}")


def format_timestamp(ts: int, fmt: str = "%Y-%m-%d %H:%M:%S") -> str:
    """Render epoch seconds as a UTC timestamp string."""
    return datetime.fromtimestamp(int(ts), tz=timezone.utc).strftime(fmt)


def hour_of_day(ts: int) -> float:
    """Return the hour of day in ``[0, 24)`` as a float (minutes included).

    The sinusoidal pollution condition of Experiment 1 (§3.1.1) evaluates
    its daily cycle on this value.
    """
    seconds_into_day = int(ts) % SECONDS_PER_DAY
    return seconds_into_day / SECONDS_PER_HOUR


def hour_of_day_int(ts: int) -> int:
    """Return the integer hour of day in ``[0, 23]``."""
    return (int(ts) % SECONDS_PER_DAY) // SECONDS_PER_HOUR


def hours_between(start_ts: int, end_ts: int) -> float:
    """The paper's ``hours`` function: the difference of two timestamps in hours.

    Equations 3 and 4 use ``hours(tau_i - tau_0) / hours(tau_n - tau_0)`` to
    ramp noise magnitude and activation probability over the stream's life.
    """
    return (int(end_ts) - int(start_ts)) / SECONDS_PER_HOUR


def day_of_timestamp(ts: int) -> int:
    """Return the epoch-second timestamp of midnight (UTC) of ``ts``'s day."""
    return int(ts) - int(ts) % SECONDS_PER_DAY


def month_of_year(ts: int) -> int:
    """Return the month (1-12) of a timestamp; used by calendar encodings."""
    return datetime.fromtimestamp(int(ts), tz=timezone.utc).month


def in_daily_interval(ts: int, start_hour: float, end_hour: float) -> bool:
    """True if the time-of-day of ``ts`` falls in ``[start_hour, end_hour)``.

    Handles intervals that wrap past midnight (e.g. 22:00–02:00).
    """
    h = hour_of_day(ts)
    if start_hour <= end_hour:
        return start_hour <= h < end_hour
    return h >= start_hour or h < end_hour
