"""Supervised operator execution: failure policies, dead letters, reports.

The paper's §3.1.3 "bad network" scenario pollutes a stream with delays,
drops, and duplicates — and a runtime that *processes* such streams fails in
equally messy ways. This module makes operator failure a first-class part of
the execution model instead of a bare traceback:

* every record dispatch into a :class:`~repro.streaming.operators.Node` can
  be wrapped by a :class:`Supervisor` that captures a structured
  :class:`FailureContext` (node, record id, stream offset, exception);
* a per-node or per-environment :class:`FailurePolicy` decides what happens
  next — fail fast, skip the record, retry with backoff, or route the
  poisoned record to a :class:`DeadLetterSink`;
* the environment returns an :class:`ExecutionReport` whose per-node counts
  reconcile: every record dispatched to a node was processed, skipped, or
  dead-lettered.

Supervision is opt-in: an environment without policies runs the original
unsupervised fast path and exceptions propagate unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterator

from repro.errors import NodeFailure
from repro.obs.metrics import MetricsRegistry
from repro.streaming.record import Record

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracing import Tracer
    from repro.streaming.operators import Node


class FailureAction(Enum):
    """What a policy does with a failed record dispatch."""

    FAIL_FAST = "fail_fast"
    SKIP = "skip"
    RETRY = "retry"
    DEAD_LETTER = "dead_letter"


@dataclass(frozen=True, slots=True)
class FailurePolicy:
    """How a node responds to an exception raised while processing a record.

    Use the module-level singletons :data:`FAIL_FAST`, :data:`SKIP`, and
    :data:`DEAD_LETTER`, or build a retry policy with :meth:`retry`. A retry
    policy re-dispatches the same record up to ``max_retries`` times (with
    optional exponential ``backoff`` seconds between attempts) and, when
    exhausted, escalates to ``exhausted_action``.
    """

    action: FailureAction
    max_retries: int = 0
    backoff: float = 0.0
    exhausted_action: FailureAction = FailureAction.FAIL_FAST

    @staticmethod
    def retry(
        max_retries: int,
        backoff: float = 0.0,
        exhausted: "FailureAction | FailurePolicy" = FailureAction.FAIL_FAST,
    ) -> "FailurePolicy":
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        action = exhausted.action if isinstance(exhausted, FailurePolicy) else exhausted
        if action is FailureAction.RETRY:
            raise ValueError("exhausted action cannot itself be RETRY")
        return FailurePolicy(
            FailureAction.RETRY,
            max_retries=max_retries,
            backoff=backoff,
            exhausted_action=action,
        )

    def describe(self) -> str:
        if self.action is FailureAction.RETRY:
            return (
                f"retry(n={self.max_retries}, backoff={self.backoff}s, "
                f"then={self.exhausted_action.value})"
            )
        return self.action.value


#: Re-raise the failure immediately (the default; pre-supervision behaviour).
FAIL_FAST = FailurePolicy(FailureAction.FAIL_FAST)
#: Drop the poisoned record at the failing node and continue.
SKIP = FailurePolicy(FailureAction.SKIP)
#: Route the poisoned record (plus context) to the dead-letter sink.
DEAD_LETTER = FailurePolicy(FailureAction.DEAD_LETTER)


@dataclass(slots=True)
class FailureContext:
    """Structured context for one failed record dispatch."""

    node: str
    record_id: int | None
    offset: int
    exception: BaseException
    attempts: int = 1
    values: dict | None = None

    def describe(self) -> str:
        rid = "?" if self.record_id is None else self.record_id
        return (
            f"node={self.node!r} record_id={rid} offset={self.offset} "
            f"attempts={self.attempts} error={type(self.exception).__name__}: "
            f"{self.exception}"
        )


@dataclass(slots=True)
class DeadLetter:
    """A poisoned record together with the context of its failure."""

    record: Record
    context: FailureContext


class DeadLetterSink:
    """Collects poisoned records; queryable after ``execute()``."""

    def __init__(self) -> None:
        self.entries: list[DeadLetter] = []

    def add(self, record: Record, context: FailureContext) -> None:
        self.entries.append(DeadLetter(record, context))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self.entries)

    @property
    def records(self) -> list[Record]:
        return [e.record for e in self.entries]

    def by_node(self) -> dict[str, list[DeadLetter]]:
        out: dict[str, list[DeadLetter]] = {}
        for entry in self.entries:
            out.setdefault(entry.context.node, []).append(entry)
        return out

    def summary(self) -> str:
        if not self.entries:
            return "no dead letters"
        lines = [f"{len(self.entries)} dead letter(s):"]
        for node, entries in sorted(self.by_node().items()):
            ids = [e.context.record_id for e in entries]
            lines.append(f"  {node}: {len(entries)} record(s), ids={ids}")
        return "\n".join(lines)


class NodeStats:
    """Per-node dispatch counters, backed by the run's metrics registry.

    Each stat is a *view* over a counter in the report's
    :class:`~repro.obs.metrics.MetricsRegistry` — supervision bookkeeping
    and exported metrics are the same numbers by construction, not two
    parallel tallies that could drift. ``skipped``/``retried``/
    ``dead_lettered`` are incremented by the supervisor on the (rare)
    failure path; ``processed`` is derived after the run from the DAG's
    per-node emit counters, keeping the per-record hot path free of stats
    bookkeeping.
    """

    __slots__ = ("_processed", "_skipped", "_retried", "_dead_lettered")

    def __init__(self, registry: MetricsRegistry, node: str) -> None:
        self._processed = registry.counter("node_records_processed_total", node=node)
        self._skipped = registry.counter("node_records_skipped_total", node=node)
        self._retried = registry.counter("node_retries_total", node=node)
        self._dead_lettered = registry.counter("node_dead_letters_total", node=node)

    @property
    def processed(self) -> int:
        return self._processed.value

    @processed.setter
    def processed(self, value: int) -> None:
        self._processed.value = value

    @property
    def skipped(self) -> int:
        return self._skipped.value

    @skipped.setter
    def skipped(self, value: int) -> None:
        self._skipped.value = value

    @property
    def retried(self) -> int:
        return self._retried.value

    @retried.setter
    def retried(self, value: int) -> None:
        self._retried.value = value

    @property
    def dead_lettered(self) -> int:
        return self._dead_lettered.value

    @dead_lettered.setter
    def dead_lettered(self, value: int) -> None:
        self._dead_lettered.value = value

    @property
    def dispatched(self) -> int:
        """Distinct records that arrived at this node (retries not re-counted)."""
        return self.processed + self.skipped + self.dead_lettered

    def as_dict(self) -> dict[str, int]:
        return {
            "processed": self.processed,
            "skipped": self.skipped,
            "retried": self.retried,
            "dead_lettered": self.dead_lettered,
        }


@dataclass
class ExecutionReport:
    """What one ``execute()`` run did, per node and overall.

    ``node_stats`` is only populated for instrumented (supervised or
    metered) runs; plain fast-path runs still report ``source_records`` and
    completion. The report is a *view* over ``metrics``: every per-node
    count lives in the registry, so exporting the registry and reading the
    report can never disagree. ``metrics`` must be an enabled registry —
    the environment substitutes a private one when the user's is disabled.
    """

    source_records: int = 0
    supervised: bool = False
    completed: bool = False
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    node_stats: dict[str, NodeStats] = field(default_factory=dict)
    dead_letters: DeadLetterSink = field(default_factory=DeadLetterSink)
    checkpoints_taken: int = 0
    resumed_from_offset: int = 0
    #: Parallel runs only: worker respawns performed by the self-healing
    #: coordinator, and shards that finished via the degraded sequential
    #: drain after exhausting their restart budget. Always 0 sequentially.
    shard_restarts: int = 0
    degraded_shards: int = 0

    def stats_for(self, node_name: str) -> NodeStats:
        stats = self.node_stats.get(node_name)
        if stats is None:
            stats = self.node_stats[node_name] = NodeStats(self.metrics, node_name)
        return stats

    def total(self, counter: str) -> int:
        return sum(getattr(s, counter) for s in self.node_stats.values())

    def reconciles(self, node_name: str, expected: int) -> bool:
        """True if ``processed + skipped + dead_lettered == expected``."""
        return self.stats_for(node_name).dispatched == expected

    def summary(self) -> str:
        lines = [
            f"source records: {self.source_records}"
            + (f" (resumed at offset {self.resumed_from_offset})" if self.resumed_from_offset else ""),
            f"completed: {self.completed}  supervised: {self.supervised}",
        ]
        if self.checkpoints_taken:
            lines.append(f"checkpoints taken: {self.checkpoints_taken}")
        if self.node_stats:
            lines.append("per-node: processed/skipped/retried/dead-lettered")
            for name, s in self.node_stats.items():
                lines.append(
                    f"  {name}: {s.processed}/{s.skipped}/{s.retried}/{s.dead_lettered}"
                )
        if len(self.dead_letters):
            lines.append(self.dead_letters.summary())
        return "\n".join(lines)


class Supervisor:
    """Applies failure policies to failed record dispatches.

    The hot path lives in :meth:`repro.streaming.operators.Node.emit`: a
    successful dispatch costs one ``try`` block and one counter increment.
    Only on exception does control enter :meth:`handle_failure`.
    """

    def __init__(
        self,
        default_policy: FailurePolicy = FAIL_FAST,
        report: ExecutionReport | None = None,
        sleep=time.sleep,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.default_policy = default_policy
        self.report = report if report is not None else ExecutionReport(supervised=True)
        self.report.supervised = True
        self.dead_letters = self.report.dead_letters
        self.offset = 0  # current source offset, maintained by the environment
        self._sleep = sleep
        self.tracer = tracer

    def attach(self, node: "Node") -> None:
        """Wire a node into this supervisor (stats slot + hot-path flag)."""
        node._supervisor = self
        node._stats = self.report.stats_for(node.name)

    def dispatch(self, node: "Node", record: Record) -> None:
        """Top-level supervised dispatch (used for source heads)."""
        try:
            node.on_record(record)
        except NodeFailure:
            raise  # already adjudicated further down the DAG
        except Exception as exc:  # noqa: BLE001 - supervision boundary
            self.handle_failure(node, record, exc)

    def handle_failure(self, node: "Node", record: Record, exc: BaseException) -> None:
        policy = node._policy or self.default_policy
        stats = node._stats
        tracer = self.tracer
        attempts = 1
        action = policy.action
        if action is FailureAction.RETRY:
            for attempt in range(policy.max_retries):
                if policy.backoff:
                    self._sleep(policy.backoff * (2**attempt))
                stats.retried += 1
                attempts += 1
                if tracer is not None:
                    tracer.event(
                        "supervision.retry",
                        kind="supervision",
                        node=node.name,
                        record_id=record.record_id,
                        offset=self.offset,
                        attempt=attempt + 1,
                        error=type(exc).__name__,
                    )
                try:
                    node.on_record(record)
                except NodeFailure:
                    raise
                except Exception as retry_exc:  # noqa: BLE001
                    exc = retry_exc
                else:
                    return  # recovered; counted as processed at finalization
            action = policy.exhausted_action
        context = FailureContext(
            node=node.name,
            record_id=record.record_id,
            offset=self.offset,
            exception=exc,
            attempts=attempts,
            values=record.as_dict(),
        )
        if tracer is not None:
            tracer.event(
                "supervision." + action.value,
                kind="supervision",
                node=node.name,
                record_id=record.record_id,
                offset=self.offset,
                attempts=attempts,
                error=type(exc).__name__,
            )
        if action is FailureAction.SKIP:
            stats.skipped += 1
        elif action is FailureAction.DEAD_LETTER:
            stats.dead_lettered += 1
            self.dead_letters.add(record, context)
        else:  # FAIL_FAST
            raise NodeFailure(
                f"operator failed after {attempts} attempt(s) at offset "
                f"{self.offset}: {type(exc).__name__}: {exc}",
                node=context.node,
                record_id=context.record_id,
                context=context,
            ) from exc
