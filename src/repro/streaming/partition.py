"""Record-to-shard partitioners for parallel execution.

A :class:`Partitioner` deterministically assigns every prepared record to
one of ``n_shards`` worker shards. Two assignment families exist, matching
the two pollution-plan shapes :mod:`repro.parallel` runs:

* :class:`KeyPartitioner` — hash-partition by the *pollution key* (the same
  key that scopes per-key pipelines in keyed pollution). All records of a
  key land on one shard, in arrival order, which is the locality property
  that makes (a) stateful per-key error functions correct under sharding
  and (b) keyed parallel output byte-identical to the sequential run: each
  key's named random streams are drawn in exactly the sequential order.
* :class:`RoundRobinPartitioner` — the fallback for unkeyed plans: record
  ``i`` goes to shard ``i mod n``. Balanced and deterministic, but polluters
  then see an arbitrary record subset, so unkeyed parallel runs are
  reproducible per ``(seed, n_shards)`` rather than shard-count-invariant.

Hashing uses the process-independent CRC-32 of the key's ``repr`` (see
:func:`repro.core.rng.stable_hash`): Python's builtin ``hash`` is salted
per process, which would scatter keys differently on every run — and across
the coordinator/worker process boundary.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.core.rng import stable_hash
from repro.errors import StreamError
from repro.streaming.record import Record

KeySelector = Callable[[Record], Hashable]


class AttributeKeySelector:
    """A picklable key selector reading one attribute's value.

    The CLI (``--key-by station``) and config-driven runs name the pollution
    key as an attribute; lambdas cannot ship to worker processes, so this
    tiny callable class is the serializable equivalent of
    ``lambda r: r.get(name)``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, record: Record) -> Hashable:
        return record.get(self.name)

    def __repr__(self) -> str:
        return f"AttributeKeySelector({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeKeySelector) and other.name == self.name

    def __getstate__(self):
        return self.name

    def __setstate__(self, state) -> None:
        self.name = state


class Partitioner:
    """Base class: deterministic record-to-shard assignment."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise StreamError(f"number of shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    def shard_of(self, record: Record, index: int) -> int:
        """The shard for ``record``, the ``index``-th record of the stream."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}(n={self.n_shards})"


class RoundRobinPartitioner(Partitioner):
    """Record ``i`` goes to shard ``i mod n`` (unkeyed fallback)."""

    def shard_of(self, record: Record, index: int) -> int:
        return index % self.n_shards


class KeyPartitioner(Partitioner):
    """Hash-partition by pollution key: ``crc32(repr(key)) mod n``.

    ``repr`` (rather than ``str``) keeps distinct keys distinct across
    types (``1`` vs ``"1"``), matching how keyed pollution scopes its
    per-key random streams (``key={key!r}``).
    """

    def __init__(self, n_shards: int, key_selector: KeySelector) -> None:
        super().__init__(n_shards)
        self.key_selector = key_selector

    def shard_of(self, record: Record, index: int) -> int:
        return stable_hash(repr(self.key_selector(record))) % self.n_shards

    def describe(self) -> str:
        return f"KeyPartitioner(n={self.n_shards}, key={self.key_selector!r})"
