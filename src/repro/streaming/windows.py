"""Event-time windows.

Windows group records of a keyed stream by event-time spans and apply an
aggregation when the watermark passes the window end. The DQ experiments
report *per-hour* error counts (Fig. 4), which is exactly a tumbling
one-hour count window; the forecasting experiments consume contiguous
training/evaluation spans, which the prequential evaluator cuts with the
same assigner logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.errors import StreamError
from repro.streaming.keyed import KeySelector
from repro.streaming.operators import Node
from repro.streaming.record import Record
from repro.streaming.time import Duration
from repro.streaming.watermarks import Watermark


@dataclass(frozen=True, slots=True, order=True)
class TimeWindow:
    """A half-open event-time span ``[start, end)``."""

    start: int
    end: int

    def contains(self, ts: int) -> bool:
        return self.start <= ts < self.end


class WindowAssigner:
    """Maps an event time to the windows it belongs to."""

    def assign(self, event_time: int) -> list[TimeWindow]:
        raise NotImplementedError


class TumblingEventTimeWindows(WindowAssigner):
    """Fixed-size, non-overlapping windows aligned to the epoch (+offset)."""

    def __init__(self, size: Duration, offset: Duration | None = None) -> None:
        if size.seconds <= 0:
            raise StreamError("window size must be positive")
        self._size = size.seconds
        self._offset = (offset.seconds if offset else 0) % self._size

    def assign(self, event_time: int) -> list[TimeWindow]:
        start = event_time - ((event_time - self._offset) % self._size)
        return [TimeWindow(start, start + self._size)]


class SlidingEventTimeWindows(WindowAssigner):
    """Fixed-size windows that advance by ``slide`` (may overlap)."""

    def __init__(self, size: Duration, slide: Duration) -> None:
        if size.seconds <= 0 or slide.seconds <= 0:
            raise StreamError("window size and slide must be positive")
        if size.seconds % slide.seconds != 0:
            raise StreamError("window size must be a multiple of the slide")
        self._size = size.seconds
        self._slide = slide.seconds

    def assign(self, event_time: int) -> list[TimeWindow]:
        last_start = event_time - (event_time % self._slide)
        windows = []
        start = last_start
        while start > event_time - self._size:
            windows.append(TimeWindow(start, start + self._size))
            start -= self._slide
        return sorted(windows)


class SessionEventTimeWindows(WindowAssigner):
    """Gap-based session windows.

    Each record opens a proto-window ``[ts, ts + gap)``; the window operator
    merges overlapping proto-windows of the same key at fire time, so a
    burst of records separated by less than ``gap`` forms one session — the
    natural unit for activity-tracker streams (a workout) and for bursty
    error episodes (one bad-network incident).
    """

    is_merging = True

    def __init__(self, gap: Duration) -> None:
        if gap.seconds <= 0:
            raise StreamError("session gap must be positive")
        self.gap = gap.seconds

    def assign(self, event_time: int) -> list[TimeWindow]:
        return [TimeWindow(event_time, event_time + self.gap)]

    @staticmethod
    def merge(windows: list[TimeWindow]) -> list[TimeWindow]:
        """Coalesce overlapping/touching proto-windows into sessions."""
        if not windows:
            return []
        merged: list[TimeWindow] = []
        for w in sorted(windows):
            if merged and w.start <= merged[-1].end:
                merged[-1] = TimeWindow(merged[-1].start, max(merged[-1].end, w.end))
            else:
                merged.append(w)
        return merged


WindowFunction = Callable[[Hashable, TimeWindow, list[Record]], Record]


class WindowNode(Node):
    """Buffers records per (key, window); fires on watermark passage.

    Late records — event time at or below the current watermark — are routed
    to :attr:`late_records` instead of silently dropped, since counting late
    arrivals is how the bad-network experiment measures delay errors from the
    consumer side.
    """

    def __init__(
        self,
        name: str,
        key_selector: KeySelector,
        assigner: WindowAssigner,
        fn: WindowFunction,
    ) -> None:
        super().__init__(name)
        self._key_selector = key_selector
        self._assigner = assigner
        self._fn = fn
        self._buffers: dict[tuple[Hashable, TimeWindow], list[Record]] = {}
        self._watermark = Watermark.min().timestamp
        self.late_records: list[Record] = []

    def on_record(self, record: Record) -> None:
        if record.event_time is None:
            raise StreamError(
                f"window operator {self.name!r} requires event-time-stamped records"
            )
        if record.event_time < self._watermark:
            # Strictly behind the watermark: late. A record exactly *at* the
            # watermark is on time (equal timestamps arrive in bursts); if
            # its window already fired, the window simply fires again with
            # the stragglers — a late update, never a silent drop.
            self.late_records.append(record)
            return
        key = self._key_selector(record)
        for window in self._assigner.assign(record.event_time):
            self._buffers.setdefault((key, window), []).append(record)
        if getattr(self._assigner, "is_merging", False):
            self._merge_windows_for_key(key)

    def _merge_windows_for_key(self, key: Hashable) -> None:
        """Coalesce overlapping session proto-windows of one key."""
        entries = [
            (w, recs) for (k, w), recs in self._buffers.items() if k == key
        ]
        merged = SessionEventTimeWindows.merge([w for w, _ in entries])
        if len(merged) == len(entries):
            return
        for w, _ in entries:
            del self._buffers[(key, w)]
        for m in merged:
            bucket: list[Record] = []
            for w, recs in entries:
                if w.start >= m.start and w.end <= m.end:
                    bucket.extend(recs)
            self._buffers[(key, m)] = bucket

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "buffers": {
                kw: [r.copy() for r in recs] for kw, recs in self._buffers.items()
            },
            "watermark": self._watermark,
            "late": [r.copy() for r in self.late_records],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._buffers = {
            kw: [r.copy() for r in recs] for kw, recs in state["buffers"].items()
        }
        self._watermark = state["watermark"]
        self.late_records = [r.copy() for r in state["late"]]

    def on_watermark(self, watermark: Watermark) -> None:
        self._watermark = watermark.timestamp
        ready = sorted(
            (kw for kw in self._buffers if kw[1].end - 1 <= watermark.timestamp),
            key=lambda kw: (kw[1], _key_order(kw[0])),
        )
        for key, window in ready:
            records = self._buffers.pop((key, window))
            self.emit(self._fn(key, window, records))
        self.emit_watermark(watermark)


def _key_order(key: Hashable) -> Any:
    """Deterministic ordering for heterogeneous keys (None sorts first)."""
    return (key is not None, str(key))


def count_window_function(key: Hashable, window: TimeWindow, records: list[Record]) -> Record:
    """A window function producing ``{key, window_start, count}`` records."""
    rec = Record(
        {"key": str(key), "window_start": window.start, "count": len(records)}
    )
    rec.event_time = window.start
    return rec
