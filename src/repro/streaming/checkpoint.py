"""Checkpoint/restore for the stream execution environment.

A checkpoint is a consistent snapshot taken between two source records: the
push-based engine is synchronous and depth-first, so once a record has fully
traversed the DAG every operator is quiescent and its state — keyed state,
window buffers, stateful error-function memory, sink contents — fully
describes the run so far. The snapshot records:

* **source position** — which source is being drained and how many of its
  records have been consumed (earlier sources are complete, including their
  end-of-stream watermark, and live on only through operator/sink state);
* **node state** — ``snapshot_state()`` of every node that has any, keyed by
  node name (topologies are rebuilt deterministically, so names line up);
* **watermark bookkeeping** — the auto-watermark high-water mark and, if the
  source has an explicit strategy, its generator state.

``StreamExecutionEnvironment.execute(resume_from=...)`` rebuilds the run
from such a snapshot: node state is restored by name, already-drained
sources are skipped, and the current source is re-iterated from its offset.
Sources must therefore be re-iterable and deterministic (every built-in
source is).

Checkpoints serialize with :mod:`pickle` via :class:`CheckpointStore`; the
on-disk format is one ``chk-<seq>.ckpt`` pickle per snapshot plus the
in-memory :class:`Checkpoint` dataclass as the schema.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError

CHECKPOINT_SUFFIX = ".ckpt"
#: Bump when the Checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """A consistent snapshot of an executing environment."""

    source_index: int
    offset: int
    records_seen: int
    auto_watermark: int | None = None
    generator_state: Any | None = None
    node_state: dict[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_FORMAT_VERSION

    def describe(self) -> str:
        return (
            f"checkpoint(source={self.source_index}, offset={self.offset}, "
            f"records_seen={self.records_seen}, "
            f"stateful_nodes={sorted(self.node_state)})"
        )


@dataclass(frozen=True)
class CheckpointConfig:
    """When and where checkpoints are taken.

    ``interval`` is in source records; ``store`` (optional) persists every
    snapshot to disk. Without a store, snapshots are only kept in memory on
    the environment (``env.last_checkpoint``).
    """

    interval: int
    store: "CheckpointStore | None" = None

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1 record, got {self.interval}"
            )


class CheckpointStore:
    """Directory-backed checkpoint persistence.

    Keeps the ``keep`` most recent snapshots (older ones are pruned), so a
    long run cannot fill the disk with history it will never restore.
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"must keep at least 1 checkpoint, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep
        existing = self._paths()
        self._seq = self._seq_of(existing[-1]) + 1 if existing else 0

    def _paths(self) -> list[Path]:
        return sorted(self.directory.glob(f"chk-*{CHECKPOINT_SUFFIX}"))

    @staticmethod
    def _seq_of(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint filename {path.name!r}") from exc

    def save(self, checkpoint: Checkpoint) -> Path:
        path = self.directory / f"chk-{self._seq:06d}{CHECKPOINT_SUFFIX}"
        self._seq += 1
        try:
            with open(path, "wb") as f:
                pickle.dump(checkpoint, f, protocol=pickle.HIGHEST_PROTOCOL)
        except (OSError, pickle.PicklingError) as exc:
            raise CheckpointError(f"could not write checkpoint {path}: {exc}") from exc
        for stale in self._paths()[: -self._keep]:
            stale.unlink(missing_ok=True)
        return path

    def latest_path(self) -> Path | None:
        paths = self._paths()
        return paths[-1] if paths else None

    def load_latest(self) -> Checkpoint | None:
        path = self.latest_path()
        return None if path is None else load_checkpoint(path)

    def __len__(self) -> int:
        return len(self._paths())


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load one checkpoint file, validating its format version."""
    try:
        with open(path, "rb") as f:
            checkpoint = pickle.load(f)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(f"could not read checkpoint {path}: {exc}") from exc
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointError(f"{path} does not contain a Checkpoint")
    if checkpoint.version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {checkpoint.version}, "
            f"this runtime reads version {CHECKPOINT_FORMAT_VERSION}"
        )
    return checkpoint
