"""Checkpoint/restore for the stream execution environment.

A checkpoint is a consistent snapshot taken between two source records: the
push-based engine is synchronous and depth-first, so once a record has fully
traversed the DAG every operator is quiescent and its state — keyed state,
window buffers, stateful error-function memory, sink contents — fully
describes the run so far. The snapshot records:

* **source position** — which source is being drained and how many of its
  records have been consumed (earlier sources are complete, including their
  end-of-stream watermark, and live on only through operator/sink state);
* **node state** — ``snapshot_state()`` of every node that has any, keyed by
  node name (topologies are rebuilt deterministically, so names line up);
* **watermark bookkeeping** — the auto-watermark high-water mark and, if the
  source has an explicit strategy, its generator state.

``StreamExecutionEnvironment.execute(resume_from=...)`` rebuilds the run
from such a snapshot: node state is restored by name, already-drained
sources are skipped, and the current source is re-iterated from its offset.
Sources must therefore be re-iterable and deterministic (every built-in
source is).

Checkpoints serialize with :mod:`pickle` via :class:`CheckpointStore`; the
on-disk format is one ``chk-<seq>.ckpt`` file per snapshot: an 8-byte magic
marker, the SHA-256 hex digest of the payload, then the pickled
:class:`Checkpoint`. The digest lets a restore distinguish "checkpoint was
half-written when the worker died" from "checkpoint is fine" — crucial for
the self-healing parallel runtime, which falls back to the previous snapshot
when the newest one is torn. Headerless files written by older releases are
still read (without integrity verification).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError

CHECKPOINT_SUFFIX = ".ckpt"
#: Bump when the Checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1
#: Leading marker of digest-framed checkpoint files (8 bytes).
CHECKPOINT_MAGIC = b"ICEWAFL\x01"
_DIGEST_LEN = 64  # sha256 hexdigest, ascii


@dataclass
class Checkpoint:
    """A consistent snapshot of an executing environment."""

    source_index: int
    offset: int
    records_seen: int
    auto_watermark: int | None = None
    generator_state: Any | None = None
    node_state: dict[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_FORMAT_VERSION

    def describe(self) -> str:
        return (
            f"checkpoint(source={self.source_index}, offset={self.offset}, "
            f"records_seen={self.records_seen}, "
            f"stateful_nodes={sorted(self.node_state)})"
        )


@dataclass(frozen=True)
class CheckpointConfig:
    """When and where checkpoints are taken.

    ``interval`` is in source records; ``store`` (optional) persists every
    snapshot to disk. Without a store, snapshots are only kept in memory on
    the environment (``env.last_checkpoint``).
    """

    interval: int
    store: "CheckpointStore | None" = None

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1 record, got {self.interval}"
            )


class CheckpointStore:
    """Directory-backed checkpoint persistence.

    Keeps the ``keep`` most recent snapshots (older ones are pruned), so a
    long run cannot fill the disk with history it will never restore.
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"must keep at least 1 checkpoint, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep
        existing = self._paths()
        self._seq = self._seq_of(existing[-1]) + 1 if existing else 0

    def _paths(self) -> list[Path]:
        return sorted(self.directory.glob(f"chk-*{CHECKPOINT_SUFFIX}"))

    @staticmethod
    def _seq_of(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint filename {path.name!r}") from exc

    def save(self, checkpoint: Checkpoint) -> Path:
        path = self.directory / f"chk-{self._seq:06d}{CHECKPOINT_SUFFIX}"
        self._seq += 1
        try:
            payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest().encode("ascii")
            with open(path, "wb") as f:
                f.write(CHECKPOINT_MAGIC + digest + payload)
        except (OSError, pickle.PicklingError) as exc:
            raise CheckpointError(f"could not write checkpoint {path}: {exc}") from exc
        for stale in self._paths()[: -self._keep]:
            stale.unlink(missing_ok=True)
        return path

    def latest_path(self) -> Path | None:
        paths = self._paths()
        return paths[-1] if paths else None

    def load_latest(self) -> Checkpoint | None:
        path = self.latest_path()
        return None if path is None else load_checkpoint(path)

    def __len__(self) -> int:
        return len(self._paths())


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load one checkpoint file, verifying its digest and format version.

    Digest-framed files (the current format) are rejected with a
    :class:`CheckpointError` naming the file when truncated or corrupted;
    headerless legacy pickles are parsed without verification.
    """
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as exc:
        raise CheckpointError(f"could not read checkpoint {path}: {exc}") from exc
    if raw.startswith(CHECKPOINT_MAGIC):
        header_len = len(CHECKPOINT_MAGIC) + _DIGEST_LEN
        if len(raw) < header_len:
            raise CheckpointError(
                f"checkpoint {path} is truncated: missing integrity header"
            )
        expected = raw[len(CHECKPOINT_MAGIC) : header_len].decode("ascii", "replace")
        payload = raw[header_len:]
        actual = hashlib.sha256(payload).hexdigest()
        if actual != expected:
            raise CheckpointError(
                f"checkpoint {path} failed integrity verification: "
                f"SHA-256 digest mismatch (file is truncated or corrupted)"
            )
    else:
        payload = raw  # legacy headerless pickle
    try:
        checkpoint = pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError,
            TypeError, IndexError, MemoryError) as exc:
        raise CheckpointError(f"could not read checkpoint {path}: {exc}") from exc
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointError(f"{path} does not contain a Checkpoint")
    if checkpoint.version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {checkpoint.version}, "
            f"this runtime reads version {CHECKPOINT_FORMAT_VERSION}"
        )
    return checkpoint


def latest_valid_checkpoint(directory: str | Path) -> Path | None:
    """Newest checkpoint in *directory* that passes integrity verification.

    Used by shard recovery: a worker killed mid-``save`` leaves a torn file
    behind, and the respawned shard must restore from the previous snapshot
    rather than refuse to start. Returns ``None`` when no readable
    checkpoint exists (the shard restarts from scratch).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    for path in sorted(directory.glob(f"chk-*{CHECKPOINT_SUFFIX}"), reverse=True):
        try:
            load_checkpoint(path)
        except CheckpointError:
            continue
        return path
    return None
