"""Watermarks: the engine's notion of event-time progress.

A watermark ``W(t)`` asserts that no further record with event time ``<= t``
will arrive. Operators that buffer by event time (windows, the event-time
sorter used by Algorithm 1's output step) flush state when the watermark
passes. The delayed-tuple error type (§3.1.3) produces out-of-order streams,
so downstream consumers of a polluted stream genuinely need bounded
out-of-orderness handling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streaming.time import Duration


@dataclass(frozen=True, slots=True, order=True)
class Watermark:
    """An event-time watermark. ``timestamp`` is epoch seconds."""

    timestamp: int

    @staticmethod
    def min() -> "Watermark":
        return Watermark(-(2**62))

    @staticmethod
    def max() -> "Watermark":
        """The end-of-stream watermark: flushes all remaining buffered state."""
        return Watermark(2**62)


class WatermarkGenerator:
    """Base class for watermark strategies."""

    def on_event(self, event_time: int) -> Watermark | None:
        """Observe a record's event time; optionally emit a new watermark."""
        raise NotImplementedError

    def snapshot_state(self):
        """Serializable generator state for checkpointing (``None`` = stateless)."""
        return None

    def restore_state(self, state) -> None:
        """Restore state produced by :meth:`snapshot_state`."""


class BoundedOutOfOrdernessWatermarks(WatermarkGenerator):
    """Watermarks lagging the max seen event time by a fixed bound.

    With bound ``B``, after seeing event time ``t`` the generator knows that
    (assuming at most ``B`` seconds of disorder) everything at or before
    ``t - B`` has arrived. This matches Flink's strategy of the same name and
    tolerates exactly the kind of disorder Icewafl's delay polluter creates.
    """

    def __init__(self, max_out_of_orderness: Duration) -> None:
        if max_out_of_orderness.seconds < 0:
            raise ValueError("out-of-orderness bound must be non-negative")
        self._bound = max_out_of_orderness.seconds
        self._max_seen: int | None = None
        self._last_emitted: int | None = None

    def on_event(self, event_time: int) -> Watermark | None:
        if self._max_seen is None or event_time > self._max_seen:
            self._max_seen = event_time
        candidate = self._max_seen - self._bound
        if self._last_emitted is None or candidate > self._last_emitted:
            self._last_emitted = candidate
            return Watermark(candidate)
        return None

    def snapshot_state(self):
        return {"max_seen": self._max_seen, "last_emitted": self._last_emitted}

    def restore_state(self, state) -> None:
        self._max_seen = state["max_seen"]
        self._last_emitted = state["last_emitted"]


class MonotonousWatermarks(BoundedOutOfOrdernessWatermarks):
    """Watermarks for perfectly ordered streams (zero out-of-orderness)."""

    def __init__(self) -> None:
        super().__init__(Duration.of_seconds(0))
