"""The execution-plan IR: requests, stages, decisions, and the plan itself.

A :class:`PlanRequest` is the *live* input — the pipelines, schema, policy
objects, and telemetry hooks an entry point holds. :func:`~repro.plan.compile_plan`
normalizes it into an :class:`ExecutionPlan`: the final engine choice, the
typed :class:`PlanStage` topology that engine will build, and one
:class:`PlanDecision` per planner branch taken, each with a stable
machine-readable slug. ``ExecutionPlan.to_dict`` is pure JSON-able data —
live objects are summarized, never embedded — so plans can be golden-
snapshotted and diffed across revisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.check.factbase import PlanFactBase
    from repro.parallel.shard import ShardTask

#: Bump when the JSON layout of :meth:`ExecutionPlan.to_dict` changes
#: incompatibly (golden plan snapshots pin the whole document).
PLAN_FORMAT_VERSION = 1

# -- engine identifiers -------------------------------------------------------
# One constant per executable engine configuration. The split between e.g.
# "stream" and "stream-batch" is deliberate: slab dispatch is a semantic
# commitment (kernel compilation, slab rollback under supervision), not a
# tuning detail, so the planner names it explicitly instead of leaving it
# to a runtime flag.

ENGINE_DIRECT = "direct"
ENGINE_DIRECT_BATCH = "direct-batch"
ENGINE_STREAM = "stream"
ENGINE_STREAM_BATCH = "stream-batch"
ENGINE_KEYED_DIRECT = "keyed-direct"
ENGINE_PARALLEL = "parallel"
ENGINE_SHARD_STREAM = "shard-stream"
ENGINE_SHARD_STREAM_BATCH = "shard-stream-batch"
ENGINE_SHARD_KEYED = "shard-keyed"

ENGINES = (
    ENGINE_DIRECT,
    ENGINE_DIRECT_BATCH,
    ENGINE_STREAM,
    ENGINE_STREAM_BATCH,
    ENGINE_KEYED_DIRECT,
    ENGINE_PARALLEL,
    ENGINE_SHARD_STREAM,
    ENGINE_SHARD_STREAM_BATCH,
    ENGINE_SHARD_KEYED,
)

#: Engines that run inside a shard worker process.
SHARD_ENGINES = (ENGINE_SHARD_STREAM, ENGINE_SHARD_STREAM_BATCH, ENGINE_SHARD_KEYED)


@dataclass(frozen=True)
class PlanDecision:
    """One planner branch taken, as machine-readable evidence.

    ``slug`` is stable across releases (tests and golden snapshots key on
    it); ``detail`` is the human sentence ``repro plan`` and
    ``repro check --explain`` print.
    """

    slug: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {"slug": self.slug, "detail": self.detail}


@dataclass(frozen=True)
class PlanStage:
    """One typed stage of the compiled topology.

    ``kind`` names the operator family (``source``, ``prepare``, ``split``,
    ``pollute``, ``integrate``, ``sort``, ``partition``, ``shard``,
    ``merge``, ...); ``params`` carries the JSON-able stage configuration.
    """

    kind: str
    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "params": dict(self.params)}


@dataclass
class PlanRequest:
    """Everything an entry point knows about the run it wants.

    Field names and defaults mirror :func:`repro.core.runner.pollute`
    (plus the parallel coordinator's transport knobs), so every entry point
    builds a request by forwarding its own signature. Live objects —
    pipelines, policies, metrics registries, renderers — ride along
    untouched; the compiler only reads them.
    """

    pipelines: Any = None
    schema: Any = None
    split: Any = None
    seed: int | None = None
    log: bool = True
    #: The caller's engine *hint* (``"direct"`` | ``"stream"``); the
    #: compiled plan's engine may escalate it and never downgrades it.
    engine: str = "direct"
    failure_policy: Any = None
    checkpoint_dir: Any = None
    checkpoint_interval: int = 100
    resume_from: Any = None
    metrics: Any = None
    tracer: Any = None
    parallelism: int | None = None
    key_by: Any = None
    pipeline_factory: Any = None
    mp_context: Any = None
    batch_size: int | None = None
    max_shard_restarts: int = 2
    heartbeat_timeout: float | None = 30.0
    profile: bool = False
    #: A pre-built live :class:`~repro.obs.profile.Profiler` — entry points
    #: that profile work *before* compilation (the parallel coordinator's
    #: pre-flight phase) pass theirs so the executor extends it.
    profiler: Any = None
    ledger: Any = None
    progress: Any = False
    telemetry: Any = None
    chunk_size: int = 256
    queue_depth: int = 8
    #: Set for worker-side compilation: the shard's complete picklable plan.
    shard_task: Any = None

    @classmethod
    def for_shard(cls, task: "ShardTask") -> "PlanRequest":
        """The request a shard worker compiles from its :class:`ShardTask`."""
        return cls(
            pipelines=task.pipelines,
            schema=task.schema,
            split=task.split,
            seed=task.seed,
            log=task.log,
            failure_policy=task.failure_policy,
            checkpoint_dir=task.checkpoint_dir,
            checkpoint_interval=task.checkpoint_interval,
            resume_from=task.resume_path,
            key_by=task.key_selector,
            pipeline_factory=task.pipeline_factory,
            batch_size=task.batch_size,
            profile=task.profile,
            chunk_size=task.chunk_size,
            shard_task=task,
        )

    @property
    def metered(self) -> bool:
        return self.metrics is not None and getattr(self.metrics, "enabled", False)

    @property
    def supervised(self) -> bool:
        return self.failure_policy is not None

    @property
    def batched(self) -> bool:
        return self.batch_size is not None and self.batch_size > 1


def _describe_policy(policy: Any) -> str | None:
    if policy is None:
        return None
    describe = getattr(policy, "describe", None)
    return describe() if callable(describe) else repr(policy)


def _describe_key_by(key_by: Any) -> str | None:
    if key_by is None:
        return None
    if isinstance(key_by, str):
        return key_by
    attribute = getattr(key_by, "attribute", None)
    return attribute if isinstance(attribute, str) else f"<{type(key_by).__name__}>"


@dataclass
class ExecutionPlan:
    """The compiled form of one run: engine, topology, and justification.

    Built only by :func:`~repro.plan.compile_plan`. Normalized fields
    (``pipelines`` as a list, the effective ``strategy`` / ``key_selector``
    / ``pipeline_factory``) are what the executors consume — they never
    re-derive them from the request, so a mode decision exists in exactly
    one place.
    """

    engine: str
    request: PlanRequest
    stages: tuple[PlanStage, ...]
    decisions: tuple[PlanDecision, ...]
    #: Normalized pipeline list (``None`` for keyed plans, which carry a
    #: factory instead).
    pipelines: list | None = None
    #: The effective split strategy (``None`` for keyed plans).
    strategy: Any = None
    #: The effective key selector (keyed plans only).
    key_selector: Any = None
    #: The effective per-key pipeline factory (keyed plans only).
    pipeline_factory: Any = None
    #: Static plan facts, one :class:`PlanFactBase` per pipeline (empty when
    #: fact analysis was unavailable for the plan's components).
    facts: tuple["PlanFactBase", ...] = ()
    #: Shard plans only: whether the output sink must retain records
    #: in-process (checkpointing, resume, or supervised batching).
    shard_retain: bool = False

    @property
    def batched(self) -> bool:
        return self.engine in (
            ENGINE_DIRECT_BATCH,
            ENGINE_STREAM_BATCH,
            ENGINE_SHARD_STREAM_BATCH,
        )

    @property
    def keyed(self) -> bool:
        return self.engine in (ENGINE_KEYED_DIRECT, ENGINE_SHARD_KEYED) or (
            self.engine == ENGINE_PARALLEL and self.request.key_by is not None
        )

    @property
    def supervised(self) -> bool:
        return self.request.failure_policy is not None

    def decision(self, slug: str) -> PlanDecision | None:
        """The decision with this slug, or ``None`` when the branch was not taken."""
        for decision in self.decisions:
            if decision.slug == slug:
                return decision
        return None

    @property
    def decision_slugs(self) -> tuple[str, ...]:
        return tuple(decision.slug for decision in self.decisions)

    # -- JSON-able views ------------------------------------------------------

    def options_dict(self) -> dict[str, Any]:
        """The request's run-shaping options as plain data (no live objects)."""
        request = self.request
        split = self.strategy
        resume = None
        if request.resume_from is not None:
            from pathlib import Path

            if isinstance(request.resume_from, (str, Path)) and Path(
                request.resume_from
            ).is_dir():
                resume = "parallel-directory"
            else:
                resume = "sequential-checkpoint"
        return {
            "engine_hint": request.engine,
            "seed": request.seed,
            "log": request.log,
            "pipelines": (
                [p.name for p in self.pipelines] if self.pipelines is not None else None
            ),
            "split": (
                {"strategy": type(split).__name__, "m": split.m}
                if split is not None
                else None
            ),
            "key_by": _describe_key_by(request.key_by),
            "batch_size": request.batch_size,
            "parallelism": request.parallelism,
            "failure_policy": _describe_policy(request.failure_policy),
            "checkpointing": request.checkpoint_dir is not None,
            "checkpoint_interval": (
                request.checkpoint_interval
                if request.checkpoint_dir is not None
                else None
            ),
            "resume": resume,
            "metrics": request.metered,
            "tracing": request.tracer is not None,
            "profile": bool(request.profile),
            "ledger": request.ledger is not None,
            "progress": bool(request.progress),
        }

    def facts_dict(self) -> list[dict[str, Any]]:
        """Plan-level facts plus each polluter's kernel verdict, as data."""
        out = []
        for base in self.facts:
            out.append(
                {
                    "pipeline": base.name,
                    "digest": base.digest,
                    "sort_stable": base.sort_stable,
                    "stateful": base.stateful,
                    "stochastic": base.stochastic,
                    "deterministically_mergeable": base.deterministically_mergeable,
                    "kernels": [
                        {
                            "polluter": pf.name,
                            "kind": pf.kernel.kind,
                            "reason": pf.kernel.reason,
                        }
                        for pf in base.polluters
                    ],
                }
            )
        return out

    def to_dict(self) -> dict[str, Any]:
        """The whole plan as JSON-able data (``repro plan --format json``)."""
        return {
            "version": PLAN_FORMAT_VERSION,
            "engine": self.engine,
            "batched": self.batched,
            "keyed": self.keyed,
            "supervised": self.supervised,
            "options": self.options_dict(),
            "decisions": [d.to_dict() for d in self.decisions],
            "stages": [s.to_dict() for s in self.stages],
            "facts": self.facts_dict(),
        }

    def render_text(self) -> str:
        """The human-readable plan dump (``repro plan``, default format)."""
        lines = [f"execution plan: engine={self.engine}"]
        options = self.options_dict()
        shown = {
            key: value
            for key, value in options.items()
            if value not in (None, False) and key != "pipelines"
        }
        if options["pipelines"]:
            names = ", ".join(options["pipelines"])
            lines.append(f"  pipelines: {names}")
        if shown:
            rendered = "  ".join(f"{key}={value}" for key, value in shown.items())
            lines.append(f"  options: {rendered}")
        lines.append("  stages:")
        for index, stage in enumerate(self.stages, 1):
            params = ", ".join(f"{k}={v}" for k, v in stage.params.items())
            suffix = f"  ({params})" if params else ""
            lines.append(f"    {index}. {stage.kind:<12} {stage.name}{suffix}")
        lines.append("  decisions:")
        for decision in self.decisions:
            lines.append(f"    - {decision.slug}")
            lines.append(f"        {decision.detail}")
        for entry in self.facts_dict():
            digest = (entry["digest"] or "<non-declarative>")[:12]
            lines.append(
                f"  facts: pipeline {entry['pipeline']!r}  digest={digest}  "
                f"sort_stable={'yes' if entry['sort_stable'] else 'no'}  "
                f"mergeable={'yes' if entry['deterministically_mergeable'] else 'no'}"
            )
            for kernel in entry["kernels"]:
                lines.append(
                    f"      kernel {kernel['polluter']!r}: {kernel['kind']} "
                    f"[{kernel['reason']}]"
                )
        return "\n".join(lines)
