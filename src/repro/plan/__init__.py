"""``repro.plan`` — the execution-plan IR every run compiles through.

The reproduction grew three execution paths — the per-record reference
loop, the :mod:`repro.batch` micro-batch kernels, and the
:mod:`repro.parallel` shard runtime — and every mode knob (batching,
parallelism, keying, supervision, checkpointing, telemetry) used to be
wired into each entry point separately. This package is the single
decision point: :func:`compile_plan` turns a :class:`PlanRequest` (a
pollution plan plus every option an entry point accepts) into one
:class:`ExecutionPlan` — typed stages, an explicit engine choice, and
machine-readable :class:`PlanDecision` reasons justified by the static
:class:`~repro.check.factbase.PlanFactBase` facts — and
:func:`execute_plan` dispatches it to the engine runtimes.

All five entry points route through here: :func:`repro.core.runner.pollute`,
:func:`repro.parallel.runner.pollute_parallel`, the CLI (``repro pollute``
and the ``repro plan`` inspector), the worker-side
:class:`~repro.parallel.shard.ShardTask` execution, and ``repro.serve``
job execution. Compilation is pure — no records flow, no RNG draws — so a
plan can be compiled, inspected, snapshotted as JSON, and diffed without
running anything; ``repro plan`` and the golden plan snapshots under
``examples/configs/golden/`` do exactly that.
"""

from repro.plan.compile import compile_plan
from repro.plan.execute import execute_plan
from repro.plan.ir import (
    ENGINE_DIRECT,
    ENGINE_DIRECT_BATCH,
    ENGINE_KEYED_DIRECT,
    ENGINE_PARALLEL,
    ENGINE_SHARD_KEYED,
    ENGINE_SHARD_STREAM,
    ENGINE_SHARD_STREAM_BATCH,
    ENGINE_STREAM,
    ENGINE_STREAM_BATCH,
    ENGINES,
    PLAN_FORMAT_VERSION,
    ExecutionPlan,
    PlanDecision,
    PlanRequest,
    PlanStage,
)

__all__ = [
    "ENGINE_DIRECT",
    "ENGINE_DIRECT_BATCH",
    "ENGINE_KEYED_DIRECT",
    "ENGINE_PARALLEL",
    "ENGINE_SHARD_KEYED",
    "ENGINE_SHARD_STREAM",
    "ENGINE_SHARD_STREAM_BATCH",
    "ENGINE_STREAM",
    "ENGINE_STREAM_BATCH",
    "ENGINES",
    "PLAN_FORMAT_VERSION",
    "ExecutionPlan",
    "PlanDecision",
    "PlanRequest",
    "PlanStage",
    "compile_plan",
    "execute_plan",
]
