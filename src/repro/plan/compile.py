"""``compile_plan``: one request in, one justified execution plan out.

This module is the *only* place a mode combination is decided. Every
validation rule and engine-forcing branch that used to live inline in
``pollute()``, ``pollute_parallel()``, the keyed runner, and the shard
worker moved here; the executors consume the plan's normalized fields and
never re-derive a decision. Each branch taken emits a
:class:`~repro.plan.ir.PlanDecision` with a stable slug, so
``repro plan`` / ``repro check --explain`` can show *why* a run landed on
an engine and tests can pin the decision table.

Compilation is pure: no records flow, no RNG is drawn, no directory is
created. Filesystem probes are limited to classifying a ``resume_from``
path (file vs parallel checkpoint directory), mirroring what the previous
inline validation did.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.keyed_pollution import FreshPipelineFactory
from repro.core.pipeline import PollutionPipeline
from repro.errors import PollutionError
from repro.plan.ir import (
    ENGINE_DIRECT,
    ENGINE_DIRECT_BATCH,
    ENGINE_KEYED_DIRECT,
    ENGINE_PARALLEL,
    ENGINE_SHARD_KEYED,
    ENGINE_SHARD_STREAM,
    ENGINE_SHARD_STREAM_BATCH,
    ENGINE_STREAM,
    ENGINE_STREAM_BATCH,
    ExecutionPlan,
    PlanDecision,
    PlanRequest,
    PlanStage,
    _describe_policy,
)
from repro.streaming.checkpoint import Checkpoint, CheckpointStore
from repro.streaming.partition import AttributeKeySelector
from repro.streaming.split import Broadcast


def compile_plan(request: PlanRequest) -> ExecutionPlan:
    """Compile a :class:`PlanRequest` into an :class:`ExecutionPlan`.

    Raises :class:`~repro.errors.PollutionError` for every option
    combination the runtimes cannot honour — with the same messages the
    entry points raised before the planner existed.
    """
    if request.shard_task is not None:
        return _compile_shard(request)
    if request.batch_size is not None and request.batch_size < 1:
        raise PollutionError(f"batch_size must be >= 1, got {request.batch_size}")
    if request.parallelism is not None:
        return _compile_parallel(request)
    if (
        isinstance(request.resume_from, (str, Path))
        and Path(request.resume_from).is_dir()
    ):
        raise PollutionError(
            f"{request.resume_from} is a parallel checkpoint directory; pass "
            "parallelism=N (matching the original run) to resume it"
        )
    if request.key_by is not None:
        return _compile_keyed(request)
    return _compile_sequential(request)


# ---------------------------------------------------------------------------
# Shared normalization
# ---------------------------------------------------------------------------


def _normalize_pipelines(pipelines: Any) -> list[PollutionPipeline]:
    if pipelines is None:
        raise PollutionError("need at least one pollution pipeline")
    if isinstance(pipelines, PollutionPipeline):
        pipelines = [pipelines]
    pipelines = list(pipelines)
    if not pipelines:
        raise PollutionError("need at least one pollution pipeline")
    names = [p.name for p in pipelines]
    if len(set(names)) != len(names):
        raise PollutionError(f"pipelines need distinct names, got {names}")
    return pipelines


def _normalize_strategy(split: Any, pipelines: list[PollutionPipeline]) -> Any:
    m = len(pipelines)
    strategy = split or Broadcast(m)
    if strategy.m != m:
        raise PollutionError(
            f"split strategy routes to {strategy.m} sub-streams but "
            f"{m} pipelines were given"
        )
    return strategy


def _normalize_keyed(request: PlanRequest) -> tuple[Any, Any]:
    """The (key_selector, pipeline_factory) pair of a keyed plan."""
    key_by = request.key_by
    key_selector = AttributeKeySelector(key_by) if isinstance(key_by, str) else key_by
    pipeline_factory = request.pipeline_factory
    pipelines = request.pipelines
    if pipeline_factory is None:
        if isinstance(pipelines, PollutionPipeline):
            pipeline_factory = FreshPipelineFactory(pipelines)
        elif pipelines is not None and len(list(pipelines)) == 1:
            pipeline_factory = FreshPipelineFactory(list(pipelines)[0])
        else:
            raise PollutionError(
                "keyed pollution needs a pipeline_factory or exactly one "
                "template pipeline"
            )
    elif pipelines is not None:
        raise PollutionError(
            "pass either pipelines or pipeline_factory for a keyed run, not both"
        )
    return key_selector, pipeline_factory


def _facts_for(targets: list[PollutionPipeline]) -> tuple[Any, ...]:
    """Static plan facts per pipeline; advisory, so failures yield no facts."""
    from repro.check.factbase import factbase_for

    out = []
    for pipeline in targets:
        try:
            out.append(factbase_for(pipeline))
        except Exception:  # noqa: BLE001 - facts inform, they must not block
            return ()
    return tuple(out)


def _fact_targets(
    pipelines: list[PollutionPipeline] | None, pipeline_factory: Any
) -> list[PollutionPipeline]:
    if pipelines is not None:
        return pipelines
    template = getattr(pipeline_factory, "_template", None)
    return [template] if isinstance(template, PollutionPipeline) else []


def _kernel_decisions(
    facts: tuple[Any, ...], decisions: list[PlanDecision], *, context: str
) -> None:
    """Batched plans: say whether the kernels vectorize, citing the facts."""
    if not facts:
        return
    fallbacks = [pf for base in facts for pf in base.fallbacks]
    if fallbacks:
        names = ", ".join(sorted({pf.name for pf in fallbacks}))
        decisions.append(
            PlanDecision(
                "batch-kernels-fallback",
                f"{len(fallbacks)} polluter(s) compile to the per-row "
                f"FallbackKernel ({names}); {context} still moves records in "
                "slabs, semantics are unchanged",
            )
        )
    else:
        decisions.append(
            PlanDecision(
                "batch-kernels-vectorized",
                f"every polluter compiles to a standard batch kernel; "
                f"{context} executes fused mask + fired kernels per slab",
            )
        )


# ---------------------------------------------------------------------------
# Sequential (direct / stream, per-record / batched)
# ---------------------------------------------------------------------------


def _compile_sequential(request: PlanRequest) -> ExecutionPlan:
    if request.pipeline_factory is not None:
        raise PollutionError("pipeline_factory requires key_by")
    pipelines = _normalize_pipelines(request.pipelines)
    if request.engine not in ("direct", "stream"):
        raise PollutionError(
            f"unknown engine {request.engine!r}; use 'direct' or 'stream'"
        )
    strategy = _normalize_strategy(request.split, pipelines)

    decisions: list[PlanDecision] = []
    engine = request.engine
    if request.failure_policy is not None:
        engine = "stream"
        decisions.append(
            PlanDecision(
                "supervision-requires-stream",
                "a failure policy supervises every operator of the stream "
                "topology; supervision lives in the stream engine",
            )
        )
    if request.checkpoint_dir is not None:
        engine = "stream"
        decisions.append(
            PlanDecision(
                "checkpointing-requires-stream",
                "periodic state snapshots are cut at the stream engine's "
                "checkpoint barriers",
            )
        )
    if request.resume_from is not None:
        engine = "stream"
        decisions.append(
            PlanDecision(
                "resume-requires-stream",
                "resuming replays the checkpointed offset through the stream "
                "engine's restore path",
            )
        )
    if request.metered:
        engine = "stream"
        decisions.append(
            PlanDecision(
                "metrics-require-stream",
                "an enabled metrics registry needs per-node counters, which "
                "only the stream engine's operators maintain",
            )
        )
    if request.tracer is not None:
        engine = "stream"
        decisions.append(
            PlanDecision(
                "tracing-requires-stream",
                "span records cover node lifecycle, checkpoint, and "
                "supervision events of the stream engine",
            )
        )
    if request.profile or request.ledger is not None or bool(request.progress):
        engine = "stream"
        decisions.append(
            PlanDecision(
                "telemetry-requires-stream",
                "profiling, run-ledger, and progress hooks are emitted by the "
                "stream engine; output bytes are unchanged",
            )
        )
    if engine == "stream" and request.engine == "stream" and not decisions:
        decisions.append(
            PlanDecision(
                "engine-stream-requested",
                "engine='stream' was requested explicitly; output is "
                "byte-identical to the direct engine",
            )
        )

    if request.batched:
        final = ENGINE_DIRECT_BATCH if engine == "direct" else ENGINE_STREAM_BATCH
        decisions.append(
            PlanDecision(
                "batch-kernels",
                f"batch_size={request.batch_size} moves records in slabs and "
                "executes the polluter chains as compiled batch kernels with "
                "bulk RNG draws; output is byte-identical to per-record",
            )
        )
        if request.failure_policy is not None:
            decisions.append(
                PlanDecision(
                    "supervised-batching-composes",
                    "supervision composes with batching: slabs execute whole, "
                    "and a failed slab rolls back and replays per-record so "
                    "only the poison record is skipped, retried, or "
                    "dead-lettered — supervised runs no longer drop to "
                    "per-record dispatch",
                )
            )
    else:
        final = ENGINE_DIRECT if engine == "direct" else ENGINE_STREAM
        if final == ENGINE_DIRECT:
            decisions.append(
                PlanDecision(
                    "engine-direct-default",
                    "no option requires the stream engine; the per-record "
                    "direct loop is the reference semantics and the fastest "
                    "unbatched path",
                )
            )

    facts = _facts_for(pipelines)
    if request.batched:
        _kernel_decisions(facts, decisions, context="the sequential engine")

    stages = _sequential_stages(final, request, pipelines, strategy)
    return ExecutionPlan(
        engine=final,
        request=request,
        stages=tuple(stages),
        decisions=tuple(decisions),
        pipelines=pipelines,
        strategy=strategy,
        facts=facts,
    )


def _sequential_stages(
    engine: str,
    request: PlanRequest,
    pipelines: list[PollutionPipeline],
    strategy: Any,
) -> list[PlanStage]:
    batched = engine in (ENGINE_DIRECT_BATCH, ENGINE_STREAM_BATCH)
    streamed = engine in (ENGINE_STREAM, ENGINE_STREAM_BATCH)
    m = len(pipelines)
    stages = [
        PlanStage("source", "input"),
        PlanStage("prepare", "prepare", {"ids": "global", "event_time": "tau"}),
    ]
    if batched:
        stages.append(PlanStage("batch", "slab", {"batch_size": request.batch_size}))
    if streamed:
        stages.append(PlanStage("tee", "tee-clean"))
    stages.append(
        PlanStage(
            "split", "substreams", {"strategy": type(strategy).__name__, "m": m}
        )
    )
    for index, pipeline in enumerate(pipelines):
        stages.append(
            PlanStage(
                "pollute",
                f"pollute[{index}]",
                {
                    "pipeline": pipeline.name,
                    "dispatch": "batch-kernels" if batched else "per-record",
                },
            )
        )
    if m > 1:
        stages.append(PlanStage("integrate", "integrate", {"kind": "union"}))
    stages.append(PlanStage("sort", "sort", {"order": "event-time", "stable": True}))
    if request.failure_policy is not None:
        stages.append(
            PlanStage(
                "supervise",
                "failure-policy",
                {"policy": _describe_policy(request.failure_policy)},
            )
        )
    if request.checkpoint_dir is not None:
        stages.append(
            PlanStage(
                "checkpoint",
                "checkpoint",
                {"interval": request.checkpoint_interval},
            )
        )
    stages.append(PlanStage("sink", "collect"))
    return stages


# ---------------------------------------------------------------------------
# Sequential keyed
# ---------------------------------------------------------------------------


def _compile_keyed(request: PlanRequest) -> ExecutionPlan:
    if request.split is not None:
        raise PollutionError(
            "key_by and split are mutually exclusive: keyed pollution "
            "partitions by key, not by sub-stream routing"
        )
    if (
        request.failure_policy is not None
        or request.checkpoint_dir is not None
        or request.resume_from is not None
        or request.tracer is not None
    ):
        raise PollutionError(
            "sequential keyed runs do not support supervision, checkpointing, "
            "or tracing; use parallelism=1 to run the keyed plan on the "
            "supervised sharded runtime"
        )
    key_selector, pipeline_factory = _normalize_keyed(request)
    decisions = [
        PlanDecision(
            "keyed-sequential",
            "key_by without parallelism runs the reference keyed loop: one "
            "fresh pipeline instance per key, drawn from per-key named "
            "random streams — the baseline parallel keyed runs are "
            "byte-compared against",
        )
    ]
    if request.batched:
        decisions.append(
            PlanDecision(
                "keyed-batching-per-record",
                f"batch_size={request.batch_size} is ignored for keyed runs: "
                "batch kernels do not cross per-key pipeline instances, so "
                "the keyed loop dispatches per-record (an explicit planner "
                "decision, not a silent fallback)",
            )
        )
    facts = _facts_for(_fact_targets(None, pipeline_factory))
    stages = [
        PlanStage("source", "input"),
        PlanStage("prepare", "prepare", {"ids": "global", "event_time": "tau"}),
        PlanStage(
            "partition",
            "key-by",
            {"kind": "key", "selector": type(key_selector).__name__},
        ),
        PlanStage(
            "pollute",
            "pollute-keyed",
            {
                "factory": type(pipeline_factory).__name__,
                "dispatch": "per-record",
            },
        ),
        PlanStage("sort", "sort", {"order": "event-time", "stable": True}),
        PlanStage("sink", "collect"),
    ]
    return ExecutionPlan(
        engine=ENGINE_KEYED_DIRECT,
        request=request,
        stages=tuple(stages),
        decisions=tuple(decisions),
        key_selector=key_selector,
        pipeline_factory=pipeline_factory,
        facts=facts,
    )


# ---------------------------------------------------------------------------
# Parallel (sharded coordinator)
# ---------------------------------------------------------------------------


def _compile_parallel(request: PlanRequest) -> ExecutionPlan:
    parallelism = request.parallelism or 0
    if parallelism < 1:
        raise PollutionError(f"parallelism must be >= 1, got {parallelism}")
    if request.tracer is not None:
        raise PollutionError(
            "tracing is not supported for parallel runs: spans cannot "
            "cross worker process boundaries; drop tracer or parallelism"
        )
    if isinstance(request.resume_from, Checkpoint):
        raise PollutionError(
            "resume_from is an in-memory sequential checkpoint; a "
            "parallel run resumes from a parallel checkpoint directory "
            "(the checkpoint_dir of a previous parallel run)"
        )
    if isinstance(request.checkpoint_dir, CheckpointStore):
        raise PollutionError(
            "parallel runs manage per-shard checkpoint stores themselves; "
            "pass checkpoint_dir as a directory path, not a CheckpointStore"
        )

    keyed = request.key_by is not None
    decisions = [
        PlanDecision(
            "parallel-sharding",
            f"parallelism={parallelism} partitions the prepared stream "
            f"across {parallelism} worker process(es) and deterministically "
            "merges shard output by event time",
        )
    ]
    pipelines: list[PollutionPipeline] | None = None
    strategy = None
    key_selector = None
    pipeline_factory = None
    if keyed:
        if request.split is not None:
            raise PollutionError(
                "key_by and split are mutually exclusive: keyed pollution "
                "partitions by key, not by sub-stream routing"
            )
        key_selector, pipeline_factory = _normalize_keyed_parallel(request)
        decisions.append(
            PlanDecision(
                "parallel-keyed-byte-identical",
                "keyed plans hash-partition whole keys onto shards that share "
                "the base seed; output is byte-identical to the sequential "
                "keyed run at every worker count",
            )
        )
    else:
        if request.pipeline_factory is not None:
            raise PollutionError("pipeline_factory requires key_by")
        pipelines = _normalize_pipelines(request.pipelines)
        strategy = _normalize_strategy(request.split, pipelines)

    facts = _facts_for(_fact_targets(pipelines, pipeline_factory))
    if not keyed:
        mergeable = bool(facts) and all(
            base.deterministically_mergeable for base in facts
        )
        if mergeable:
            decisions.append(
                PlanDecision(
                    "parallel-unkeyed-mergeable",
                    "the plan is deterministic, multiplicity- and "
                    "timestamp-preserving, and stateless, so the unkeyed "
                    "round-robin run merges byte-identically to sequential",
                )
            )
        else:
            decisions.append(
                PlanDecision(
                    "parallel-unkeyed-seed-reproducible",
                    "unkeyed shards pollute arbitrary record subsets under "
                    "shard-derived seeds; output is reproducible per "
                    "(seed, parallelism) but not invariant across worker "
                    "counts",
                )
            )

    inner = _shard_engine_name(keyed, request.batched)
    if request.batched:
        decisions.append(
            PlanDecision(
                "parallel-shard-batching",
                f"batch_size={request.batch_size} turns on the micro-batching "
                "fast path inside every shard worker; shard output is "
                "byte-identical with or without it",
            )
        )
        _kernel_decisions(facts, decisions, context="each shard worker")
    if request.failure_policy is not None:
        decisions.append(
            PlanDecision(
                "parallel-supervised",
                "the failure policy is enforced inside each shard worker's "
                "stream engine and by the coordinator's restart/degrade "
                "logic for crashed or hung shards",
            )
        )
    if request.checkpoint_dir is not None:
        decisions.append(
            PlanDecision(
                "parallel-checkpointing",
                "the run writes a parallel.json geometry manifest plus one "
                "per-shard checkpoint store; resume restarts each shard from "
                "its latest snapshot",
            )
        )
    if request.resume_from is not None:
        decisions.append(
            PlanDecision(
                "parallel-resume",
                f"resuming from {request.resume_from}: shard checkpoint "
                "paths are resolved against the validated manifest",
            )
        )

    stages = [
        PlanStage("source", "input"),
        PlanStage(
            "prepare",
            "prepare",
            {"ids": "global", "event_time": "tau", "where": "coordinator"},
        ),
        PlanStage(
            "partition",
            "partition",
            {"kind": "key" if keyed else "round-robin", "shards": parallelism},
        ),
        PlanStage(
            "shard",
            "shard[*]",
            {
                "count": parallelism,
                "engine": inner,
                "batch_size": request.batch_size,
                "supervised": request.failure_policy is not None,
                "checkpointing": request.checkpoint_dir is not None,
            },
        ),
        PlanStage("merge", "merge", {"order": "event-time", "kind": "heap"}),
        PlanStage("log-merge", "log-merge", {"order": "record-id"}),
    ]
    return ExecutionPlan(
        engine=ENGINE_PARALLEL,
        request=request,
        stages=tuple(stages),
        decisions=tuple(decisions),
        pipelines=pipelines,
        strategy=strategy,
        key_selector=key_selector,
        pipeline_factory=pipeline_factory,
        facts=facts,
    )


def _normalize_keyed_parallel(request: PlanRequest) -> tuple[Any, Any]:
    """Keyed normalization with the parallel runner's historical wording."""
    try:
        return _normalize_keyed(request)
    except PollutionError as exc:
        if "not both" in str(exc):
            raise PollutionError(
                "pass either pipelines or pipeline_factory for a keyed run, "
                "not both"
            ) from None
        raise


# ---------------------------------------------------------------------------
# Shard worker (compiled inside the worker process from its ShardTask)
# ---------------------------------------------------------------------------


def _shard_engine_name(keyed: bool, batched: bool) -> str:
    if keyed:
        return ENGINE_SHARD_KEYED
    return ENGINE_SHARD_STREAM_BATCH if batched else ENGINE_SHARD_STREAM


def _compile_shard(request: PlanRequest) -> ExecutionPlan:
    task = request.shard_task
    batched = task.batch_size is not None and task.batch_size > 1
    engine = _shard_engine_name(task.keyed, batched)
    decisions: list[PlanDecision] = []
    if task.keyed:
        decisions.append(
            PlanDecision(
                "shard-keyed-base-seed",
                "keyed shards run with the base seed: per-key named random "
                "streams are drawn only on the one shard that owns the key, "
                "which is exactly what makes keyed output shard-invariant",
            )
        )
    else:
        decisions.append(
            PlanDecision(
                "shard-derived-seed",
                f"unkeyed shard {task.shard} derives its seed from "
                f"(seed, n_shards={task.n_shards}, shard={task.shard})",
            )
        )
    if batched:
        decisions.append(
            PlanDecision(
                "shard-batch-kernels",
                f"batch_size={task.batch_size} moves this shard's records in "
                "slabs through compiled batch kernels",
            )
        )
    supervised_batching = task.failure_policy is not None and batched
    retain = (
        task.checkpoint_dir is not None
        or task.resume_path is not None
        or supervised_batching
    )
    if retain:
        causes = []
        if task.checkpoint_dir is not None:
            causes.append("checkpointing")
        if task.resume_path is not None:
            causes.append("resume")
        if supervised_batching:
            causes.append("supervised batching (slab rollback)")
        decisions.append(
            PlanDecision(
                "shard-retains-output",
                "the output sink holds records in-process until close "
                f"({', '.join(causes)} need the emitted prefix available "
                "for snapshots or rollback)",
            )
        )
    else:
        decisions.append(
            PlanDecision(
                "shard-streams-output",
                f"records leave the worker in chunks of {task.chunk_size} as "
                "they are produced, keeping worker memory bounded",
            )
        )

    stages: list[PlanStage] = [
        PlanStage("source", "shard-input", {"transport": "queue"}),
    ]
    if task.keyed:
        stages.append(
            PlanStage(
                "partition",
                "key-by",
                {"kind": "key", "selector": type(task.key_selector).__name__},
            )
        )
        stages.append(
            PlanStage(
                "pollute",
                "pollute-keyed",
                {
                    "factory": type(task.pipeline_factory).__name__,
                    "dispatch": "per-record",
                },
            )
        )
    else:
        pipelines = task.pipelines or []
        stages.append(
            PlanStage(
                "split",
                "substreams",
                {"strategy": type(task.split).__name__, "m": len(pipelines)},
            )
        )
        for index, pipeline in enumerate(pipelines):
            stages.append(
                PlanStage(
                    "pollute",
                    f"pollute[{index}]",
                    {
                        "pipeline": pipeline.name,
                        "dispatch": "batch-kernels" if batched else "per-record",
                    },
                )
            )
        if len(pipelines) > 1:
            stages.append(PlanStage("integrate", "integrate", {"kind": "union"}))
    stages.append(
        PlanStage(
            "sink",
            "shard-output",
            {"retain": retain, "chunk_size": task.chunk_size},
        )
    )
    return ExecutionPlan(
        engine=engine,
        request=request,
        stages=tuple(stages),
        decisions=tuple(decisions),
        pipelines=task.pipelines,
        strategy=task.split,
        key_selector=task.key_selector,
        pipeline_factory=task.pipeline_factory,
        shard_retain=retain,
    )
