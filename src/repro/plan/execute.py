"""``execute_plan``: hand a compiled :class:`ExecutionPlan` to its engine.

The dispatch is a table lookup on ``plan.engine`` — executors live with
their runtimes (``repro.core.runner``, ``repro.parallel.runner``,
``repro.parallel.shard``) and consume the plan's normalized fields
without re-deriving any decision. Imports are lazy: the engines import
``repro.plan`` to compile, so this module must not import them back at
module load.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PollutionError
from repro.plan.ir import (
    ENGINE_DIRECT,
    ENGINE_DIRECT_BATCH,
    ENGINE_KEYED_DIRECT,
    ENGINE_PARALLEL,
    ENGINE_STREAM,
    ENGINE_STREAM_BATCH,
    SHARD_ENGINES,
    ExecutionPlan,
)


def execute_plan(
    plan: ExecutionPlan,
    data: Any = None,
    *,
    in_queue: Any = None,
    out_queue: Any = None,
) -> Any:
    """Run a compiled plan.

    ``data`` is the input source for coordinator-side engines (rows,
    DataSource, path); shard engines instead take the worker's
    ``in_queue``/``out_queue`` pair and return the shard payload dict.
    """
    if plan.engine in SHARD_ENGINES:
        from repro.parallel.shard import _execute_shard_plan

        return _execute_shard_plan(plan, in_queue, out_queue)
    if plan.engine == ENGINE_PARALLEL:
        from repro.parallel.runner import _execute_parallel_plan

        return _execute_parallel_plan(plan, data)
    if plan.engine == ENGINE_KEYED_DIRECT:
        from repro.core.runner import _execute_keyed_plan

        return _execute_keyed_plan(plan, data)
    if plan.engine in (
        ENGINE_DIRECT,
        ENGINE_DIRECT_BATCH,
        ENGINE_STREAM,
        ENGINE_STREAM_BATCH,
    ):
        from repro.core.runner import _execute_sequential_plan

        return _execute_sequential_plan(plan, data)
    raise PollutionError(f"execution plan names unknown engine {plan.engine!r}")
