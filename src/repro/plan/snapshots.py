"""Golden plan snapshots: the planner's behavior over canonical option sets.

``repro plan`` shows one compiled plan; this module compiles a *family*
of plans for a config — one per canonical scenario (batched, supervised,
checkpointed, keyed, parallel, …) — so the planner's engine choices and
decision reasons can be pinned as golden files and diffed in CI.
``scripts/update_plan_golden.py`` writes the snapshots under
``examples/configs/golden/*.plan.json`` and
``tests/plan/test_golden_plans.py`` fails the build when they drift.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.plan.compile import compile_plan
from repro.plan.ir import PLAN_FORMAT_VERSION, PlanRequest
from repro.streaming.schema import DataType, Schema

#: Scenario name → extra ``PlanRequest`` fields. Everything here must be
#: pure planner input: snapshots are compiled, never executed, so no
#: checkpoint directory is created and no worker is spawned.
SCENARIOS: tuple[tuple[str, Mapping[str, Any]], ...] = (
    ("default", {}),
    ("stream", {"engine": "stream"}),
    ("batched-256", {"batch_size": 256}),
    ("supervised-retry-batched-256", {"on_error": "retry", "batch_size": 256}),
    ("checkpointed", {"checkpoint_dir": "chk", "checkpoint_interval": 50}),
    ("keyed", {"key_by": True}),
    ("parallel-4", {"parallelism": 4}),
    (
        "parallel-4-keyed-batched-64",
        {"parallelism": 4, "key_by": True, "batch_size": 64},
    ),
)

_SEED = 7  # matches the golden `repro check` seed


def _key_attribute(schema: Schema) -> str | None:
    """The partitioning attribute keyed scenarios use: the first string
    attribute of the schema (stable, human-meaningful), if any."""
    for attribute in schema.attributes:
        if attribute.dtype is DataType.STRING:
            return attribute.name
    return None


def snapshot_plans(
    config: Mapping[str, Any], schema: Schema, *, build=None
) -> dict[str, Any]:
    """Compile every scenario for this config and return the snapshot dict.

    ``build`` converts the config spec into pipelines; it defaults to
    :func:`repro.core.config.pipeline_from_config` and is injectable only
    for tests. Scenarios that need a partition key are skipped when the
    schema has no string attribute.
    """
    if build is None:
        from repro.core.config import pipeline_from_config

        build = pipeline_from_config
    from repro.streaming.supervision import FailurePolicy

    key = _key_attribute(schema)
    scenarios: dict[str, Any] = {}
    for name, overrides in SCENARIOS:
        fields = dict(overrides)
        if fields.pop("key_by", False):
            if key is None:
                continue
            fields["key_by"] = key
        if fields.pop("on_error", None) == "retry":
            fields["failure_policy"] = FailurePolicy.retry(3)
        request = PlanRequest(
            pipelines=build(config), schema=schema, seed=_SEED, **fields
        )
        scenarios[name] = compile_plan(request).to_dict()
    return {"version": PLAN_FORMAT_VERSION, "scenarios": scenarios}
