"""Feature preprocessing for forecasting.

§3.2.2: "the ARIMAX models also received the attributes TEMP, PRESM, and
WSPM as input as well as the sine and cosine encodings of the month and the
hour of the event timestamp." This module provides those calendar
encodings, an online standard scaler (so regression on raw hPa pressures
does not drown out wind speed), and differencing utilities shared by the
ARIMA models.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.errors import ForecastingError
from repro.streaming.time import hour_of_day, month_of_year


def calendar_encodings(ts: int) -> dict[str, float]:
    """Sine/cosine encodings of month-of-year and hour-of-day."""
    month = month_of_year(ts)
    hour = hour_of_day(ts)
    return {
        "month_sin": math.sin(2 * math.pi * (month - 1) / 12.0),
        "month_cos": math.cos(2 * math.pi * (month - 1) / 12.0),
        "hour_sin": math.sin(2 * math.pi * hour / 24.0),
        "hour_cos": math.cos(2 * math.pi * hour / 24.0),
    }


class OnlineStandardScaler:
    """Per-feature running standardization (Welford's algorithm).

    ``learn_one`` updates the running mean/variance; ``transform_one``
    standardizes using the statistics seen so far. Unseen features pass
    through unscaled until observed twice.
    """

    def __init__(self) -> None:
        self._n: dict[str, int] = {}
        self._mean: dict[str, float] = {}
        self._m2: dict[str, float] = {}

    def learn_one(self, x: Mapping[str, float]) -> "OnlineStandardScaler":
        for k, v in x.items():
            if v is None or (isinstance(v, float) and v != v):
                continue
            n = self._n.get(k, 0) + 1
            mean = self._mean.get(k, 0.0)
            delta = v - mean
            mean += delta / n
            self._n[k] = n
            self._mean[k] = mean
            self._m2[k] = self._m2.get(k, 0.0) + delta * (v - mean)
        return self

    def _std(self, k: str) -> float:
        n = self._n.get(k, 0)
        if n < 2:
            return 1.0
        var = self._m2[k] / (n - 1)
        return math.sqrt(var) if var > 1e-12 else 1.0

    def transform_one(self, x: Mapping[str, float]) -> dict[str, float]:
        out = {}
        for k, v in x.items():
            if v is None or (isinstance(v, float) and v != v):
                out[k] = 0.0  # missing exogenous input: neutral after scaling
            else:
                out[k] = (v - self._mean.get(k, 0.0)) / self._std(k)
        return out

    def reset(self) -> None:
        self._n.clear()
        self._mean.clear()
        self._m2.clear()


class Differencer:
    """Online d-th order differencing with exact inversion.

    ``apply(y)`` returns the d-times differenced value (None while the
    warm-up window fills); ``invert(delta)`` reconstructs a level forecast
    from a predicted difference using the latest observed levels, and
    ``push_forecast`` advances the inversion state during multi-step
    recursive forecasting without contaminating the learning state.
    """

    def __init__(self, d: int) -> None:
        if d < 0:
            raise ForecastingError(f"difference order must be >= 0, got {d}")
        self.d = d
        # last[i] = most recent value of the i-times differenced series
        self._last: list[float | None] = [None] * d

    def apply(self, y: float) -> float | None:
        value = y
        for i in range(self.d):
            previous = self._last[i]
            self._last[i] = value
            if previous is None:
                return None
            value = value - previous
        return value

    def snapshot(self) -> list[float | None]:
        return list(self._last)

    def invert(self, delta: float, state: list[float | None] | None = None) -> float:
        """Reconstruct the level implied by a predicted difference."""
        last = self._last if state is None else state
        value = delta
        for i in reversed(range(self.d)):
            if last[i] is None:
                raise ForecastingError("differencer not warmed up")
            value = value + last[i]
        return value

    @staticmethod
    def advance(state: list[float | None], delta: float) -> list[float | None]:
        """State after appending a (forecast) difference — for recursion."""
        new_state = list(state)
        value = delta
        for i in reversed(range(len(new_state))):
            value = value + new_state[i]  # type: ignore[operator]
        # Recompute the chain of partial sums for the appended value.
        chained = value
        for i in range(len(new_state)):
            previous = new_state[i]
            new_state[i] = chained
            chained = chained - previous  # type: ignore[operator]
        return new_state

    def reset(self) -> None:
        self._last = [None] * self.d
