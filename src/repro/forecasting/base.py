"""The online forecaster interface.

Models follow River's online idiom: ``learn_one(y, x=None)`` consumes one
observation (optionally with exogenous features), ``forecast(horizon,
x_future=None)`` predicts the next ``horizon`` values. Models must tolerate
dirty input — missing targets are skipped, NaNs are treated as missing —
because Experiment 2 feeds them polluted streams by design.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ForecastingError

Features = Mapping[str, float]


def is_missing_value(y: object) -> bool:
    if y is None:
        return True
    return isinstance(y, float) and y != y


class Forecaster:
    """Base class for online forecasting models."""

    #: True if the model consumes exogenous features (ARIMAX).
    uses_exogenous: bool = False

    def learn_one(self, y: float | None, x: Features | None = None) -> "Forecaster":
        """Consume one observation. Missing ``y`` updates nothing but may
        advance internal clocks in subclasses. Returns self for chaining."""
        raise NotImplementedError

    def forecast(
        self, horizon: int, x_future: Sequence[Features] | None = None
    ) -> list[float]:
        """Predict the next ``horizon`` values.

        ``x_future`` supplies exogenous features per future step for models
        with ``uses_exogenous=True`` (the protocol of §3.2.2: ARIMAX
        receives TEMP/PRES/WSPM and calendar encodings for the forecast
        window).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget everything; used between cross-validation folds."""
        raise NotImplementedError

    def _check_horizon(self, horizon: int) -> None:
        if horizon < 1:
            raise ForecastingError(f"horizon must be >= 1, got {horizon}")

    def clone(self) -> "Forecaster":
        """A fresh, unfitted copy with the same hyperparameters."""
        raise NotImplementedError
