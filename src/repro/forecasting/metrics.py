"""Forecast error metrics.

The paper reports MAE (Figures 6 and 7); RMSE/MAPE/SMAPE are included for
completeness and for the hyperparameter search. All metrics skip pairs
where either side is missing (None/NaN) — polluted evaluation streams
contain injected nulls by construction.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ForecastingError


def _clean_pairs(
    y_true: Sequence[float | None], y_pred: Sequence[float | None]
) -> list[tuple[float, float]]:
    if len(y_true) != len(y_pred):
        raise ForecastingError(
            f"length mismatch: {len(y_true)} true vs {len(y_pred)} predicted"
        )
    pairs = []
    for t, p in zip(y_true, y_pred):
        if t is None or p is None:
            continue
        t, p = float(t), float(p)
        if t != t or p != p:
            continue
        pairs.append((t, p))
    return pairs


def mae(y_true: Sequence[float | None], y_pred: Sequence[float | None]) -> float:
    """Mean absolute error, the headline metric of Figures 6 and 7."""
    pairs = _clean_pairs(y_true, y_pred)
    if not pairs:
        return math.nan
    return sum(abs(t - p) for t, p in pairs) / len(pairs)


def rmse(y_true: Sequence[float | None], y_pred: Sequence[float | None]) -> float:
    """Root mean squared error."""
    pairs = _clean_pairs(y_true, y_pred)
    if not pairs:
        return math.nan
    return math.sqrt(sum((t - p) ** 2 for t, p in pairs) / len(pairs))


def mape(y_true: Sequence[float | None], y_pred: Sequence[float | None]) -> float:
    """Mean absolute percentage error; zero-valued truths are skipped."""
    pairs = [(t, p) for t, p in _clean_pairs(y_true, y_pred) if t != 0.0]
    if not pairs:
        return math.nan
    return 100.0 * sum(abs((t - p) / t) for t, p in pairs) / len(pairs)


def smape(y_true: Sequence[float | None], y_pred: Sequence[float | None]) -> float:
    """Symmetric MAPE in [0, 200]; pairs summing to zero are skipped."""
    pairs = [
        (t, p) for t, p in _clean_pairs(y_true, y_pred) if abs(t) + abs(p) > 0.0
    ]
    if not pairs:
        return math.nan
    return 200.0 * sum(abs(t - p) / (abs(t) + abs(p)) for t, p in pairs) / len(pairs)
