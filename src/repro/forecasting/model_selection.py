"""Hyperparameter search: time-series cross-validation + grid search.

§3.2.2: "we determined suitable settings for the hyperparameters of the
evaluated forecasting methods using grid search in combination with a
5-fold time series cross validation". :class:`TimeSeriesSplit` reproduces
scikit-learn's expanding-window splitter (train on everything before the
fold, test on the fold); :class:`GridSearch` exhausts a parameter grid,
scoring each configuration by mean MAE across folds.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import ForecastingError
from repro.forecasting.base import Features, Forecaster
from repro.forecasting.metrics import mae


class TimeSeriesSplit:
    """Expanding-window splits over index positions.

    Mirrors ``sklearn.model_selection.TimeSeriesSplit``: the ``n`` samples
    are cut into ``n_splits + 1`` blocks; fold ``k`` trains on blocks
    ``0..k`` and tests on block ``k + 1``. Order is never shuffled — the
    whole point for streams.
    """

    def __init__(self, n_splits: int = 5) -> None:
        if n_splits < 2:
            raise ForecastingError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits

    def split(self, n_samples: int) -> Iterator[tuple[range, range]]:
        if n_samples < self.n_splits + 1:
            raise ForecastingError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        fold = n_samples // (self.n_splits + 1)
        for k in range(1, self.n_splits + 1):
            train_end = fold * k
            test_end = fold * (k + 1) if k < self.n_splits else n_samples
            yield range(0, train_end), range(train_end, test_end)


@dataclass
class GridSearchResult:
    """Best configuration found plus the full per-configuration scores."""

    best_params: dict[str, Any]
    best_score: float
    scores: list[tuple[dict[str, Any], float]]


class GridSearch:
    """Exhaustive search over a parameter grid with time-series CV.

    Parameters
    ----------
    factory:
        Builds a fresh :class:`Forecaster` from one parameter combination.
    grid:
        ``{param: [values...]}``; the Cartesian product is evaluated.
    splitter:
        The CV splitter (5 folds by default, as in the paper).
    horizon:
        Forecast horizon scored at each fold boundary (12 h in the paper).
    """

    def __init__(
        self,
        factory: Callable[..., Forecaster],
        grid: Mapping[str, Sequence[Any]],
        splitter: TimeSeriesSplit | None = None,
        horizon: int = 12,
    ) -> None:
        if not grid:
            raise ForecastingError("grid must be non-empty")
        self.factory = factory
        self.grid = {k: list(v) for k, v in grid.items()}
        self.splitter = splitter or TimeSeriesSplit(5)
        self.horizon = horizon

    def _combinations(self) -> Iterator[dict[str, Any]]:
        keys = sorted(self.grid)
        for values in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, values))

    def run(
        self,
        y: Sequence[float | None],
        x: Sequence[Features] | None = None,
    ) -> GridSearchResult:
        """Score every combination on ``y`` (and optional exogenous ``x``)."""
        scores: list[tuple[dict[str, Any], float]] = []
        for params in self._combinations():
            fold_maes: list[float] = []
            for train_idx, test_idx in self.splitter.split(len(y)):
                try:
                    model = self.factory(**params)
                except (ForecastingError, TypeError):
                    fold_maes = [math.inf]
                    break
                for i in train_idx:
                    model.learn_one(y[i], x[i] if x is not None else None)
                horizon = min(self.horizon, len(test_idx))
                try:
                    x_future = (
                        [x[i] for i in list(test_idx)[:horizon]] if x is not None else None
                    )
                    preds = model.forecast(horizon, x_future)
                except ForecastingError:
                    fold_maes.append(math.inf)
                    continue
                truth = [y[i] for i in list(test_idx)[:horizon]]
                score = mae(truth, preds)
                fold_maes.append(score if score == score else math.inf)
            mean_score = sum(fold_maes) / len(fold_maes)
            scores.append((params, mean_score))
        scores.sort(key=lambda item: item[1])
        best_params, best_score = scores[0]
        return GridSearchResult(best_params=best_params, best_score=best_score, scores=scores)
