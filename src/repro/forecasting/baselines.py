"""Baseline forecasters.

Every forecasting comparison needs naive baselines: a sophisticated model
that cannot beat "repeat yesterday" is not learning anything. Two
classics:

* :class:`NaiveForecaster` — repeat the last observed value across the
  horizon (the random-walk baseline);
* :class:`SeasonalNaive` — repeat the value from one season ago
  (yesterday's same hour), the strong baseline for diurnal sensor data.

Both follow the online :class:`~repro.forecasting.base.Forecaster`
interface, so they drop into the prequential evaluator and the grid search
unchanged. They also serve as robustness probes: the seasonal naive's
degradation under pollution is pure noise floor (it has no parameters to
corrupt), which separates *data* degradation from *model* degradation in
experiment analyses.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import ForecastingError, NotFittedError
from repro.forecasting.base import Features, Forecaster, is_missing_value


class NaiveForecaster(Forecaster):
    """Predicts the last observed value for every horizon step."""

    def __init__(self) -> None:
        self._last: float | None = None

    @property
    def is_fitted(self) -> bool:
        return self._last is not None

    def learn_one(self, y: float | None, x: Features | None = None) -> "NaiveForecaster":
        if not is_missing_value(y):
            self._last = float(y)  # type: ignore[arg-type]
        return self

    def forecast(self, horizon: int, x_future: Sequence[Features] | None = None) -> list[float]:
        self._check_horizon(horizon)
        if self._last is None:
            raise NotFittedError("naive forecaster has seen no data")
        return [self._last] * horizon

    def reset(self) -> None:
        self._last = None

    def clone(self) -> "NaiveForecaster":
        return NaiveForecaster()

    def __repr__(self) -> str:
        return "NaiveForecaster()"


class SeasonalNaive(Forecaster):
    """Predicts the value observed one season earlier.

    Missing observations are bridged by carrying the previous season's
    value forward, so the season buffer always holds the best available
    estimate per phase.
    """

    def __init__(self, season_length: int = 24) -> None:
        if season_length < 1:
            raise ForecastingError("season_length must be >= 1")
        self.season_length = season_length
        self._buffer: deque[float] = deque(maxlen=season_length)
        self._n_seen = 0

    @property
    def is_fitted(self) -> bool:
        return len(self._buffer) == self.season_length

    def learn_one(self, y: float | None, x: Features | None = None) -> "SeasonalNaive":
        if is_missing_value(y):
            if self._buffer:
                # Recycle the value from one season ago to keep phase.
                self._buffer.append(self._buffer[0])
            return self
        self._buffer.append(float(y))  # type: ignore[arg-type]
        self._n_seen += 1
        return self

    def forecast(self, horizon: int, x_future: Sequence[Features] | None = None) -> list[float]:
        self._check_horizon(horizon)
        if not self.is_fitted:
            raise NotFittedError(
                f"seasonal naive needs {self.season_length} observations"
            )
        season = list(self._buffer)
        return [season[h % self.season_length] for h in range(horizon)]

    def reset(self) -> None:
        self._buffer = deque(maxlen=self.season_length)
        self._n_seen = 0

    def clone(self) -> "SeasonalNaive":
        return SeasonalNaive(self.season_length)

    def __repr__(self) -> str:
        return f"SeasonalNaive(m={self.season_length})"
