"""Online ARIMA and ARIMAX.

ARIMA(p, d, q) is fitted online as a linear model over the ``p`` most
recent values of the ``d``-times differenced series and the ``q`` most
recent one-step residuals (the standard SNARIMAX formulation River uses),
with weights estimated by **recursive least squares** (RLS) with a
forgetting factor — a per-observation update that converges far faster
than SGD on short training windows, which matters for the paper's 3-week
training periods.

ARIMAX extends the regression with an exogenous feature vector
(standardized online): the weather attributes and calendar encodings of
§3.2.2. Because the exogenous inputs of the polluted evaluation streams
remain informative even when the *target* is polluted, ARIMAX degrades more
gracefully under noise — the effect Figure 6 reports.

Multi-step forecasts are recursive: predicted differences are fed back as
future lags, future residuals are taken as zero (their expectation), and
levels are reconstructed through the differencing chain.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import ForecastingError, NotFittedError
from repro.forecasting.base import Features, Forecaster, is_missing_value
from repro.forecasting.preprocessing import Differencer, OnlineStandardScaler


class _RecursiveLeastSquares:
    """RLS with forgetting factor: w minimizes exponentially weighted SSE."""

    def __init__(self, dim: int, forgetting: float, delta: float = 100.0) -> None:
        if not 0.9 <= forgetting <= 1.0:
            raise ForecastingError(
                f"forgetting factor should be in [0.9, 1.0], got {forgetting}"
            )
        self.dim = dim
        self.forgetting = forgetting
        self.delta = delta
        self.w = np.zeros(dim)
        self.P = np.eye(dim) * delta
        self.n_updates = 0

    def predict(self, z: np.ndarray) -> float:
        return float(self.w @ z)

    def update(self, z: np.ndarray, error: float) -> None:
        lam = self.forgetting
        Pz = self.P @ z
        gain = Pz / (lam + z @ Pz)
        self.w = self.w + gain * error
        self.P = (self.P - np.outer(gain, Pz)) / lam
        # Symmetrize to fight numeric drift over long streams.
        self.P = (self.P + self.P.T) / 2.0
        self.n_updates += 1

    def reset(self) -> None:
        self.w = np.zeros(self.dim)
        self.P = np.eye(self.dim) * self.delta
        self.n_updates = 0


class _NormalizedLMS:
    """Normalized least-mean-squares: the SGD-style learner River uses.

    ``w += lr * error * z / (eps + ||z||^2)``. Converges slower than RLS
    and keeps a fixed adaptation rate — which is exactly why the paper's
    River models keep following noisy observations instead of learning the
    noise structure away (the behaviour Figure 6 reports).
    """

    def __init__(self, dim: int, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ForecastingError(f"learning rate must be positive, got {learning_rate}")
        self.dim = dim
        self.learning_rate = learning_rate
        self.w = np.zeros(dim)
        self.n_updates = 0

    def predict(self, z: np.ndarray) -> float:
        return float(self.w @ z)

    def update(self, z: np.ndarray, error: float) -> None:
        norm = 1e-8 + float(z @ z)
        self.w = self.w + self.learning_rate * error * z / norm
        self.n_updates += 1

    def reset(self) -> None:
        self.w = np.zeros(self.dim)
        self.n_updates = 0


class OnlineARIMA(Forecaster):
    """ARIMA(p, d, q) trained online.

    Parameters
    ----------
    p, d, q:
        Auto-regressive order, differencing order, moving-average order.
    forgetting:
        RLS forgetting factor; 1.0 weighs all history equally, values just
        below 1 adapt to drift (hyperparameter-searched in the experiments).
    clip_sigma:
        Residuals larger than ``clip_sigma`` running standard deviations
        are clipped before entering the MA lag buffer — a light robustness
        guard so a single polluted spike does not poison the next q
        predictions outright. ``None`` disables the guard (the paper's
        River models have none).
    optimizer:
        ``"rls"`` (recursive least squares, default — fast convergence) or
        ``"nlms"`` (normalized SGD, River-faithful; see ``learning_rate``).
    learning_rate:
        Step size for the ``"nlms"`` optimizer; ignored under ``"rls"``.
    """

    def __init__(
        self,
        p: int = 2,
        d: int = 0,
        q: int = 1,
        forgetting: float = 0.999,
        clip_sigma: float | None = 8.0,
        optimizer: str = "rls",
        learning_rate: float = 0.1,
    ) -> None:
        if p < 0 or q < 0 or d < 0 or (p == 0 and q == 0):
            raise ForecastingError(
                f"need p >= 0, d >= 0, q >= 0 with p + q > 0; got ({p},{d},{q})"
            )
        if optimizer not in ("rls", "nlms"):
            raise ForecastingError(f"unknown optimizer {optimizer!r}; use 'rls' or 'nlms'")
        if not 0.9 <= forgetting <= 1.0:
            raise ForecastingError(
                f"forgetting factor should be in [0.9, 1.0], got {forgetting}"
            )
        if learning_rate <= 0:
            raise ForecastingError(f"learning rate must be positive, got {learning_rate}")
        self.p = p
        self.d = d
        self.q = q
        self.forgetting = forgetting
        self.clip_sigma = clip_sigma
        self.optimizer = optimizer
        self.learning_rate = learning_rate
        self._exog_dim = 0  # extended by OnlineARIMAX
        self._init_state()

    def _init_state(self) -> None:
        self._differencer = Differencer(self.d)
        self._lags: deque[float] = deque(maxlen=max(self.p, 1))
        self._residuals: deque[float] = deque(maxlen=max(self.q, 1))
        self._rls: _RecursiveLeastSquares | _NormalizedLMS | None = None
        self._resid_m2 = 0.0
        self._resid_n = 0
        self._n_seen = 0

    @property
    def dim(self) -> int:
        return 1 + self.p + self.q + self._exog_dim

    @property
    def is_fitted(self) -> bool:
        return self._rls is not None and self._rls.n_updates > 0

    # -- feature assembly ----------------------------------------------------

    def _features(
        self,
        lags: Sequence[float],
        residuals: Sequence[float],
        exog: np.ndarray | None,
    ) -> np.ndarray:
        z = np.zeros(self.dim)
        z[0] = 1.0  # intercept
        lag_list = list(lags)
        for i in range(self.p):
            # Most recent lag first; missing warm-up slots stay 0.
            if i < len(lag_list):
                z[1 + i] = lag_list[-1 - i]
        resid_list = list(residuals)
        for j in range(self.q):
            if j < len(resid_list):
                z[1 + self.p + j] = resid_list[-1 - j]
        if self._exog_dim:
            if exog is None:
                raise ForecastingError("ARIMAX needs exogenous features")
            z[1 + self.p + self.q:] = exog
        return z

    def _exog_vector(self, x: Features | None) -> np.ndarray | None:
        return None  # plain ARIMA ignores x

    # -- online learning --------------------------------------------------------

    def learn_one(self, y: float | None, x: Features | None = None) -> "OnlineARIMA":
        if is_missing_value(y):
            return self  # polluted nulls: no update, no state advance
        y = float(y)  # type: ignore[arg-type]
        exog = self._exog_vector(x)
        dy = self._differencer.apply(y)
        if dy is None:
            return self  # still warming up the differencing chain
        self._n_seen += 1
        if self._rls is None:
            if self.optimizer == "rls":
                self._rls = _RecursiveLeastSquares(self.dim, self.forgetting)
            else:
                self._rls = _NormalizedLMS(self.dim, self.learning_rate)
        if len(self._lags) >= self.p:  # enough history for a full AR window
            z = self._features(self._lags, self._residuals, exog)
            prediction = self._rls.predict(z)
            error = self._clip_error(dy - prediction)
            # The clipped error drives both the weight update (a Huber-style
            # robust step) and the MA lag buffer, so one polluted spike
            # cannot blow up the weights or poison the next q predictions.
            self._rls.update(z, error)
            self._push_residual(error)
        else:
            self._push_residual(0.0)
        if self.p > 0:
            self._lags.append(dy)
        return self

    def _clip_error(self, error: float) -> float:
        # Clip against the residual scale seen *before* this observation —
        # otherwise a single huge outlier inflates the scale estimate and
        # sails through its own bound. The clipped value feeds the stats, so
        # a burst of outliers widens the bound only gradually.
        if self.clip_sigma is not None and self._resid_n >= 10:
            sigma = (self._resid_m2 / self._resid_n) ** 0.5
            bound = self.clip_sigma * max(sigma, 1e-9)
            error = max(-bound, min(bound, error))
        self._resid_n += 1
        self._resid_m2 += error * error
        return error

    def _push_residual(self, error: float) -> None:
        if self.q > 0:
            self._residuals.append(error)

    # -- forecasting ----------------------------------------------------------

    def forecast(
        self, horizon: int, x_future: Sequence[Features] | None = None
    ) -> list[float]:
        self._check_horizon(horizon)
        if self._rls is None or not self.is_fitted:
            raise NotFittedError("ARIMA must observe data before forecasting")
        if self._exog_dim and (x_future is None or len(x_future) < horizon):
            raise ForecastingError(
                f"ARIMAX forecast needs {horizon} steps of exogenous features"
            )
        lags = deque(self._lags, maxlen=max(self.p, 1))
        residuals = deque(self._residuals, maxlen=max(self.q, 1))
        state = self._differencer.snapshot()
        out: list[float] = []
        for h in range(horizon):
            exog = self._exog_vector(x_future[h]) if self._exog_dim else None
            z = self._features(lags, residuals, exog)
            d_hat = self._rls.predict(z)
            if self.d == 0:
                level = d_hat
            else:
                level = self._differencer.invert(d_hat, state)
                state = Differencer.advance(state, d_hat)
            out.append(level)
            if self.p > 0:
                lags.append(d_hat)
            if self.q > 0:
                residuals.append(0.0)  # future residuals at expectation
        return out

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        self._init_state()

    def clone(self) -> "OnlineARIMA":
        return OnlineARIMA(
            p=self.p, d=self.d, q=self.q,
            forgetting=self.forgetting, clip_sigma=self.clip_sigma,
            optimizer=self.optimizer, learning_rate=self.learning_rate,
        )

    def __repr__(self) -> str:
        return f"OnlineARIMA(p={self.p}, d={self.d}, q={self.q})"


class OnlineARIMAX(OnlineARIMA):
    """ARIMA with exogenous regressors (standardized online).

    ``exog_features`` fixes the feature order; ``learn_one``/``forecast``
    read those keys from the supplied mapping (missing keys contribute a
    neutral 0 after standardization, so a polluted exogenous null cannot
    crash a forecast).
    """

    uses_exogenous = True

    def __init__(
        self,
        exog_features: Sequence[str],
        p: int = 2,
        d: int = 0,
        q: int = 1,
        forgetting: float = 0.999,
        clip_sigma: float | None = 8.0,
        optimizer: str = "rls",
        learning_rate: float = 0.1,
    ) -> None:
        if not exog_features:
            raise ForecastingError("ARIMAX needs at least one exogenous feature")
        self.exog_features = tuple(exog_features)
        super().__init__(
            p=p, d=d, q=q, forgetting=forgetting, clip_sigma=clip_sigma,
            optimizer=optimizer, learning_rate=learning_rate,
        )
        self._exog_dim = len(self.exog_features)
        self._scaler = OnlineStandardScaler()
        self._init_state()  # re-init with the widened dimension

    def _exog_vector(self, x: Features | None) -> np.ndarray:
        if x is None:
            raise ForecastingError(
                f"ARIMAX expects exogenous features {list(self.exog_features)}"
            )
        subset = {k: x.get(k) for k in self.exog_features}
        scaled = self._scaler.transform_one(subset)
        return np.array([scaled[k] for k in self.exog_features])

    def learn_one(self, y: float | None, x: Features | None = None) -> "OnlineARIMAX":
        if x is not None:
            self._scaler.learn_one({k: x.get(k) for k in self.exog_features})
        super().learn_one(y, x)
        return self

    def reset(self) -> None:
        super().reset()
        self._scaler = OnlineStandardScaler()

    def clone(self) -> "OnlineARIMAX":
        return OnlineARIMAX(
            exog_features=self.exog_features,
            p=self.p, d=self.d, q=self.q,
            forgetting=self.forgetting, clip_sigma=self.clip_sigma,
            optimizer=self.optimizer, learning_rate=self.learning_rate,
        )

    def __repr__(self) -> str:
        return (
            f"OnlineARIMAX(p={self.p}, d={self.d}, q={self.q}, "
            f"exog={list(self.exog_features)})"
        )
