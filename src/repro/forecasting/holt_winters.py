"""Holt-Winters triple exponential smoothing (additive / multiplicative).

The classical state-space smoother: a level ``l``, a trend ``b``, and ``m``
seasonal components updated per observation with smoothing constants
``alpha``, ``beta``, ``gamma`` (Hyndman & Athanasopoulos 2018, the paper's
reference [22]). For hourly sensor streams the natural season length is
``m = 24``.

Initialization follows the standard two-season heuristic: the first ``2m``
observations set the initial level (mean of season one), trend (average
per-step change between season means), and seasonal components. Missing
observations are bridged by updating with the model's own one-step forecast,
which keeps the seasonal phase aligned on streams with injected nulls.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ForecastingError, NotFittedError
from repro.forecasting.base import Features, Forecaster, is_missing_value


class HoltWinters(Forecaster):
    """Additive or multiplicative Holt-Winters smoothing.

    Parameters
    ----------
    alpha, beta, gamma:
        Smoothing constants for level, trend, and seasonality, each in
        ``(0, 1)``.
    season_length:
        Number of observations per season (24 for hourly data with a daily
        cycle).
    multiplicative:
        Use the multiplicative seasonal form; requires strictly positive
        data (air-quality concentrations qualify), and the model falls back
        to additive updates whenever a non-positive value appears.
    damping:
        Optional trend damping factor ``phi`` in ``(0, 1]``; values below 1
        flatten long-horizon trend extrapolation.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        beta: float = 0.1,
        gamma: float = 0.2,
        season_length: int = 24,
        multiplicative: bool = False,
        damping: float = 1.0,
    ) -> None:
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < value < 1.0:
                raise ForecastingError(f"{name} must be in (0, 1), got {value}")
        if season_length < 2:
            raise ForecastingError(f"season_length must be >= 2, got {season_length}")
        if not 0.0 < damping <= 1.0:
            raise ForecastingError(f"damping must be in (0, 1], got {damping}")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_length = season_length
        self.multiplicative = multiplicative
        self.damping = damping
        self._init_state()

    def _init_state(self) -> None:
        self._warmup: list[float] = []
        self._level: float | None = None
        self._trend = 0.0
        self._season: list[float] = []
        self._t = 0  # season phase of the *next* observation

    @property
    def is_fitted(self) -> bool:
        return self._level is not None

    # -- initialization --------------------------------------------------------

    def _initialize(self) -> None:
        m = self.season_length
        first = self._warmup[:m]
        second = self._warmup[m:2 * m]
        mean1 = sum(first) / m
        mean2 = sum(second) / m
        self._level = mean1
        self._trend = (mean2 - mean1) / m
        if self.multiplicative:
            base = mean1 if abs(mean1) > 1e-9 else 1.0
            self._season = [v / base for v in first]
        else:
            self._season = [v - mean1 for v in first]
        # Replay the second season through the regular update equations so
        # the state reflects all 2m warm-up points.
        self._t = 0
        for v in second:
            self._update(v)

    # -- smoothing updates ------------------------------------------------------

    def _update(self, y: float) -> None:
        assert self._level is not None
        m = self.season_length
        idx = self._t % m
        s = self._season[idx]
        level_prev = self._level
        trend_prev = self._trend
        phi = self.damping
        if self.multiplicative and y > 0 and abs(s) > 1e-12:
            self._level = self.alpha * (y / s) + (1 - self.alpha) * (
                level_prev + phi * trend_prev
            )
            self._season[idx] = self.gamma * (y / self._level) + (1 - self.gamma) * s
        else:
            self._level = self.alpha * (y - s) + (1 - self.alpha) * (
                level_prev + phi * trend_prev
            )
            self._season[idx] = self.gamma * (y - self._level) + (1 - self.gamma) * s
        self._trend = self.beta * (self._level - level_prev) + (1 - self.beta) * (
            phi * trend_prev
        )
        self._t += 1

    def _one_step_forecast(self) -> float:
        assert self._level is not None
        idx = self._t % self.season_length
        s = self._season[idx]
        base = self._level + self.damping * self._trend
        return base * s if self.multiplicative else base + s

    # -- public API -----------------------------------------------------------------

    def learn_one(self, y: float | None, x: Features | None = None) -> "HoltWinters":
        if is_missing_value(y):
            if self.is_fitted:
                # Keep the seasonal phase moving: update with the model's
                # own expectation (a no-surprise observation).
                self._update(self._one_step_forecast())
            return self
        y = float(y)  # type: ignore[arg-type]
        if not self.is_fitted:
            self._warmup.append(y)
            if len(self._warmup) >= 2 * self.season_length:
                self._initialize()
                self._warmup = []
            return self
        self._update(y)
        return self

    def forecast(
        self, horizon: int, x_future: Sequence[Features] | None = None
    ) -> list[float]:
        self._check_horizon(horizon)
        if not self.is_fitted:
            raise NotFittedError(
                f"HoltWinters needs {2 * self.season_length} observations to "
                "initialize before forecasting"
            )
        assert self._level is not None
        m = self.season_length
        phi = self.damping
        out = []
        damp_sum = 0.0
        for h in range(1, horizon + 1):
            damp_sum += phi**h
            s = self._season[(self._t + h - 1) % m]
            base = self._level + damp_sum * self._trend
            out.append(base * s if self.multiplicative else base + s)
        return out

    def reset(self) -> None:
        self._init_state()

    def clone(self) -> "HoltWinters":
        return HoltWinters(
            alpha=self.alpha, beta=self.beta, gamma=self.gamma,
            season_length=self.season_length,
            multiplicative=self.multiplicative, damping=self.damping,
        )

    def __repr__(self) -> str:
        mode = "mul" if self.multiplicative else "add"
        return (
            f"HoltWinters(alpha={self.alpha}, beta={self.beta}, "
            f"gamma={self.gamma}, m={self.season_length}, {mode})"
        )
