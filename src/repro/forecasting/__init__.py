"""Online forecasting methods (River stand-in) and evaluation protocol.

Experiment 2 (§3.2) evaluates the robustness of three online forecasting
methods against Icewafl's temporal errors: **ARIMA** and **Holt-Winters**
(pure auto-regressive — they see only the target's history) and **ARIMAX**
(auto-regressive with exogenous regressors: weather attributes plus sine
and cosine encodings of the month and hour). This package implements those
three model families from scratch:

* :class:`~repro.forecasting.arima.OnlineARIMA` — ARIMA(p, d, q) as an
  online linear model over lagged differences and lagged residuals,
  trained by recursive least squares;
* :class:`~repro.forecasting.arima.OnlineARIMAX` — the same plus an
  exogenous feature vector;
* :class:`~repro.forecasting.holt_winters.HoltWinters` — additive /
  multiplicative triple exponential smoothing;

plus the supporting protocol pieces: error metrics
(:mod:`~repro.forecasting.metrics`), calendar encodings and online scaling
(:mod:`~repro.forecasting.preprocessing`), time-series cross-validation and
grid search (:mod:`~repro.forecasting.model_selection`), and the paper's
prequential train-504h/forecast-12h loop
(:mod:`~repro.forecasting.evaluation`).
"""

from repro.forecasting.arima import OnlineARIMA, OnlineARIMAX
from repro.forecasting.base import Forecaster
from repro.forecasting.baselines import NaiveForecaster, SeasonalNaive
from repro.forecasting.evaluation import (
    ForecastCurve,
    PrequentialEvaluator,
    make_splits,
)
from repro.forecasting.holt_winters import HoltWinters
from repro.forecasting.metrics import mae, mape, rmse, smape
from repro.forecasting.model_selection import GridSearch, TimeSeriesSplit

__all__ = [
    "ForecastCurve",
    "Forecaster",
    "GridSearch",
    "HoltWinters",
    "NaiveForecaster",
    "OnlineARIMA",
    "OnlineARIMAX",
    "PrequentialEvaluator",
    "SeasonalNaive",
    "TimeSeriesSplit",
    "mae",
    "make_splits",
    "mape",
    "rmse",
    "smape",
]
