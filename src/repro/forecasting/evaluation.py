"""The paper's forecasting evaluation protocol (§3.2.3) and data splits
(Table 2).

Models receive the stream tuple-wise in an online fashion. Training periods
span 504 hours (3 weeks); after each training period the model forecasts
the next 12 hours, the forecast is scored (MAE), and the evaluation data is
then *released* into the training stream for the next period. The sequence
of (evaluation-start, MAE) points is one line of Figure 6/7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ForecastingError, NotFittedError
from repro.forecasting.base import Features, Forecaster
from repro.forecasting.metrics import mae
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.time import SECONDS_PER_HOUR


@dataclass
class SplitResult:
    """Table 2's splits of one region's stream ``D_r``."""

    train: list[Record]  # 1st year minus its last 12 h
    valid: list[Record]  # last 12 h of the 1st year
    eval: list[Record]  # last year

    def __repr__(self) -> str:
        return (
            f"SplitResult(train={len(self.train)}, valid={len(self.valid)}, "
            f"eval={len(self.eval)})"
        )


def make_splits(records: Sequence[Record], schema: Schema, valid_hours: int = 12) -> SplitResult:
    """Cut a region stream into D_train / D_valid / D_eval per Table 2.

    The "1st year" is the first 365 days after the stream's first
    timestamp; the "last year" is the final 365 days before the stream's
    end. Records must be in timestamp order.
    """
    if not records:
        raise ForecastingError("cannot split an empty stream")
    ts_attr = schema.timestamp_attribute
    first_ts = records[0].get(ts_attr)
    last_ts = records[-1].get(ts_attr)
    year = 365 * 24 * SECONDS_PER_HOUR
    first_year_end = first_ts + year
    valid_start = first_year_end - valid_hours * SECONDS_PER_HOUR
    eval_start = last_ts - year + SECONDS_PER_HOUR
    train, valid, eval_ = [], [], []
    for r in records:
        ts = r.get(ts_attr)
        if ts < valid_start:
            train.append(r)
        elif ts < first_year_end:
            valid.append(r)
        if ts >= eval_start:
            eval_.append(r)
    if not train or not valid or not eval_:
        raise ForecastingError(
            f"degenerate split: train={len(train)}, valid={len(valid)}, "
            f"eval={len(eval_)} — is the stream at least two years long?"
        )
    return SplitResult(train=train, valid=valid, eval=eval_)


@dataclass
class ForecastCurve:
    """One model's MAE-over-time line in Figure 6/7."""

    model_name: str
    eval_starts: list[int] = field(default_factory=list)  # epoch seconds
    maes: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.maes)

    def mean_mae(self) -> float:
        valid = [m for m in self.maes if m == m]
        return sum(valid) / len(valid) if valid else float("nan")

    def late_to_early_ratio(self, fraction: float = 0.25) -> float:
        """Mean MAE of the last ``fraction`` of points over the first.

        The scalar the benches assert on: a ratio well above 1 means the
        error grows over the stream — the signature of temporally
        increasing pollution.
        """
        valid = [m for m in self.maes if m == m]
        k = max(1, int(len(valid) * fraction))
        early = sum(valid[:k]) / k
        late = sum(valid[-k:]) / k
        return late / early if early > 0 else float("inf")


class PrequentialEvaluator:
    """Train 504 h -> forecast 12 h -> release -> repeat.

    Parameters
    ----------
    train_hours:
        Length of each training period (504 in the paper).
    horizon_hours:
        Forecast length (12 in the paper).
    step_hours:
        Hours per tuple (1 for the air-quality stream).
    reference:
        ``"observed"`` scores forecasts against the (possibly polluted)
        stream the model sees — the paper's protocol; ``"clean"`` scores
        against a separately supplied clean target series, isolating model
        degradation from the irreducible noise floor.
    """

    def __init__(
        self,
        train_hours: int = 504,
        horizon_hours: int = 12,
        step_hours: int = 1,
        reference: str = "observed",
    ) -> None:
        if train_hours <= 0 or horizon_hours <= 0 or step_hours <= 0:
            raise ForecastingError("train/horizon/step hours must be positive")
        if reference not in ("observed", "clean"):
            raise ForecastingError(f"unknown reference {reference!r}")
        self.train_steps = train_hours // step_hours
        self.horizon_steps = horizon_hours // step_hours
        self.reference = reference

    def run(
        self,
        model: Forecaster,
        y: Sequence[float | None],
        timestamps: Sequence[int],
        x: Sequence[Features] | None = None,
        y_clean: Sequence[float | None] | None = None,
        model_name: str | None = None,
    ) -> ForecastCurve:
        """Evaluate one model over one stream.

        ``y``, ``timestamps`` (and ``x``, ``y_clean`` when given) are
        parallel sequences in stream order.
        """
        if len(y) != len(timestamps):
            raise ForecastingError("y and timestamps must be parallel")
        if x is not None and len(x) != len(y):
            raise ForecastingError("x must be parallel to y")
        if self.reference == "clean":
            if y_clean is None:
                raise ForecastingError("reference='clean' needs y_clean")
            if len(y_clean) != len(y):
                raise ForecastingError("y_clean must be parallel to y")
        curve = ForecastCurve(model_name or type(model).__name__)
        n = len(y)
        i = 0
        next_eval = self.train_steps
        while i < n:
            model.learn_one(y[i], x[i] if x is not None else None)
            i += 1
            if i >= next_eval and i + self.horizon_steps <= n:
                h = self.horizon_steps
                x_future = (
                    [x[j] for j in range(i, i + h)] if x is not None else None
                )
                try:
                    preds = model.forecast(h, x_future)
                except NotFittedError:
                    next_eval = i + self.train_steps
                    continue
                truth_src = y_clean if self.reference == "clean" else y
                truth = [truth_src[j] for j in range(i, i + h)]  # type: ignore[index]
                curve.eval_starts.append(timestamps[i])
                curve.maes.append(mae(truth, preds))
                next_eval = i + self.train_steps
        return curve


def records_to_series(
    records: Sequence[Record],
    schema: Schema,
    target: str,
    exog: Callable[[Record], Features] | None = None,
) -> tuple[list[float | None], list[int], list[Features] | None]:
    """Flatten records into the parallel (y, timestamps, x) sequences."""
    ts_attr = schema.timestamp_attribute
    y = [r.get(target) for r in records]
    timestamps = [int(r.get(ts_attr)) for r in records]
    x = [exog(r) for r in records] if exog is not None else None
    return y, timestamps, x
