#!/usr/bin/env python3
"""Regenerate the ICE rule reference table in DESIGN.md.

The table between the ``rules-table`` markers is generated from the rule
catalogue (:data:`repro.check.rules.RULES`) so the document can never
drift from the code; ``tests/check/test_rules_table.py`` fails the build
if this script was not re-run after a catalogue change.

Usage::

    python scripts/update_rules_table.py [--check]

``--check`` exits 1 (touching nothing) if the document is stale.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.check.rules import (  # noqa: E402
    RULES_TABLE_BEGIN,
    RULES_TABLE_END,
    rules_table_markdown,
)

DESIGN = REPO / "DESIGN.md"


def rewrite(text: str) -> str:
    try:
        head, rest = text.split(RULES_TABLE_BEGIN, 1)
        _, tail = rest.split(RULES_TABLE_END, 1)
    except ValueError:
        raise SystemExit(
            f"DESIGN.md is missing the {RULES_TABLE_BEGIN!r} / "
            f"{RULES_TABLE_END!r} markers"
        )
    return (
        head
        + RULES_TABLE_BEGIN
        + "\n"
        + rules_table_markdown()
        + RULES_TABLE_END
        + tail
    )


def main(argv: list[str]) -> int:
    text = DESIGN.read_text()
    fresh = rewrite(text)
    if "--check" in argv:
        if fresh != text:
            print("DESIGN.md rule table is stale; run scripts/update_rules_table.py")
            return 1
        print("DESIGN.md rule table is up to date")
        return 0
    if fresh != text:
        DESIGN.write_text(fresh)
        print("DESIGN.md rule table regenerated")
    else:
        print("DESIGN.md rule table already up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
