#!/usr/bin/env python3
"""Regenerate the golden plan snapshots in examples/configs/golden/.

For every config/schema pair in ``examples/configs/manifest.json`` the
planner (:func:`repro.plan.snapshots.snapshot_plans`) compiles one plan
per canonical scenario — engine choice, decision slugs with reasons,
stages, normalized options — and the result is pinned byte-for-byte as
``golden/<stem>.plan.json``. ``tests/plan/test_golden_plans.py`` and the
CI ``conformance`` job fail when the snapshots drift.

Usage::

    python scripts/update_plan_golden.py [--check]

``--check`` exits 1 (touching nothing) if any snapshot is stale.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

CONFIG_DIR = REPO / "examples" / "configs"
GOLDEN_DIR = CONFIG_DIR / "golden"


def render(config_name: str, schema_name: str) -> str:
    from repro.cli import schema_from_config
    from repro.plan.snapshots import snapshot_plans

    config = json.loads((CONFIG_DIR / config_name).read_text())
    schema = schema_from_config(json.loads((CONFIG_DIR / schema_name).read_text()))
    return json.dumps(snapshot_plans(config, schema), indent=2) + "\n"


def main(argv: list[str]) -> int:
    manifest = json.loads((CONFIG_DIR / "manifest.json").read_text())
    check = "--check" in argv
    stale = []
    for pair in manifest["pairs"]:
        stem = Path(pair["config"]).stem
        path = GOLDEN_DIR / f"{stem}.plan.json"
        fresh = render(pair["config"], pair["schema"])
        if check:
            if not path.exists() or path.read_text() != fresh:
                stale.append(path.name)
        else:
            path.write_text(fresh)
            print(f"wrote {path.relative_to(REPO)}")
    if check:
        if stale:
            print(
                "stale golden plan snapshot(s): "
                + ", ".join(stale)
                + "; run scripts/update_plan_golden.py"
            )
            return 1
        print("golden plan snapshots are up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
