"""Legacy setup shim: required for editable installs with the offline toolchain."""
from setuptools import setup

setup()
